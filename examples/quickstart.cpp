// Quickstart: run a Zoom-like call over the simulated private 5G cell for
// 30 seconds, then let Athena correlate PHY telemetry with the packet
// captures and explain where the uplink delay went.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <chrono>
#include <iostream>

#include "app/session.hpp"
#include "core/analyzer.hpp"
#include "stats/table.hpp"

int main() {
  using namespace athena;
  using namespace std::chrono_literals;

  sim::Simulator simulator;

  // A two-party call: sender on the 5G uplink, receiver wired (Fig. 2).
  app::SessionConfig config;
  config.seed = 7;
  config.channel.base_bler = 0.08;  // typical first-transmission BLER target
  app::Session session{simulator, config};

  std::cout << "Running a 30 s video call over the simulated 5G cell...\n";
  session.Run(30s);

  // --- Athena: correlate L1 telemetry with L3 captures and L7 frames ---
  const auto dataset = core::Correlator::Correlate(session.BuildCorrelatorInput());

  std::cout << "\ncaptured packets:  sender=" << session.sender_capture().count()
            << "  core=" << session.core_capture().count()
            << "  receiver=" << session.receiver_capture().count() << '\n';
  std::cout << "telemetry records: " << session.ran_uplink()->telemetry().size()
            << "  (unmatched TB bytes: " << dataset.unmatched_tb_bytes << ")\n";

  const auto video = core::Analyzer::RanDelayCdf(dataset, /*audio=*/false);
  const auto audio = core::Analyzer::RanDelayCdf(dataset, /*audio=*/true);
  std::cout << "\nRAN uplink one-way delay (ms):\n";
  std::cout << "  video: " << video.Summary() << '\n';
  std::cout << "  audio: " << audio.Summary() << '\n';

  const auto spread = core::Analyzer::DelaySpreadCdf(dataset, core::Analyzer::SpreadAt::kCore);
  std::cout << "\nper-frame delay spread at the core (ms): " << spread.Summary() << '\n';
  std::cout << "fraction of spreads on the 2.5 ms slot grid: "
            << core::Analyzer::SpreadGridFraction(dataset, 2500us, 200us) << '\n';

  const auto decomp = core::Analyzer::MeanDecomposition(dataset);
  std::cout << "\nmean uplink delay decomposition (ms over " << decomp.packets
            << " media packets):\n"
            << "  waiting for a grant/slot: " << stats::Fmt(decomp.sched_wait_ms) << '\n'
            << "  trickling across slots:   " << stats::Fmt(decomp.spread_ms) << '\n'
            << "  HARQ retransmissions:     " << stats::Fmt(decomp.rtx_ms) << '\n'
            << "  gNB→core + decode:        " << stats::Fmt(decomp.remainder_ms) << '\n'
            << "  total:                    " << stats::Fmt(decomp.total_ms) << '\n';

  std::cout << "\nroot causes (packets):\n";
  for (const auto& [cause, count] : core::Analyzer::RootCauseBreakdown(dataset)) {
    std::cout << "  " << core::ToString(cause) << ": " << count << '\n';
  }

  const auto& counters = session.ran_uplink()->counters();
  std::cout << "\nRAN efficiency: grant utilization "
            << stats::Fmt(100.0 * counters.GrantUtilization(), 1) << "%, wasted requested bytes "
            << counters.wasted_requested_bytes << ", empty-TB retransmissions "
            << counters.empty_tb_rtx << '\n';

  std::cout << "\nreceiver QoE: " << session.qoe().video_frames_rendered()
            << " video frames rendered, mean frame rate "
            << stats::Fmt(session.qoe().FrameRateFps().Mean(), 1) << " fps, SSIM p50 "
            << stats::Fmt(session.qoe().Ssim().Median()) << '\n';
  return 0;
}
