// The 5G RAN substrate as a standalone library: no VCA on top, just a
// synthetic traffic pattern offered to the uplink under three grant
// policies (baseline BSR, application-aware, learning predictor). Useful
// as a starting point for scheduler research beyond video conferencing
// (§5.1: short video, web browsing, interactive apps all stress the RAN
// differently).
#include <chrono>
#include <iostream>
#include <memory>

#include "mitigation/app_aware_policy.hpp"
#include "mitigation/traffic_predictor.hpp"
#include "ran/uplink.hpp"
#include "stats/cdf.hpp"
#include "stats/table.hpp"

namespace {

using namespace athena;
using namespace std::chrono_literals;
using sim::kEpoch;

struct Result {
  stats::Cdf delay_ms;
  double utilization = 0.0;
};

/// Offers a frame-like burst (6 × 1200 B) every 33 ms plus a 200 B ping
/// every 20 ms for 30 s.
Result RunPolicy(std::unique_ptr<ran::GrantPolicy> policy,
                 mitigation::AppAwareGrantPolicy* aware) {
  sim::Simulator sim;
  const auto cell = ran::RanConfig::PaperCell();
  ran::RanUplink ran{sim, cell, ran::ChannelModel{{.base_bler = 0.05}, sim::Rng{1}},
                     ran::CrossTraffic::Idle(sim::Rng{2}), std::move(policy)};

  Result result;
  std::unordered_map<net::PacketId, sim::TimePoint> sent_at;
  ran.set_core_sink([&](const net::Packet& p) {
    result.delay_ms.Add(sim::ToMs(sim.Now() - sent_at.at(p.id)));
  });
  ran.Start();

  if (aware != nullptr) {
    aware->Announce(mitigation::StreamAnnouncement{
        .stream_id = 1, .next_unit_at = kEpoch + 1ms, .unit_interval = 33ms,
        .unit_bytes = 6 * 1200});
    aware->Announce(mitigation::StreamAnnouncement{
        .stream_id = 2, .next_unit_at = kEpoch + 1ms, .unit_interval = 20ms,
        .unit_bytes = 200});
  }

  net::PacketId next_id = 1;
  auto offer = [&](std::uint32_t bytes) {
    net::Packet p;
    p.id = next_id++;
    p.size_bytes = bytes;
    p.kind = net::PacketKind::kGeneric;
    p.created_at = sim.Now();
    sent_at[p.id] = sim.Now();
    ran.SendFromUe(p);
  };
  sim::PeriodicTimer frames{sim, 33ms, [&] {
                              for (int i = 0; i < 6; ++i) offer(1200);
                            }};
  sim::PeriodicTimer pings{sim, 20ms, [&] { offer(200); }};
  frames.Start(1ms);
  pings.Start(1ms);
  sim.RunUntil(kEpoch + 30s);
  frames.Stop();
  pings.Stop();

  result.utilization = ran.counters().GrantUtilization();
  return result;
}

}  // namespace

int main() {
  const auto cell = ran::RanConfig::PaperCell();

  const auto baseline = RunPolicy(nullptr, nullptr);

  auto aware_policy = std::make_unique<mitigation::AppAwareGrantPolicy>(cell);
  auto* aware_raw = aware_policy.get();
  const auto aware = RunPolicy(std::move(aware_policy), aware_raw);

  const auto predictor =
      RunPolicy(std::make_unique<mitigation::TrafficPredictorPolicy>(cell), nullptr);

  stats::PrintBanner(std::cout,
                     "synthetic workload (6×1200 B burst @33 ms + 200 B ping @20 ms), "
                     "packet delay through the uplink by grant policy");
  stats::Table table{{"policy", "p50 ms", "p95 ms", "p99 ms", "grant util %"}};
  auto row = [&](const char* name, const Result& r) {
    table.AddRow({name, stats::Fmt(r.delay_ms.Median(), 2), stats::Fmt(r.delay_ms.P(95), 2),
                  stats::Fmt(r.delay_ms.P(99), 2), stats::Fmt(100 * r.utilization, 1)});
  };
  row("baseline (proactive+BSR)", baseline);
  row("app-aware announcements", aware);
  row("learning predictor", predictor);
  table.Print(std::cout);
  return 0;
}
