// Athena's pitch in one example: for the worst-delayed packets of a call,
// print the full cross-layer story — which video frame the packet belonged
// to, which transport blocks carried it, how long it waited for a grant,
// how long it trickled across uplink slots, and how much HARQ added — the
// per-packet root cause that no single layer can see on its own (Fig. 1).
//
// Pass a path to also dump the run as a Chrome trace-event JSON:
//
//   why_was_this_packet_late /tmp/late.json
//
// then open it in Perfetto (ui.perfetto.dev) — the "core (cross-layer
// correlator)" track holds one `pkt.uplink` span per media packet whose
// args (wait_ms / spread_ms / harq_ms / cause) are exactly the breakdown
// printed below, and the RAN track shows the slots and HARQ chains that
// caused it.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>

#include "app/session.hpp"
#include "core/analyzer.hpp"
#include "obs/live/health.hpp"
#include "obs/obs.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  using namespace athena;
  using namespace std::chrono_literals;

  sim::Simulator simulator;
  // Always run with the live diagnosis engine: the detectors watch the same
  // emit stream the recorder would, and the closing health report shows what
  // they concluded *during* the run — before the offline correlator confirms.
  obs::ObsSession::Options obs_options;
  obs_options.trace = argc > 1;
  obs_options.live = true;
  auto observability = std::make_unique<obs::ObsSession>(simulator, obs_options);

  app::SessionConfig config;
  config.seed = 77;
  config.channel = ran::ChannelModel::FadingRadio();
  config.cross_traffic = net::CapacityTrace{16e6};
  config.cell.cell_ul_capacity_bps = 25e6;
  app::Session session{simulator, config};
  session.Run(60s);

  auto data = core::Correlator::Correlate(session.BuildCorrelatorInput());

  if (argc > 1) {
    std::ofstream os{argv[1]};
    if (!os) {
      std::cerr << "cannot write " << argv[1] << '\n';
      return 1;
    }
    observability->recorder().WriteJson(os);
    std::cout << "wrote trace to " << argv[1]
              << " — open in ui.perfetto.dev and look for the pkt.uplink spans "
                 "on the correlator track\n";
  }

  // Rank delivered media packets by uplink one-way delay.
  std::vector<const core::CrossLayerRecord*> worst;
  for (const auto& p : data.packets) {
    if (p.reached_core && p.is_media()) worst.push_back(&p);
  }
  std::sort(worst.begin(), worst.end(),
            [](const auto* a, const auto* b) { return a->uplink_owd > b->uplink_owd; });

  stats::PrintBanner(std::cout, "the 10 worst-delayed packets, explained");
  for (std::size_t i = 0; i < std::min<std::size_t>(10, worst.size()); ++i) {
    const auto& p = *worst[i];
    std::cout << "\n#" << i + 1 << "  packet " << p.packet_id << " ("
              << net::ToString(p.kind) << ", " << p.size_bytes << " B)";
    if (p.is_media()) {
      std::cout << " — frame " << p.frame_id << " [" << net::ToString(p.layer) << "]";
    }
    std::cout << '\n';
    std::cout << "   sent " << stats::Fmt(p.sent_at.ms(), 3) << " ms, reached core "
              << stats::Fmt(p.core_at.ms(), 3) << " ms → one-way delay "
              << stats::Fmt(sim::ToMs(p.uplink_owd), 3) << " ms\n";
    std::cout << "   carried by " << p.tb_chains.size() << " TB chain(s)";
    if (p.max_harq_rounds > 0) {
      std::cout << ", worst chain retransmitted " << int{p.max_harq_rounds} << "×";
    }
    std::cout << " — last grant " << ran::ToString(p.last_grant) << '\n';
    std::cout << "   breakdown: waited " << stats::Fmt(sim::ToMs(p.sched_wait), 2)
              << " ms for a grant/slot, trickled "
              << stats::Fmt(sim::ToMs(p.transmission_spread), 2)
              << " ms across slots, HARQ added " << stats::Fmt(sim::ToMs(p.rtx_inflation), 2)
              << " ms\n";
    std::cout << "   verdict: " << core::ToString(p.primary_cause) << '\n';
  }

  stats::PrintBanner(std::cout, "root causes across all " +
                                    std::to_string(data.packets.size()) + " packets");
  for (const auto& [cause, count] : core::Analyzer::RootCauseBreakdown(data)) {
    std::cout << "  " << core::ToString(cause) << ": " << count << '\n';
  }

  // The same verdicts, reached live: the streaming detectors saw only the
  // trace stream, with no access to the ground-truth correlator dataset.
  stats::PrintBanner(std::cout, "live diagnosis (streaming detectors)");
  obs::live::HealthReport::Build(*observability->live()).Render(std::cout);
  return 0;
}
