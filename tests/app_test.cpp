#include <chrono>

#include <gtest/gtest.h>

#include "app/adaptation.hpp"
#include "app/session.hpp"
#include "app/sfu.hpp"
#include "core/analyzer.hpp"
#include "sim/simulator.hpp"

namespace athena::app {
namespace {

using namespace std::chrono_literals;
using sim::kEpoch;

// ---------- ZoomAdaptation ----------

class AdaptationTest : public ::testing::Test {
 protected:
  AdaptationTest()
      : encoder_(media::VideoEncoder::Config{}, sim::Rng{1}), adaptation_(encoder_) {}

  /// Feeds one feedback batch with the given relative OWD (ms) and
  /// per-packet jitter (ms).
  void Feed(sim::TimePoint now, double owd_ms, double jitter_ms = 0.0, int packets = 10) {
    std::vector<rtp::PacketReport> reports;
    for (int i = 0; i < packets; ++i) {
      const auto send = now - 200ms + sim::Duration{i * 10'000};
      const double owd = owd_ms + ((i % 2 == 0) ? jitter_ms : 0.0);
      reports.push_back(rtp::PacketReport{
          .transport_seq = seq_++,
          .send_ts = send,
          .recv_ts = send + sim::FromMs(5.0 + owd),  // 5 ms floor
          .size_bytes = 1200,
      });
    }
    adaptation_.OnFeedback(reports, now);
  }

  media::VideoEncoder encoder_;
  ZoomAdaptation adaptation_;
  std::uint16_t seq_ = 0;
};

TEST_F(AdaptationTest, StaysAt28FpsWhenHealthy) {
  for (int i = 0; i < 100; ++i) {
    Feed(kEpoch + sim::Duration{i * 100'000}, 5.0);
  }
  EXPECT_EQ(adaptation_.mode(), media::SvcMode::kHighFps28);
  EXPECT_FALSE(adaptation_.skipping());
  EXPECT_EQ(adaptation_.mode_downgrades(), 0u);
}

TEST_F(AdaptationTest, HighDelayLocksLowFpsMode) {
  Feed(kEpoch, 5.0);  // establish the baseline
  for (int i = 1; i < 60; ++i) {
    Feed(kEpoch + sim::Duration{i * 100'000}, 1500.0);  // 1.5 s of queue
  }
  EXPECT_EQ(adaptation_.mode(), media::SvcMode::kLowFps14);
  EXPECT_EQ(adaptation_.mode_downgrades(), 1u);
}

TEST_F(AdaptationTest, RecoveryRequiresSustainedLowDelay) {
  Feed(kEpoch, 5.0);
  for (int i = 1; i < 60; ++i) Feed(kEpoch + sim::Duration{i * 100'000}, 1500.0);
  ASSERT_EQ(adaptation_.mode(), media::SvcMode::kLowFps14);

  // A short calm period is not enough (recover_hold = 30 s).
  for (int i = 0; i < 50; ++i) Feed(kEpoch + 6s + sim::Duration{i * 100'000}, 2.0);
  EXPECT_EQ(adaptation_.mode(), media::SvcMode::kLowFps14);

  // A long calm period recovers 28 fps.
  for (int i = 0; i < 400; ++i) Feed(kEpoch + 11s + sim::Duration{i * 100'000}, 2.0);
  EXPECT_EQ(adaptation_.mode(), media::SvcMode::kHighFps28);
  EXPECT_EQ(adaptation_.mode_recoveries(), 1u);
}

TEST_F(AdaptationTest, JitterTriggersTransientSkipping) {
  Feed(kEpoch, 5.0);
  for (int i = 1; i < 60; ++i) {
    Feed(kEpoch + sim::Duration{i * 100'000}, 10.0, /*jitter_ms=*/40.0);
  }
  EXPECT_TRUE(adaptation_.skipping());
  EXPECT_EQ(adaptation_.mode(), media::SvcMode::kHighFps28);  // ladder unchanged
  EXPECT_GT(encoder_.enhancement_skip_fraction(), 0.0);
}

TEST_F(AdaptationTest, SkippingClearsWithHysteresis) {
  Feed(kEpoch, 5.0);
  for (int i = 1; i < 60; ++i) {
    Feed(kEpoch + sim::Duration{i * 100'000}, 10.0, 40.0);
  }
  ASSERT_TRUE(adaptation_.skipping());
  for (int i = 0; i < 200; ++i) {
    Feed(kEpoch + 7s + sim::Duration{i * 100'000}, 5.0, 0.0);
  }
  EXPECT_FALSE(adaptation_.skipping());
  EXPECT_DOUBLE_EQ(encoder_.enhancement_skip_fraction(), 0.0);
}

TEST_F(AdaptationTest, LogsDelayAndFps) {
  Feed(kEpoch, 5.0);
  Feed(kEpoch + 100ms, 5.0);
  EXPECT_EQ(adaptation_.delay_log().size(), 2u);
  EXPECT_EQ(adaptation_.fps_log().size(), 2u);
  EXPECT_NEAR(adaptation_.fps_log().samples()[0].value, 28.0, 0.1);
}

// ---------- SfuServer ----------

TEST(SfuTest, ForwardsWithProcessingDelay) {
  sim::Simulator sim;
  SfuServer sfu{sim, {}, sim::Rng{1}};
  std::vector<sim::TimePoint> out;
  sfu.set_forward_path([&](const net::Packet&) { out.push_back(sim.Now()); });
  net::Packet p;
  p.id = 1;
  p.kind = net::PacketKind::kRtpVideo;
  sfu.OnPacket(p);
  sim.RunAll();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_GT(out[0], kEpoch);          // some processing time
  EXPECT_LT(out[0], kEpoch + 100ms);  // but bounded
}

TEST(SfuTest, PreservesOrder) {
  sim::Simulator sim;
  SfuServer sfu{sim, {.spike_probability = 0.3}, sim::Rng{2}};
  std::vector<net::PacketId> order;
  sfu.set_forward_path([&](const net::Packet& p) { order.push_back(p.id); });
  for (net::PacketId i = 1; i <= 30; ++i) {
    sim.ScheduleAfter(sim::Duration{static_cast<std::int64_t>(i) * 1000}, [&sfu, i] {
      net::Packet p;
      p.id = i;
      sfu.OnPacket(p);
    });
  }
  sim.RunAll();
  ASSERT_EQ(order.size(), 30u);
  for (std::size_t i = 1; i < order.size(); ++i) EXPECT_LT(order[i - 1], order[i]);
}

TEST(SfuTest, SpikesAddHeavyTail) {
  sim::Simulator sim;
  SfuServer always_spikes{sim, {.spike_probability = 1.0}, sim::Rng{3}};
  sim::TimePoint out;
  always_spikes.set_forward_path([&](const net::Packet&) { out = sim.Now(); });
  net::Packet p;
  p.id = 1;
  always_spikes.OnPacket(p);
  sim.RunAll();
  EXPECT_GT(out, kEpoch + 5ms);
}

// ---------- VcaSender / VcaReceiver through a loopback ----------

TEST(SenderReceiverTest, LoopbackDeliversMediaAndAdaptsRate) {
  sim::Simulator sim;
  net::PacketIdGenerator ids;
  media::QoeCollector qoe;

  VcaSender::Config sender_config;
  auto sender = std::make_unique<VcaSender>(sim, sender_config,
                                            std::make_unique<GccController>(), ids,
                                            sim::Rng{4});
  auto receiver =
      std::make_unique<VcaReceiver>(sim, VcaReceiver::DefaultConfig(), ids, qoe);
  sender->set_qoe(&qoe);

  net::FixedDelayLink forward{sim, {.delay = 20ms}};
  net::FixedDelayLink back{sim, {.delay = 20ms}};
  sender->set_outbound(forward.AsHandler());
  forward.set_sink(receiver->AsHandler());
  receiver->set_feedback_path(back.AsHandler());
  back.set_sink(sender->FeedbackHandler());

  receiver->Start();
  sender->Start();
  sim.RunUntil(kEpoch + 10s);
  sender->Stop();
  receiver->Stop();

  EXPECT_GT(sender->media_packets_sent(), 500u);
  EXPECT_GT(sender->feedback_received(), 50u);
  // Everything arrives except what was still on the 20 ms wire at cutoff.
  EXPECT_GE(receiver->packets_received() + 10, sender->media_packets_sent());
  EXPECT_GT(qoe.video_frames_rendered(), 200u);
  // On a clean 20 ms path GCC ramps up from its initial 600 kbps.
  EXPECT_GT(sender->controller().target_bps(), 700e3);
  // Frame rate at the receiver is the full 28 fps ladder.
  EXPECT_NEAR(qoe.FrameRateFps().Median(), 28.0, 2.0);
}

TEST(SenderReceiverTest, StopHaltsTraffic) {
  sim::Simulator sim;
  net::PacketIdGenerator ids;
  media::QoeCollector qoe;
  auto sender = std::make_unique<VcaSender>(sim, VcaSender::Config{},
                                            std::make_unique<GccController>(), ids,
                                            sim::Rng{4});
  int packets = 0;
  sender->set_outbound([&](const net::Packet&) { ++packets; });
  sender->Start();
  sim.RunUntil(kEpoch + 1s);
  sender->Stop();
  const int at_stop = packets;
  sim.RunUntil(kEpoch + 2s);
  EXPECT_EQ(packets, at_stop);
}

TEST(SenderReceiverTest, AudioAndVideoUseDistinctSsrcs) {
  sim::Simulator sim;
  net::PacketIdGenerator ids;
  auto sender = std::make_unique<VcaSender>(sim, VcaSender::Config{},
                                            std::make_unique<GccController>(), ids,
                                            sim::Rng{4});
  bool saw_audio = false;
  bool saw_video = false;
  sender->set_outbound([&](const net::Packet& p) {
    if (p.is_audio()) {
      saw_audio = true;
      EXPECT_EQ(p.rtp->ssrc, 0x20u);
    } else if (p.is_video()) {
      saw_video = true;
      EXPECT_EQ(p.rtp->ssrc, 0x10u);
    }
  });
  sender->Start();
  sim.RunUntil(kEpoch + 1s);
  sender->Stop();
  EXPECT_TRUE(saw_audio);
  EXPECT_TRUE(saw_video);
}

// ---------- Pacer ----------

TEST(PacerTest, SpacesPacketsAtPacingRate) {
  sim::Simulator sim;
  Pacer pacer{sim, Pacer::Config{.rate_factor = 1.0, .min_rate_bps = 8e6}};
  pacer.set_target_bitrate(8e6);  // 1000 B packet → 1 ms spacing
  std::vector<sim::TimePoint> out;
  pacer.set_sink([&](const net::Packet&) { out.push_back(sim.Now()); });
  for (int i = 0; i < 5; ++i) {
    net::Packet p;
    p.id = static_cast<net::PacketId>(i + 1);
    p.size_bytes = 1000;
    pacer.Send(p);
  }
  sim.RunAll();
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out[0], kEpoch);           // head leaves immediately
  EXPECT_EQ(out[1], kEpoch + 1ms);
  EXPECT_EQ(out[4], kEpoch + 4ms);
}

TEST(PacerTest, IdlePeriodsDoNotAccumulateCredit) {
  sim::Simulator sim;
  Pacer pacer{sim, Pacer::Config{.rate_factor = 1.0, .min_rate_bps = 8e6}};
  pacer.set_target_bitrate(8e6);
  std::vector<sim::TimePoint> out;
  pacer.set_sink([&](const net::Packet&) { out.push_back(sim.Now()); });
  auto send = [&](net::PacketId id) {
    net::Packet p;
    p.id = id;
    p.size_bytes = 1000;
    pacer.Send(p);
  };
  send(1);
  sim.ScheduleAfter(10ms, [&] {
    send(2);
    send(3);
  });
  sim.RunAll();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[1], kEpoch + 10ms);   // sent on arrival (bucket idle)
  EXPECT_EQ(out[2], kEpoch + 11ms);   // then paced
}

TEST(PacerTest, DropsWhenQueueOverflows) {
  sim::Simulator sim;
  Pacer pacer{sim, Pacer::Config{.rate_factor = 1.0, .min_rate_bps = 3e5,
                                 .max_queue_packets = 3}};
  pacer.set_sink([](const net::Packet&) {});
  for (int i = 0; i < 10; ++i) {
    net::Packet p;
    p.id = static_cast<net::PacketId>(i + 1);
    p.size_bytes = 1200;
    pacer.Send(p);
  }
  EXPECT_GT(pacer.dropped(), 0u);
  sim.RunAll();
}

TEST(PacerTest, SenderIntegrationPacesBursts) {
  sim::Simulator sim;
  net::PacketIdGenerator ids;
  VcaSender::Config config;
  config.pacing_enabled = true;
  config.pacer.rate_factor = 2.0;
  auto sender = std::make_unique<VcaSender>(sim, config, std::make_unique<GccController>(),
                                            ids, sim::Rng{4});
  std::vector<sim::TimePoint> video_times;
  sender->set_outbound([&](const net::Packet& p) {
    if (p.is_video()) video_times.push_back(sim.Now());
  });
  sender->Start();
  sim.RunUntil(kEpoch + 2s);
  sender->Stop();
  ASSERT_GT(video_times.size(), 50u);
  // With pacing, consecutive same-frame packets never share an instant.
  std::size_t coincident = 0;
  for (std::size_t i = 1; i < video_times.size(); ++i) {
    if (video_times[i] == video_times[i - 1]) ++coincident;
  }
  EXPECT_EQ(coincident, 0u);
}

// ---------- Session integration ----------

TEST(SessionTest, FiveGSessionProducesAllArtifacts) {
  sim::Simulator sim;
  SessionConfig config;
  config.channel.base_bler = 0.08;
  Session session{sim, config};
  session.Run(10s);

  EXPECT_GT(session.sender_capture().count(), 1000u);
  EXPECT_GT(session.core_capture().count(), 1000u);
  EXPECT_GT(session.sfu_in_capture().count(), 1000u);
  EXPECT_GT(session.sfu_out_capture().count(), 1000u);
  EXPECT_GT(session.receiver_capture().count(), 1000u);
  ASSERT_NE(session.ran_uplink(), nullptr);
  EXPECT_GT(session.ran_uplink()->telemetry().size(), 3000u);
  ASSERT_NE(session.icmp_prober(), nullptr);
  EXPECT_GT(session.icmp_prober()->results().size(), 400u);
  EXPECT_GT(session.qoe().video_frames_rendered(), 200u);
}

TEST(SessionTest, EmulatedSessionHasNoRan) {
  sim::Simulator sim;
  SessionConfig config;
  config.access = SessionConfig::Access::kEmulated;
  config.emulated_capacity = net::CapacityTrace{8e6};
  Session session{sim, config};
  session.Run(5s);
  EXPECT_EQ(session.ran_uplink(), nullptr);
  EXPECT_GT(session.receiver_capture().count(), 500u);
  EXPECT_GT(session.qoe().video_frames_rendered(), 100u);
}

TEST(SessionTest, IcmpSeesWanButNotSfuProcessing) {
  sim::Simulator sim;
  SessionConfig config;
  config.sfu.proc_median_ms = 8.0;  // make app-layer processing visible
  Session session{sim, config};
  session.Run(10s);

  stats::Cdf icmp_rtt;
  for (const auto& r : session.icmp_prober()->results()) {
    icmp_rtt.Add(sim::ToMs(r.rtt));
  }
  ASSERT_FALSE(icmp_rtt.empty());
  // Kernel reflection: RTT ≈ 2 × wan_delay, unaffected by SFU processing.
  EXPECT_NEAR(icmp_rtt.Median(), 20.0, 3.0);
}

TEST(SessionTest, ClockOffsetEstimationIsAccurate) {
  sim::Simulator sim;
  SessionConfig config;
  config.sender_clock_offset = 2500us;
  config.receiver_clock_offset = -1700us;
  Session session{sim, config};
  session.Run(10s);
  const auto input = session.BuildCorrelatorInput();
  // Estimated offsets must cancel the configured ones within a millisecond.
  EXPECT_NEAR(sim::ToMs(input.sender_offset), -2.5, 1.0);
  EXPECT_NEAR(sim::ToMs(input.receiver_offset), 1.7, 1.5);
}

TEST(SessionTest, DeterministicForFixedSeed) {
  auto run = [](std::uint64_t seed) {
    sim::Simulator sim;
    SessionConfig config;
    config.seed = seed;
    config.channel.base_bler = 0.1;
    Session session{sim, config};
    session.Run(5s);
    return session.core_capture().count();
  };
  EXPECT_EQ(run(9), run(9));
  EXPECT_NE(run(9), run(10));  // different seed, different trajectory (almost surely)
}

TEST(SessionTest, NadaControllerOptionWorks) {
  sim::Simulator sim;
  SessionConfig config;
  config.controller = SessionConfig::Controller::kNada;
  Session session{sim, config};
  session.Run(5s);
  EXPECT_GT(session.qoe().video_frames_rendered(), 100u);
}

}  // namespace
}  // namespace athena::app
