// Tests for the fleet telemetry ingest pipeline (src/obs/pipeline/):
// SPSC rings and priority-aware backpressure, the collector topology,
// the ATHC columnar format round-trip, time-bucketed rollups with
// bounded-memory width doubling, sharded Prometheus export, chunked
// Perfetto emission, and the interaction between ring backpressure and
// the resilience/ byte budgets.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "app/session.hpp"
#include "obs/fleet/slo.hpp"
#include "obs/live/exposition.hpp"
#include "obs/obs.hpp"
#include "obs/pipeline/collector.hpp"
#include "obs/pipeline/columnar.hpp"
#include "obs/pipeline/export.hpp"
#include "obs/pipeline/pipeline.hpp"
#include "obs/pipeline/ring.hpp"
#include "obs/pipeline/rollup.hpp"
#include "obs/prom_text.hpp"
#include "resilience/overload.hpp"
#include "sim/runner.hpp"
#include "sim/simulator.hpp"

namespace athena::obs::pipeline {
namespace {

using namespace std::chrono_literals;

TraceEvent MakeEvent(TraceName name, std::int64_t ts_us, double value,
                     Layer layer = Layer::kNet) {
  TraceEvent e;
  e.phase = TraceEvent::Phase::kInstant;
  e.layer = layer;
  e.name = name.id;
  e.ts = sim::kEpoch + std::chrono::microseconds{ts_us};
  e.args[0] = TraceArg{"value", value};
  e.arg_count = 1;
  return e;
}

// --- SpscRing ---

TEST(SpscRing, RoundTripsBatchesAcrossWrap) {
  SpscRing ring{8};  // capacity 8, usable 7
  std::vector<TraceEvent> in;
  for (int i = 0; i < 5; ++i) in.push_back(MakeEvent(names::kPktHop, i, i));
  std::vector<TraceEvent> out(8);
  // Several push/pop cycles so head/tail wrap the power-of-two boundary.
  for (int cycle = 0; cycle < 10; ++cycle) {
    ASSERT_EQ(ring.PushBatch(in.data(), in.size()), in.size());
    ASSERT_EQ(ring.PopBatch(out.data(), out.size()), in.size());
    for (std::size_t i = 0; i < in.size(); ++i) {
      EXPECT_EQ(out[i].ts, in[i].ts) << "cycle " << cycle << " event " << i;
      EXPECT_DOUBLE_EQ(out[i].Arg("value"), in[i].Arg("value"));
    }
  }
}

TEST(SpscRing, AcceptsOnlyPrefixWhenFull) {
  SpscRing ring{8};
  std::vector<TraceEvent> in;
  for (int i = 0; i < 20; ++i) in.push_back(MakeEvent(names::kPktHop, i, i));
  const std::size_t accepted = ring.PushBatch(in.data(), in.size());
  EXPECT_EQ(accepted, ring.capacity() - 1);  // one slot kept empty
  // The accepted events are exactly the prefix, in order.
  std::vector<TraceEvent> out(20);
  const std::size_t got = ring.PopBatch(out.data(), out.size());
  ASSERT_EQ(got, accepted);
  for (std::size_t i = 0; i < got; ++i) EXPECT_EQ(out[i].ts, in[i].ts);
}

TEST(SpscRing, SpscThreadsDeliverEverythingInOrder) {
  SpscRing ring{1 << 10};
  constexpr int kEvents = 200'000;
  std::thread consumer{[&] {
    std::vector<TraceEvent> buf(512);
    std::int64_t expect = 0;
    while (expect < kEvents) {
      const std::size_t n = ring.PopBatch(buf.data(), buf.size());
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(buf[i].ts, sim::kEpoch + std::chrono::microseconds{expect});
        ++expect;
      }
    }
  }};
  std::vector<TraceEvent> batch;
  std::int64_t next = 0;
  while (next < kEvents) {
    batch.clear();
    for (int i = 0; i < 64 && next < kEvents; ++i) {
      batch.push_back(MakeEvent(names::kPktHop, next++, 1.0));
    }
    std::size_t off = 0;
    while (off < batch.size()) {
      off += ring.PushBatch(batch.data() + off, batch.size() - off);
    }
  }
  consumer.join();
}

// --- RingTraceSink backpressure ---

TEST(RingTraceSink, ShedsLowPriorityButRetriesCritical) {
  SpscRing ring{64};
  RingTraceSink sink{&ring};
  // Fill the ring (and the sink's local batch) with low-priority events.
  const std::size_t usable = ring.capacity() - 1;
  for (std::size_t i = 0; i < usable + RingTraceSink::kBatch; ++i) {
    sink.Emit(MakeEvent(names::kPktHop, static_cast<std::int64_t>(i), 1.0));
  }
  sink.Flush();
  EXPECT_EQ(sink.stats().pushed, usable);
  EXPECT_GT(sink.stats().shed_low, 0u);
  EXPECT_EQ(sink.stats().shed_critical, 0u);

  // With the ring still full, a critical event is retried and then shed
  // (counted in its own tier) — a low-priority one is just shed.
  const TraceEvent critical = MakeEvent(names::kTbTx, 1'000'000, 1.0, Layer::kRan);
  ASSERT_TRUE(CriticalTraceEvent(critical));
  sink.EmitBatch(&critical, 1);
  EXPECT_EQ(sink.stats().shed_critical, 1u);

  // Free one slot: the next critical event's retry lands even though the
  // batch as a whole was rejected.
  TraceEvent out;
  ASSERT_EQ(ring.PopBatch(&out, 1), 1u);
  sink.EmitBatch(&critical, 1);
  EXPECT_EQ(sink.stats().shed_critical, 1u);  // unchanged: it got in
  EXPECT_EQ(sink.stats().pushed, usable + 1);
}

// --- Collector ---

TEST(Collector, DrainsAllShardsIntoSinksInline) {
  Collector collector{{.ring_capacity = 256, .drain_batch = 64}};
  TraceRecorder downstream;
  collector.AddSink(&downstream);
  RingTraceSink* a = collector.AddShard();
  RingTraceSink* b = collector.AddShard();
  for (int i = 0; i < 100; ++i) {
    a->Emit(MakeEvent(names::kPktHop, i, 1.0));
    b->Emit(MakeEvent(names::kFrameEncoded, i, 2.0, Layer::kMedia));
  }
  a->Flush();
  b->Flush();
  EXPECT_EQ(collector.DrainOnce(), 200u);
  EXPECT_EQ(downstream.size(), 200u);
  EXPECT_EQ(collector.stats().events, 200u);
  EXPECT_GT(collector.stats().batches, 0u);
  EXPECT_EQ(collector.shard_count(), 2u);
}

TEST(Collector, BackgroundThreadDeliversEverything) {
  Collector collector{{.ring_capacity = 1 << 12, .drain_batch = 256}};
  TimeBucketRollup rollup;
  collector.AddSink(&rollup);
  collector.Start();
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 50'000;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    RingTraceSink* sink = collector.AddShard();
    producers.emplace_back([sink, p] {
      // Free-running producers: any event the collector can't keep up
      // with is shed-and-counted, never double-delivered — the invariant
      // the conservation check below pins.
      for (int i = 0; i < kPerProducer; ++i) {
        sink->Emit(MakeEvent(names::kPktHop, p * kPerProducer + i, 1.0));
      }
      sink->Flush();
    });
  }
  for (auto& t : producers) t.join();
  collector.Stop();
  const RingStats rings = collector.TotalRingStats();
  EXPECT_EQ(collector.stats().events + rings.shed(),
            static_cast<std::uint64_t>(kProducers) * kPerProducer);
  EXPECT_EQ(rollup.events_folded(), collector.stats().events);
}

// --- Columnar format ---

std::vector<TraceEvent> MixedEvents(int n) {
  std::vector<TraceEvent> events;
  std::mt19937_64 rng{7};
  for (int i = 0; i < n; ++i) {
    TraceEvent e;
    switch (i % 4) {
      case 0:
        e = MakeEvent(names::kPktHop, i * 10, static_cast<double>(rng() % 1000));
        break;
      case 1:
        e.phase = TraceEvent::Phase::kComplete;
        e.layer = Layer::kRan;
        e.name = names::kRanTransit.id;
        e.ts = sim::kEpoch + std::chrono::microseconds{i * 10 + 1};
        e.dur = std::chrono::microseconds{5 + static_cast<int>(rng() % 100)};
        e.args[0] = TraceArg{"bytes", static_cast<double>(rng() % 1500)};
        e.args[1] = TraceArg{"harq", static_cast<double>(rng() % 4)};
        e.arg_count = 2;
        break;
      case 2:
        e.phase = TraceEvent::Phase::kCounter;
        e.layer = Layer::kCc;
        e.name = names::kCcTargetBps.id;
        e.ts = sim::kEpoch + std::chrono::microseconds{i * 10 + 2};
        e.args[0] = TraceArg{"value", 1e6 + static_cast<double>(rng() % 100000)};
        e.arg_count = 1;
        break;
      default:
        e.phase = TraceEvent::Phase::kAsyncBegin;
        e.layer = Layer::kApp;
        e.name = names::kFrameJb.id;
        e.ts = sim::kEpoch + std::chrono::microseconds{i * 10 + 3};
        e.id = static_cast<std::uint64_t>(i);
        break;
    }
    events.push_back(e);
  }
  return events;
}

TEST(Columnar, RoundTripsDigestIdentical) {
  const std::vector<TraceEvent> events = MixedEvents(10'000);
  std::ostringstream out;
  EventStreamDigest written;
  {
    ColumnarWriter writer{out};
    for (const TraceEvent& e : events) {
      writer.Emit(e);
      written.Add(e);
    }
    writer.Finish();
  }
  // The binary stream is drastically smaller than 128 B/event.
  EXPECT_LT(out.str().size(), events.size() * sizeof(TraceEvent) / 3);

  std::istringstream in{out.str()};
  ColumnarReader reader{in};
  EventStreamDigest read_digest;
  std::uint64_t count = 0;
  // ForEach verifies the footer digest itself and returns it — the
  // round-trip oracle. We recompute independently as a second check.
  const std::uint64_t footer_digest = reader.ForEach([&](const TraceEvent& e) {
    read_digest.Add(e);
    ++count;
  });
  EXPECT_EQ(count, events.size());
  EXPECT_EQ(read_digest.value(), written.value());
  EXPECT_EQ(footer_digest, written.value());
}

TEST(Columnar, ReaderRejectsCorruption) {
  std::ostringstream out;
  {
    ColumnarWriter writer{out};
    for (const TraceEvent& e : MixedEvents(1000)) writer.Emit(e);
    writer.Finish();
  }
  std::string bytes = out.str();
  bytes[bytes.size() / 2] ^= 0x5a;  // flip a payload byte mid-stream
  std::istringstream in{bytes};
  EXPECT_THROW(
      {
        ColumnarReader reader{in};
        reader.ForEach([](const TraceEvent&) {});
      },
      std::runtime_error);
}

TEST(Columnar, ReaderRejectsTruncation) {
  std::ostringstream out;
  {
    ColumnarWriter writer{out};
    for (const TraceEvent& e : MixedEvents(1000)) writer.Emit(e);
    writer.Finish();
  }
  const std::string bytes = out.str().substr(0, out.str().size() * 2 / 3);
  std::istringstream in{bytes};
  // Truncation either corrupts a block (checksum throw) or removes the
  // footer (VerifyFooter inside ForEach throws) — never a silent pass.
  EXPECT_THROW(
      {
        ColumnarReader reader{in};
        reader.ForEach([](const TraceEvent&) {});
      },
      std::runtime_error);
}

// --- QuantileSketch ---

TEST(QuantileSketch, BoundedRelativeError) {
  QuantileSketch sketch;
  std::vector<double> values;
  std::mt19937_64 rng{11};
  std::lognormal_distribution<double> dist{2.0, 1.0};
  for (int i = 0; i < 100'000; ++i) {
    const double v = dist(rng);
    values.push_back(v);
    sketch.Add(v);
  }
  std::sort(values.begin(), values.end());
  for (const double q : {0.5, 0.9, 0.99}) {
    const double exact = values[static_cast<std::size_t>(q * (values.size() - 1))];
    const double approx = sketch.Quantile(q);
    EXPECT_NEAR(approx, exact, exact * 0.20) << "q=" << q;
  }
}

TEST(QuantileSketch, MergeEqualsUnion) {
  QuantileSketch a;
  QuantileSketch b;
  QuantileSketch all;
  std::mt19937_64 rng{13};
  for (int i = 0; i < 10'000; ++i) {
    const double v = static_cast<double>(rng() % 10'000) / 7.0;
    (i % 2 == 0 ? a : b).Add(v);
    all.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  for (const double q : {0.1, 0.5, 0.99}) {
    EXPECT_DOUBLE_EQ(a.Quantile(q), all.Quantile(q));
  }
}

// --- TimeBucketRollup ---

TEST(Rollup, FoldsEventsIntoBuckets) {
  TimeBucketRollup rollup{{.bucket_width = 100ms, .max_buckets = 64}};
  for (int i = 0; i < 1000; ++i) {
    rollup.Emit(MakeEvent(names::kPktHop, i * 1000, static_cast<double>(i)));
  }
  EXPECT_EQ(rollup.events_folded(), 1000u);
  EXPECT_EQ(rollup.series_count(), 1u);
  const RollupBucket agg = rollup.SeriesAggregate("pkt.hop", Layer::kNet);
  EXPECT_EQ(agg.count, 1000u);
  EXPECT_DOUBLE_EQ(agg.sum, 999.0 * 1000.0 / 2.0);
  EXPECT_DOUBLE_EQ(agg.min, 0.0);
  EXPECT_DOUBLE_EQ(agg.max, 999.0);
}

TEST(Rollup, WidthDoublingBoundsMemoryForUnboundedHorizon) {
  TimeBucketRollup rollup{{.bucket_width = 1ms, .max_buckets = 64}};
  // 10'000 ms of virtual time at 1 ms buckets would be 10'000 buckets;
  // the cap forces width doubling instead.
  for (int i = 0; i < 10'000; ++i) {
    rollup.Emit(MakeEvent(names::kPktHop, i * 1000, 1.0));
  }
  EXPECT_GT(rollup.rescales(), 0u);
  const auto& series = rollup.series().begin()->second;
  EXPECT_LE(series.buckets.size(), 64u);
  EXPECT_GT(series.width, sim::Duration{1ms});
  // Nothing is lost by folding: the aggregate still covers every event.
  EXPECT_EQ(rollup.SeriesAggregate("pkt.hop", Layer::kNet).count, 10'000u);
}

TEST(Rollup, FoldsAreOrderInsensitive) {
  const std::vector<TraceEvent> events = MixedEvents(5000);
  TimeBucketRollup forward{{.bucket_width = 50ms, .max_buckets = 128}};
  TimeBucketRollup backward{{.bucket_width = 50ms, .max_buckets = 128}};
  for (const TraceEvent& e : events) forward.Emit(e);
  for (auto it = events.rbegin(); it != events.rend(); ++it) backward.Emit(*it);
  std::ostringstream a;
  std::ostringstream b;
  forward.WriteCsv(a);
  backward.WriteCsv(b);
  EXPECT_EQ(a.str(), b.str());
}

TEST(Rollup, MergeMatchesSingleInstance) {
  const std::vector<TraceEvent> events = MixedEvents(4000);
  TimeBucketRollup single{{.bucket_width = 50ms, .max_buckets = 128}};
  TimeBucketRollup left{{.bucket_width = 50ms, .max_buckets = 128}};
  TimeBucketRollup right{{.bucket_width = 50ms, .max_buckets = 128}};
  for (std::size_t i = 0; i < events.size(); ++i) {
    single.Emit(events[i]);
    (i % 2 == 0 ? left : right).Emit(events[i]);
  }
  left.Merge(right);
  std::ostringstream a;
  std::ostringstream b;
  single.WriteCsv(a);
  left.WriteCsv(b);
  EXPECT_EQ(a.str(), b.str());
}

// --- prom_text + sharded export ---

TEST(PromText, SanitizeMetricName) {
  EXPECT_EQ(prom::SanitizeMetricName("sim.events_executed"), "sim_events_executed");
  EXPECT_EQ(prom::SanitizeMetricName("a-b.c:d"), "a_b_c:d");
  EXPECT_EQ(prom::SanitizeMetricName("9lives"), "_9lives");
  EXPECT_EQ(prom::SanitizeMetricName(""), "_");
}

TEST(ShardedExport, ShardsAreDisjointAndCoverEverything) {
  MetricsRegistry registry;
  registry.Counter("pipeline.ingested") = 123;
  registry.Gauge("sim.queue_depth") = 4.5;
  registry.Gauge("cc.target_bps") = 1e6;
  registry.Gauge("ran.harq_failures") = 2;

  TimeBucketRollup rollup;
  for (const TraceEvent& e : MixedEvents(2000)) rollup.Emit(e);

  constexpr unsigned kShards = 4;
  std::vector<std::string> shards;
  std::size_t families_total = 0;
  for (unsigned s = 0; s < kShards; ++s) {
    std::ostringstream os;
    WritePrometheusShard(os, rollup, &registry, {.shard = s, .shard_count = kShards});
    shards.push_back(os.str());
  }
  std::ostringstream full_os;
  WritePrometheusShard(full_os, rollup, &registry, {.shard = 0, .shard_count = 1});
  const std::string full = full_os.str();

  // Every sample line (non-comment) of the full exposition appears in
  // exactly one shard.
  std::istringstream lines{full};
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    ++families_total;
    int found = 0;
    for (const std::string& shard : shards) {
      if (shard.find(line) != std::string::npos) ++found;
    }
    EXPECT_EQ(found, 1) << "line: " << line;
  }
  EXPECT_GT(families_total, 10u);
}

// Golden-file pin of the Prometheus text exposition. Both writers (the
// live exposition and the sharded fleet exporter) share prom_text.hpp,
// so this pins the fleet-visible surface: name sanitization, histogram
// +Inf buckets, and the NaN / -Inf value tokens. After an intentional
// format change, regenerate with ATHENA_REGEN_GOLDEN=1.
TEST(Exposition, MatchesGoldenFile) {
  MetricsRegistry registry;
  registry.Counter("sim.events_executed") = 123456;
  registry.Counter("9starts.with-digit") = 7;
  registry.Gauge("cc.target-bps") = 2.5e6;
  registry.Gauge("edge.nan") = std::nan("");
  registry.Gauge("edge.neg_inf") = -std::numeric_limits<double>::infinity();
  registry.Gauge("edge.pos_inf") = std::numeric_limits<double>::infinity();
  // The mitigation control plane's counters (CountInc'd by the
  // MitigationController) ride the same exposition surface.
  registry.Counter("mitigation.actuations") = 2;
  registry.Counter("mitigation.reverts") = 1;
  registry.Counter("mitigation.guardrail_blocks") = 5;
  // World fault-tolerance counters (CountInc'd by the WorldSupervisor)
  // share the surface too.
  registry.Counter("resilience.world.checkpoints") = 9;
  registry.Counter("resilience.world.restores") = 2;
  registry.Counter("resilience.world.quarantines") = 1;
  for (const double v : {1.0, 2.0, 3.0, 4.0}) registry.Stats("owd.ms").Add(v);
  auto& histogram = registry.Histogram("frame.interval-ms", 0.0, 100.0, 4);
  for (const double v : {-5.0, 10.0, 50.0, 1000.0}) histogram.Add(v);

  // The fleet families ride the same exposition path: one synthetic
  // session through the SLO engine and the prevalence publisher pins
  // fleet.slo.* and fleet.prevalence.* formatting alongside the rest.
  fleet::SessionSummary summary;
  summary.scenario = "golden";
  summary.valid = true;
  for (const double owd : {4.0, 8.0, 40.0}) {
    summary.metric(fleet::FleetMetric::kUplinkOwdMs).Add(owd);
  }
  summary.metric(fleet::FleetMetric::kAudioGapFraction).Add(0.2);
  summary.anomalies[static_cast<std::size_t>(live::AnomalyKind::kTelemetryGap)] = 3;
  fleet::SloEngine slos;
  slos.Observe(summary);
  fleet::ScenarioAggregate aggregate;
  aggregate.Fold(summary);
  {
    ScopedMetrics scope{&registry};
    slos.PublishMetrics();
    fleet::PublishPrevalenceMetrics(aggregate);
  }

  std::ostringstream os;
  live::WritePrometheus(os, registry);
  const std::string actual = os.str();

  const std::string path = std::string{ATHENA_TEST_DATA_DIR} + "/exposition.golden";
  if (std::getenv("ATHENA_REGEN_GOLDEN") != nullptr) {
    std::ofstream out{path, std::ios::binary};
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream in{path, std::ios::binary};
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " — run once with ATHENA_REGEN_GOLDEN=1";
  std::ostringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(actual, golden.str());
}

TEST(ShardedExport, ShardAssignmentIsStable) {
  // Pinned expectations: a family moving shards across releases would
  // break scrape configs, so the FNV-1a placement is part of the format.
  const unsigned kShards = 8;
  EXPECT_EQ(prom::NameShard("athena_pipeline_ingested") % kShards,
            prom::NameShard("athena_pipeline_ingested") % kShards);
  const std::uint64_t h = prom::NameShard("athena_rollup_pkt_hop_count");
  EXPECT_EQ(h, prom::NameShard(std::string("athena_rollup_pkt_hop_count")));
}

// --- chunked Perfetto export ---

TEST(ChunkedPerfetto, EmitsValidJsonFromColumnarStream) {
  std::ostringstream columnar;
  const std::vector<TraceEvent> events = MixedEvents(3000);
  {
    ColumnarWriter writer{columnar};
    writer.EmitBatch(events.data(), events.size());
    writer.Finish();
  }
  std::istringstream in{columnar.str()};
  std::ostringstream json;
  const std::uint64_t emitted = WriteChunkedPerfetto(in, json);
  EXPECT_EQ(emitted, events.size());
  const std::string text = json.str();
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("pkt.hop"), std::string::npos);
  // Balanced braces/brackets is a cheap structural sanity check.
  EXPECT_EQ(std::count(text.begin(), text.end(), '{'),
            std::count(text.begin(), text.end(), '}'));
  EXPECT_EQ(std::count(text.begin(), text.end(), '['),
            std::count(text.begin(), text.end(), ']'));
}

// --- backpressure × resilience byte budgets (the shed-tier contract) ---

TEST(Backpressure, RingFloodUnderRecorderBudgetKeepsShedLedgersConsistent) {
  MetricsRegistry registry;
  ScopedMetrics metrics_scope{&registry};

  // A 64 KiB ring holds 512 events; the recorder budget is one chunk
  // (32 KiB = 256 events) — both tiers will shed under this flood.
  Collector collector{{.ring_capacity = (64 * 1024) / sizeof(TraceEvent)}};
  TraceRecorder recorder;
  recorder.set_byte_budget(32 * 1024);
  collector.AddSink(&recorder);
  RingTraceSink* sink = collector.AddShard();
  ASSERT_EQ(sink->ring()->capacity_bytes(), 64u * 1024u);

  // Flood: 4096 low-priority events, a critical event every 8, no
  // draining until the end — the ring must fill and shed.
  for (int i = 0; i < 4096; ++i) {
    if (i % 8 == 0) {
      sink->Emit(MakeEvent(names::kTbTx, i * 100, 1.0, Layer::kRan));
    } else {
      sink->Emit(MakeEvent(names::kPktHop, i * 100, 1.0));
    }
  }
  sink->Flush();
  const RingStats ring_stats = sink->stats();
  EXPECT_GT(ring_stats.shed_low, 0u);
  // Shed ordering: low-priority events shed far more than critical ones
  // (critical events get individual retries against freed slots).
  EXPECT_GT(ring_stats.shed_low, ring_stats.shed_critical * 4);

  collector.DrainOnce();
  collector.PublishMetrics();

  // Downstream, the recorder's budget shed low-priority events too (and
  // possibly evicted chunks for critical ones). Publish its ledger the
  // way resilience/ does and check every gauge against the source counters.
  resilience::ShedStats shed;
  shed.trace_shed = recorder.shed_low_priority();
  shed.trace_evicted = recorder.chunks_evicted();
  shed.PublishMetrics();

  EXPECT_GT(recorder.shed_low_priority(), 0u);
  EXPECT_EQ(registry.GaugeValue("resilience.shed.trace"),
            static_cast<double>(recorder.shed_low_priority()));
  EXPECT_EQ(registry.GaugeValue("resilience.shed.trace_evicted"),
            static_cast<double>(recorder.chunks_evicted()));
  EXPECT_EQ(registry.GaugeValue("resilience.shed.total"),
            static_cast<double>(shed.total()));
  EXPECT_EQ(registry.GaugeValue("pipeline.ring.shed_low"),
            static_cast<double>(ring_stats.shed_low));
  EXPECT_EQ(registry.GaugeValue("pipeline.ring.shed_critical"),
            static_cast<double>(ring_stats.shed_critical));
  EXPECT_EQ(registry.GaugeValue("pipeline.ingested"),
            static_cast<double>(ring_stats.pushed));
  // Conservation: every event either reached the collector or is in a
  // shed ledger.
  EXPECT_EQ(ring_stats.pushed + ring_stats.shed_low + ring_stats.shed_critical, 4096u);
  // Recorder-side conservation: buffered + shed + evicted = delivered.
  EXPECT_EQ(recorder.size() + recorder.shed_low_priority() +
                recorder.chunks_evicted() * 256,
            ring_stats.pushed);
}

// --- TelemetryPipeline end-to-end ---

TEST(TelemetryPipeline, SessionEventsFlowToRollupAndColumnar) {
  std::ostringstream columnar;
  TelemetryPipeline::Options options;
  options.columnar_out = &columnar;
  options.background = false;
  // Inline mode drains only at Drain()/Finish(): the ring must hold the
  // whole run, so size it generously and assert nothing shed.
  options.collector.ring_capacity = 1 << 17;
  TelemetryPipeline pipeline{options};
  pipeline.BindCurrentThread();

  sim::Simulator simulator;
  {
    obs::ObsSession::Options obs_options;
    obs_options.trace = false;
    obs_options.extra_sink = TelemetryPipeline::CurrentThreadSink();
    obs::ObsSession observability{simulator, obs_options};
    app::Session session{simulator, app::SessionConfig{}};
    session.Run(2s);
  }
  pipeline.UnbindCurrentThread();
  pipeline.Finish();

  EXPECT_EQ(pipeline.collector().TotalRingStats().shed(), 0u);
  EXPECT_GT(pipeline.rollup().events_folded(), 100u);
  EXPECT_GT(pipeline.rollup().series_count(), 3u);
  EXPECT_EQ(pipeline.collector().stats().events, pipeline.rollup().events_folded());

  // The columnar stream round-trips to exactly the ingested events.
  std::istringstream in{columnar.str()};
  ColumnarReader reader{in};
  std::uint64_t count = 0;
  reader.ForEach([&](const TraceEvent&) { ++count; });
  EXPECT_EQ(count, pipeline.collector().stats().events);
}

TEST(TelemetryPipeline, SweepWorkersGetOneShardEach) {
  TelemetryPipeline::Options options;
  options.background = true;
  options.collector.ring_capacity = 1 << 12;
  TelemetryPipeline pipeline{options};

  sim::ParallelRunner runner{2};
  runner.set_worker_hooks(pipeline.MakeWorkerHooks());
  runner.ForEach(4, [&](std::size_t i) {
    sim::Simulator simulator;
    obs::ObsSession::Options obs_options;
    obs_options.trace = false;
    obs_options.extra_sink = TelemetryPipeline::CurrentThreadSink();
    obs::ObsSession observability{simulator, obs_options};
    app::SessionConfig config;
    config.seed = sim::DeriveSeed(1, i);
    app::Session session{simulator, config};
    session.Run(1s);
  });
  pipeline.Finish();

  EXPECT_LE(pipeline.collector().shard_count(), 2u);
  EXPECT_GE(pipeline.collector().shard_count(), 1u);
  EXPECT_GT(pipeline.rollup().events_folded(), 100u);
}

// Population aggregation across sweep runs must not depend on job count:
// rollup folds are commutative, so 1-job and 2-job sweeps produce the
// same CSV.
TEST(TelemetryPipeline, RollupAggregatesAreJobCountInvariant) {
  const auto run_sweep = [](unsigned jobs) {
    TelemetryPipeline::Options options;
    options.background = false;  // drain once at Finish: deterministic
    // Rings sized to hold every run a worker executes (Drain() is not
    // safe from worker threads; only Finish() empties the rings here).
    options.collector.ring_capacity = 1 << 16;
    TelemetryPipeline pipeline{options};
    sim::ParallelRunner runner{jobs};
    runner.set_worker_hooks(pipeline.MakeWorkerHooks());
    runner.ForEach(3, [&](std::size_t i) {
      sim::Simulator simulator;
      obs::ObsSession::Options obs_options;
      obs_options.trace = false;
      obs_options.extra_sink = TelemetryPipeline::CurrentThreadSink();
      obs::ObsSession observability{simulator, obs_options};
      app::SessionConfig config;
      config.seed = sim::DeriveSeed(9, i);
      app::Session session{simulator, config};
      session.Run(1s);
    });
    pipeline.Finish();
    EXPECT_EQ(pipeline.collector().TotalRingStats().shed(), 0u);
    std::ostringstream os;
    pipeline.rollup().WriteCsv(os);
    return os.str();
  };
  EXPECT_EQ(run_sweep(1), run_sweep(2));
}

}  // namespace
}  // namespace athena::obs::pipeline
