#include <chrono>
#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "app/pacer.hpp"
#include "app/session.hpp"
#include "cc/gcc.hpp"
#include "core/analyzer.hpp"
#include "core/correlator.hpp"
#include "fault/fault.hpp"
#include "mitigation/app_aware_policy.hpp"
#include "mitigation/phy_informed.hpp"
#include "mitigation/traffic_predictor.hpp"
#include "net/capacity_trace.hpp"
#include "ran/grant_policy.hpp"
#include "rtp/twcc.hpp"
#include "sim/check.hpp"
#include "sim/simulator.hpp"

namespace athena::mitigation {
namespace {

using namespace std::chrono_literals;
using sim::kEpoch;

// ---------- AppAwareGrantPolicy (unit) ----------

TEST(AppAwarePolicyTest, GrantsAtAnnouncedUnitTimes) {
  const auto cell = ran::RanConfig::PaperCell();
  AppAwareGrantPolicy policy{cell};
  policy.Announce(StreamAnnouncement{
      .stream_id = 1,
      .next_unit_at = kEpoch + 4ms,
      .unit_interval = 35'714us,
      .unit_bytes = 4000,
  });
  // Slot at 2.5 ms: unit not generated yet → baseline proactive.
  EXPECT_EQ(policy.OnUplinkSlot({kEpoch + 2500us, 100'000}).grant,
            ran::GrantType::kProactive);
  // Slot at 5 ms: the 4 ms unit cannot make it (processing delay 0.5 ms →
  // cutoff 4.5 ms ≥ 4 ms, so actually it can). Grant sized ≥ unit bytes.
  const auto d = policy.OnUplinkSlot({kEpoch + 5000us, 100'000});
  EXPECT_EQ(d.grant, ran::GrantType::kRequested);
  EXPECT_GE(d.tbs_bytes, 4000u);
  EXPECT_EQ(policy.predicted_grants(), 1u);
}

TEST(AppAwarePolicyTest, PeriodicUnitsGetPeriodicGrants) {
  const auto cell = ran::RanConfig::PaperCell();
  AppAwareGrantPolicy policy{cell};
  policy.Announce(StreamAnnouncement{
      .stream_id = 1,
      .next_unit_at = kEpoch + 1ms,
      .unit_interval = 20ms,
      .unit_bytes = 1000,
  });
  int predicted = 0;
  for (int slot = 1; slot <= 40; ++slot) {  // 100 ms of slots
    const auto d = policy.OnUplinkSlot(
        {kEpoch + sim::Duration{slot * 2500}, 100'000});
    if (d.grant == ran::GrantType::kRequested && d.tbs_bytes >= 1000) ++predicted;
  }
  EXPECT_EQ(predicted, 5);  // one per 20 ms unit in 100 ms
}

TEST(AppAwarePolicyTest, StaleAnnouncementExpires) {
  const auto cell = ran::RanConfig::PaperCell();
  AppAwareGrantPolicy policy{cell, AppAwareGrantPolicy::Config{
                                       .size_margin = 1.25,
                                       .announcement_ttl = 100ms,
                                   }};
  policy.Announce(StreamAnnouncement{
      .stream_id = 1,
      .next_unit_at = kEpoch + 1ms,
      .unit_interval = 20ms,
      .unit_bytes = 1000,
  });
  // Far beyond the TTL, prediction stops (falls back to proactive).
  const auto d = policy.OnUplinkSlot({kEpoch + 10s, 100'000});
  EXPECT_EQ(d.grant, ran::GrantType::kProactive);
}

TEST(AppAwarePolicyTest, CapacityClipsPredictedGrant) {
  const auto cell = ran::RanConfig::PaperCell();
  AppAwareGrantPolicy policy{cell};
  policy.Announce(StreamAnnouncement{
      .stream_id = 1,
      .next_unit_at = kEpoch + 1ms,
      .unit_interval = 20ms,
      .unit_bytes = 50'000,
  });
  const auto d = policy.OnUplinkSlot({kEpoch + 2500us, 3000});
  EXPECT_LE(d.tbs_bytes, 3000u);
}

// ---------- TrafficPredictorPolicy (unit) ----------

TEST(TrafficPredictorTest, LearnsPeriodFromBursts) {
  const auto cell = ran::RanConfig::PaperCell();
  TrafficPredictorPolicy policy{cell};
  // Simulate 20 bursts of ~4 kB every 40 ms (16 slots), each burst filling
  // two consecutive slots.
  for (int burst = 0; burst < 20; ++burst) {
    for (int slot = 0; slot < 16; ++slot) {
      const auto t = kEpoch + sim::Duration{(burst * 16 + slot) * 2500};
      const std::uint32_t used = slot < 2 ? 2000 : 0;
      policy.OnTbFilled(t, {2500, ran::GrantType::kProactive}, used);
    }
  }
  const auto period = policy.learned_period();
  ASSERT_TRUE(period.has_value());
  EXPECT_NEAR(sim::ToMs(*period), 40.0, 2.6);
  EXPECT_NEAR(policy.learned_burst_bytes(), 4000.0, 500.0);
}

TEST(TrafficPredictorTest, NoPredictionWithoutHistory) {
  TrafficPredictorPolicy policy{ran::RanConfig::PaperCell()};
  EXPECT_FALSE(policy.learned_period().has_value());
  const auto d = policy.OnUplinkSlot({kEpoch + 2500us, 100'000});
  EXPECT_EQ(d.grant, ran::GrantType::kProactive);  // pure fallback
}

TEST(TrafficPredictorTest, PredictsAfterLearning) {
  const auto cell = ran::RanConfig::PaperCell();
  TrafficPredictorPolicy policy{cell};
  for (int burst = 0; burst < 20; ++burst) {
    for (int slot = 0; slot < 16; ++slot) {
      const auto t = kEpoch + sim::Duration{(burst * 16 + slot) * 2500};
      policy.OnTbFilled(t, {2500, ran::GrantType::kProactive}, slot < 2 ? 2000 : 0);
    }
  }
  // After the training window, slots near the predicted burst time get a
  // right-sized grant.
  int predicted = 0;
  for (int slot = 320; slot < 352; ++slot) {
    const auto d = policy.OnUplinkSlot({kEpoch + sim::Duration{slot * 2500}, 100'000});
    if (d.grant == ran::GrantType::kRequested && d.tbs_bytes >= 3000) ++predicted;
  }
  EXPECT_GE(predicted, 1);
  EXPECT_GT(policy.predicted_grants(), 0u);
}

// ---------- OnlineRanDelayEstimator (unit) ----------

ran::TbRecord Tb(ran::TbId id, sim::TimePoint slot, std::uint32_t used, bool crc_ok = true,
                 std::uint8_t round = 0, ran::TbId chain = 0) {
  return ran::TbRecord{.tb_id = id,
                       .chain_id = chain ? chain : id,
                       .slot_time = slot,
                       .grant = ran::GrantType::kProactive,
                       .tbs_bytes = 2500,
                       .used_bytes = used,
                       .harq_round = round,
                       .crc_ok = crc_ok};
}

TEST(OnlineEstimatorTest, ResolvesSimpleDelivery) {
  OnlineRanDelayEstimator est;
  est.OnPacketSent(1, 1000, kEpoch + 1ms);
  est.OnTbRecord(Tb(1, kEpoch + 2500us, 1000));
  EXPECT_EQ(est.resolved_packets(), 1u);
  // The first resolved packet defines the running minimum → extra = 0.
  const auto extra = est.ExtraDelay(1);
  ASSERT_TRUE(extra.has_value());
  EXPECT_EQ(*extra, 0us);
}

TEST(OnlineEstimatorTest, RtxShowsAsExtraDelay) {
  OnlineRanDelayEstimator est;
  // Packet A: clean, 1.5 ms to slot. Packet B: retransmitted once.
  est.OnPacketSent(1, 1000, kEpoch + 1ms);
  est.OnTbRecord(Tb(1, kEpoch + 2500us, 1000));
  est.OnPacketSent(2, 1000, kEpoch + 11ms);
  est.OnTbRecord(Tb(2, kEpoch + 12'500us, 1000, /*crc_ok=*/false));
  est.OnTbRecord(Tb(3, kEpoch + 22'500us, 1000, true, /*round=*/1, /*chain=*/2));
  const auto extra = est.ExtraDelay(2);
  ASSERT_TRUE(extra.has_value());
  EXPECT_EQ(*extra, 10ms);
}

TEST(OnlineEstimatorTest, SegmentedPacketResolvesAtLastByte) {
  OnlineRanDelayEstimator est;
  est.OnPacketSent(1, 3000, kEpoch + 1ms);
  est.OnTbRecord(Tb(1, kEpoch + 2500us, 2500));
  EXPECT_EQ(est.resolved_packets(), 0u);  // 500 bytes still queued
  est.OnTbRecord(Tb(2, kEpoch + 5000us, 500));
  EXPECT_EQ(est.resolved_packets(), 1u);
}

TEST(OnlineEstimatorTest, UnknownSeqHasNoDelay) {
  OnlineRanDelayEstimator est;
  EXPECT_FALSE(est.ExtraDelay(7).has_value());
}

// ---------- §5.2 end-to-end: app-aware grants cut frame delay ----------

class MitigationEndToEndTest : public ::testing::Test {
 protected:
  /// Runs a session and returns the median video frame-level delay (ms).
  struct Result {
    double median_frame_delay_ms = 0.0;
    double p95_frame_delay_ms = 0.0;
    std::uint64_t overuse_events = 0;
  };

  Result Run(app::SessionConfig config, sim::Duration span = 20s) {
    sim::Simulator sim;
    app::Session session{sim, std::move(config)};

    // The application announces its media pattern to the RAN if the
    // session uses the app-aware policy (§5.2: RTP-extension metadata).
    if (announce_) {
      announcer_ = std::make_unique<sim::PeriodicTimer>(sim, 100ms, [&] {
        auto* policy = dynamic_cast<AppAwareGrantPolicy*>(&session.ran_uplink()->policy());
        ASSERT_NE(policy, nullptr);
        auto& enc = session.sender().video_encoder();
        const double fps = media::NominalFps(enc.mode());
        policy->Announce(StreamAnnouncement{
            .stream_id = 1,
            .next_unit_at = sim.Now(),  // frames are already flowing
            .unit_interval = enc.frame_interval(),
            .unit_bytes = static_cast<std::uint32_t>(enc.target_bitrate() / fps / 8.0) +
                          3 * net::kRtpHeaderOverheadBytes,
        });
        policy->Announce(StreamAnnouncement{
            .stream_id = 2,
            .next_unit_at = sim.Now(),
            .unit_interval = 20ms,
            .unit_bytes = 160 + net::kRtpHeaderOverheadBytes,
        });
      });
      announcer_->Start(sim::Duration{0});
    }

    session.Run(span);
    announcer_.reset();

    const auto dataset = core::Correlator::Correlate(session.BuildCorrelatorInput());
    const auto delays = core::Analyzer::FrameDelayCdf(dataset);
    Result r;
    r.median_frame_delay_ms = delays.Median();
    r.p95_frame_delay_ms = delays.P(95);
    return r;
  }

  bool announce_ = false;
  std::unique_ptr<sim::PeriodicTimer> announcer_;
};

TEST_F(MitigationEndToEndTest, AppAwareGrantsCutFrameDelay) {
  app::SessionConfig baseline;
  baseline.seed = 3;
  const auto base = Run(baseline);

  app::SessionConfig aware = baseline;
  aware.grant_policy = [](const ran::RanConfig& cell) {
    return std::make_unique<AppAwareGrantPolicy>(cell);
  };
  announce_ = true;
  const auto mitigated = Run(aware);

  // §5.2: "Either approach has the potential to cut the delay inflation
  // experienced by frames in half."
  EXPECT_LT(mitigated.median_frame_delay_ms, 0.7 * base.median_frame_delay_ms)
      << "baseline " << base.median_frame_delay_ms << " ms vs mitigated "
      << mitigated.median_frame_delay_ms << " ms";
}

TEST_F(MitigationEndToEndTest, TrafficPredictorAlsoHelps) {
  app::SessionConfig baseline;
  baseline.seed = 4;
  const auto base = Run(baseline, 30s);

  app::SessionConfig predictor = baseline;
  predictor.grant_policy = [](const ran::RanConfig& cell) {
    return std::make_unique<TrafficPredictorPolicy>(cell);
  };
  const auto mitigated = Run(predictor, 30s);

  EXPECT_LT(mitigated.median_frame_delay_ms, base.median_frame_delay_ms);
}

// ---------- §5.3 end-to-end: PHY-informed GCC removes phantom overuse ----

TEST(PhyInformedEndToEndTest, MasksPhantomOveruseOnIdleCell) {
  auto run = [](bool phy_informed) {
    sim::Simulator sim;
    app::SessionConfig config;
    config.seed = 11;
    config.channel = ran::ChannelModel::FadingRadio();

    mitigation::PhyInformedController* phy_ctrl = nullptr;
    cc::GoogCc* plain = nullptr;
    if (phy_informed) {
      config.controller_factory = [&phy_ctrl]() {
        auto c = std::make_unique<PhyInformedController>();
        phy_ctrl = c.get();
        return c;
      };
    }
    app::Session session{sim, config};
    if (phy_informed) {
      session.ran_uplink()->set_telemetry_listener(
          [phy_ctrl](const ran::TbRecord& tb) { phy_ctrl->OnTbRecord(tb); });
    } else {
      plain = &dynamic_cast<app::GccController&>(session.sender().controller()).gcc();
    }
    session.Run(30s);
    return phy_informed ? phy_ctrl->gcc().overuse_events() : plain->overuse_events();
  };

  const auto baseline_overuse = run(false);
  const auto masked_overuse = run(true);
  // The idle 5G uplink makes plain GCC see phantom overuse (Fig. 10); the
  // §5.3 mask removes most of it.
  EXPECT_GT(baseline_overuse, 0u);
  EXPECT_LT(masked_overuse, baseline_overuse);
}

TEST(PhyInformedTest, MaskedReportsCounted) {
  sim::Simulator sim;
  app::SessionConfig config;
  PhyInformedController* ctrl = nullptr;
  config.controller_factory = [&ctrl]() {
    auto c = std::make_unique<PhyInformedController>();
    ctrl = c.get();
    return c;
  };
  app::Session session{sim, config};
  session.ran_uplink()->set_telemetry_listener(
      [&](const ran::TbRecord& tb) { ctrl->OnTbRecord(tb); });
  session.Run(5s);
  EXPECT_GT(ctrl->masked_reports(), 100u);
  EXPECT_GT(ctrl->estimator().resolved_packets(), 100u);
}

// ---------- input validation: hostile config / sample rejection ----------

TEST(MitigationValidationDeathTest, PredictorRejectsNaNSizeMargin) {
  sim::ScopedCheckThrow guard;
  TrafficPredictorPolicy::Config config;
  config.size_margin = std::nan("");
  EXPECT_THROW((TrafficPredictorPolicy{ran::RanConfig::PaperCell(), config}),
               sim::CheckViolation);
}

TEST(MitigationValidationDeathTest, PredictorRejectsShrinkingMarginAndZeroHistory) {
  sim::ScopedCheckThrow guard;
  {
    TrafficPredictorPolicy::Config config;
    config.size_margin = 0.5;  // would systematically under-grant
    EXPECT_THROW((TrafficPredictorPolicy{ran::RanConfig::PaperCell(), config}),
                 sim::CheckViolation);
  }
  {
    TrafficPredictorPolicy::Config config;
    config.history = 0;
    EXPECT_THROW((TrafficPredictorPolicy{ran::RanConfig::PaperCell(), config}),
                 sim::CheckViolation);
  }
  {
    TrafficPredictorPolicy::Config config;
    config.min_period = sim::Duration{0};
    EXPECT_THROW((TrafficPredictorPolicy{ran::RanConfig::PaperCell(), config}),
                 sim::CheckViolation);
  }
}

TEST(MitigationValidationDeathTest, CapacityTraceRejectsNegativeAndNaNSamples) {
  sim::ScopedCheckThrow guard;
  net::CapacityTrace trace{1e6};
  EXPECT_THROW(trace.Append(kEpoch + 1ms, -5.0), sim::CheckViolation);
  EXPECT_THROW(trace.Append(kEpoch + 1ms, std::nan("")), sim::CheckViolation);
  EXPECT_THROW(trace.Append(kEpoch + 1ms, std::numeric_limits<double>::infinity()),
               sim::CheckViolation);
  trace.Append(kEpoch + 1ms, 2e6);  // a sane sample still lands
  EXPECT_DOUBLE_EQ(trace.At(kEpoch + 2ms), 2e6);
}

TEST(MitigationValidationDeathTest, MaskGainRejectsNaNAndClamps) {
  PhyInformedController controller;
  {
    sim::ScopedCheckThrow guard;
    EXPECT_THROW(controller.set_mask_gain(std::nan("")), sim::CheckViolation);
  }
  controller.set_mask_gain(7.0);
  EXPECT_DOUBLE_EQ(controller.mask_gain(), 1.0);
  controller.set_mask_gain(-2.0);
  EXPECT_DOUBLE_EQ(controller.mask_gain(), 0.0);
}

TEST(MitigationValidationDeathTest, GccRejectsInvertedLossThresholds) {
  sim::ScopedCheckThrow guard;
  cc::GoogCc::Config config;
  config.loss_decrease_threshold = 0.01;
  config.loss_increase_threshold = 0.5;  // increase > decrease is nonsense
  EXPECT_THROW((cc::GoogCc{config}), sim::CheckViolation);
  config.loss_decrease_threshold = std::nan("");
  config.loss_increase_threshold = 0.02;
  EXPECT_THROW((cc::GoogCc{config}), sim::CheckViolation);
}

TEST(MitigationValidationDeathTest, PacerRejectsNaNRateFactorAndClamps) {
  sim::Simulator sim;
  app::Pacer pacer{sim, app::Pacer::Config{}};
  {
    sim::ScopedCheckThrow guard;
    EXPECT_THROW(pacer.set_rate_factor(std::nan("")), sim::CheckViolation);
    EXPECT_THROW(pacer.set_rate_factor(0.0), sim::CheckViolation);
  }
  pacer.set_rate_factor(100.0);
  EXPECT_DOUBLE_EQ(pacer.rate_factor(), 8.0);
}

TEST(MitigationValidationDeathTest, TunableGrantPolicyRejectsBadScaleAndNullBaseline) {
  const auto cell = ran::RanConfig::PaperCell();
  ran::TunableGrantPolicy policy{std::make_unique<ran::BsrGrantPolicy>(cell),
                                 std::make_unique<TrafficPredictorPolicy>(cell)};
  {
    sim::ScopedCheckThrow guard;
    EXPECT_THROW(policy.set_proactive_scale(std::nan("")), sim::CheckViolation);
    EXPECT_THROW(policy.set_proactive_scale(-1.0), sim::CheckViolation);
    EXPECT_THROW((ran::TunableGrantPolicy{nullptr, nullptr}), sim::CheckViolation);
  }
  EXPECT_DOUBLE_EQ(policy.set_proactive_scale(100.0), 4.0);  // clamped
}

// ---------- fault-injected telemetry through the mitigation policies ----------

std::vector<ran::TbRecord> SyntheticBurstyStream(std::size_t slots) {
  // ~4 kB burst every 16 slots (40 ms), the same shape the predictor
  // unit tests learn from.
  std::vector<ran::TbRecord> records;
  records.reserve(slots);
  for (std::size_t i = 0; i < slots; ++i) {
    records.push_back(Tb(static_cast<ran::TbId>(i + 1),
                         kEpoch + sim::Duration{static_cast<std::int64_t>(i) * 2500},
                         (i % 16) < 2 ? 2000u : 0u));
  }
  return records;
}

fault::FaultPlan TelemetryFaultPlan(double drop, double corrupt, bool clock_step) {
  fault::FaultPlan plan;
  auto& spec = plan.For(fault::Stream::kTelemetry);
  spec.drop = drop;
  spec.corrupt = corrupt;
  if (clock_step) {
    spec.clock_step = -20ms;
    spec.clock_step_at = kEpoch + 1s;
  }
  return plan;
}

TEST(MitigationFaultStreamTest, PredictorStaysBoundedUnderFaultedTelemetry) {
  const auto cell = ran::RanConfig::PaperCell();
  const TrafficPredictorPolicy::Config config;
  int variant = 0;
  for (const auto& plan : {TelemetryFaultPlan(0.4, 0.0, false),
                           TelemetryFaultPlan(0.0, 0.3, false),
                           TelemetryFaultPlan(0.0, 0.0, true),
                           TelemetryFaultPlan(0.3, 0.2, true)}) {
    auto records = SyntheticBurstyStream(1600);  // 4 s of slots
    fault::FaultInjector injector{plan, /*seed=*/77 + static_cast<std::uint64_t>(variant)};
    injector.Apply(fault::Stream::kTelemetry, records);
    ASSERT_GT(injector.stats().total_faults(), 0u);

    TrafficPredictorPolicy policy{cell, config};
    for (const auto& tb : records) {
      policy.OnTbFilled(tb.slot_time, {tb.tbs_bytes, tb.grant}, tb.used_bytes);
    }
    // Bounded outputs, whatever the injector did: any learned period is
    // inside the configured band, and grants never exceed the slot's
    // available bytes.
    if (const auto period = policy.learned_period()) {
      EXPECT_GE(*period, config.min_period) << "variant " << variant;
      EXPECT_LE(*period, config.max_period) << "variant " << variant;
    }
    for (int slot = 1600; slot < 1664; ++slot) {
      const auto d = policy.OnUplinkSlot(
          {kEpoch + sim::Duration{slot * 2500}, /*available=*/3000});
      EXPECT_LE(d.tbs_bytes, 3000u) << "variant " << variant;
    }
    ++variant;
  }
}

TEST(MitigationFaultStreamTest, EstimatorExtraDelayStaysBoundedUnderCorruption) {
  OnlineRanDelayEstimator est;
  fault::FaultPlan plan = TelemetryFaultPlan(0.2, 0.4, true);
  auto records = SyntheticBurstyStream(1600);
  fault::FaultInjector injector{plan, /*seed=*/31};
  injector.Apply(fault::Stream::kTelemetry, records);

  // Register a packet per burst, then feed the impaired telemetry.
  for (std::uint16_t seq = 0; seq < 100; ++seq) {
    est.OnPacketSent(seq, 2000, kEpoch + sim::Duration{seq * 40'000});
  }
  for (const auto& tb : records) est.OnTbRecord(tb);

  for (std::uint16_t seq = 0; seq < 100; ++seq) {
    const auto extra = est.ExtraDelay(seq);
    if (!extra.has_value()) continue;
    EXPECT_GE(extra->count(), 0) << "seq " << seq;
    EXPECT_LE(*extra, 10s) << "seq " << seq;
  }
}

TEST(MitigationFaultStreamTest, PhyInformedTargetStaysInAimdBandUnderFaults) {
  cc::GoogCc::Config gcc_config;
  PhyInformedController controller{gcc_config};
  controller.set_mask_gain(1.0);

  fault::FaultPlan plan = TelemetryFaultPlan(0.3, 0.3, true);
  auto records = SyntheticBurstyStream(2400);  // 6 s of slots
  fault::FaultInjector injector{plan, /*seed=*/13};
  injector.Apply(fault::Stream::kTelemetry, records);

  // Interleave impaired telemetry with synthetic send + feedback batches.
  std::size_t next_tb = 0;
  std::uint16_t seq = 0;
  for (int batch = 0; batch < 120; ++batch) {
    const auto now = kEpoch + sim::Duration{(batch + 1) * 50'000};
    while (next_tb < records.size() && records[next_tb].slot_time <= now) {
      controller.OnTbRecord(records[next_tb++]);
    }
    std::vector<rtp::PacketReport> reports;
    for (int k = 0; k < 5; ++k) {
      net::Packet p;
      p.kind = net::PacketKind::kRtpVideo;
      p.size_bytes = 1200;
      p.rtp = net::RtpMeta{.seq = seq, .transport_seq = seq};
      const auto sent = now - 40ms + sim::Duration{k * 5000};
      controller.OnPacketSent(p, sent);
      reports.push_back(rtp::PacketReport{.transport_seq = seq,
                                          .send_ts = sent,
                                          .recv_ts = sent + 12ms,
                                          .size_bytes = 1200});
      ++seq;
    }
    const double target = controller.OnFeedback(reports, now);
    EXPECT_TRUE(std::isfinite(target)) << "batch " << batch;
    EXPECT_GE(target, gcc_config.aimd.min_bps) << "batch " << batch;
    EXPECT_LE(target, gcc_config.aimd.max_bps) << "batch " << batch;
  }
  EXPECT_EQ(controller.target_bps(), controller.gcc().target_bps());
}

}  // namespace
}  // namespace athena::mitigation
