#include <chrono>

#include <gtest/gtest.h>

#include "app/session.hpp"
#include "core/analyzer.hpp"
#include "core/correlator.hpp"
#include "mitigation/app_aware_policy.hpp"
#include "mitigation/phy_informed.hpp"
#include "mitigation/traffic_predictor.hpp"
#include "sim/simulator.hpp"

namespace athena::mitigation {
namespace {

using namespace std::chrono_literals;
using sim::kEpoch;

// ---------- AppAwareGrantPolicy (unit) ----------

TEST(AppAwarePolicyTest, GrantsAtAnnouncedUnitTimes) {
  const auto cell = ran::RanConfig::PaperCell();
  AppAwareGrantPolicy policy{cell};
  policy.Announce(StreamAnnouncement{
      .stream_id = 1,
      .next_unit_at = kEpoch + 4ms,
      .unit_interval = 35'714us,
      .unit_bytes = 4000,
  });
  // Slot at 2.5 ms: unit not generated yet → baseline proactive.
  EXPECT_EQ(policy.OnUplinkSlot({kEpoch + 2500us, 100'000}).grant,
            ran::GrantType::kProactive);
  // Slot at 5 ms: the 4 ms unit cannot make it (processing delay 0.5 ms →
  // cutoff 4.5 ms ≥ 4 ms, so actually it can). Grant sized ≥ unit bytes.
  const auto d = policy.OnUplinkSlot({kEpoch + 5000us, 100'000});
  EXPECT_EQ(d.grant, ran::GrantType::kRequested);
  EXPECT_GE(d.tbs_bytes, 4000u);
  EXPECT_EQ(policy.predicted_grants(), 1u);
}

TEST(AppAwarePolicyTest, PeriodicUnitsGetPeriodicGrants) {
  const auto cell = ran::RanConfig::PaperCell();
  AppAwareGrantPolicy policy{cell};
  policy.Announce(StreamAnnouncement{
      .stream_id = 1,
      .next_unit_at = kEpoch + 1ms,
      .unit_interval = 20ms,
      .unit_bytes = 1000,
  });
  int predicted = 0;
  for (int slot = 1; slot <= 40; ++slot) {  // 100 ms of slots
    const auto d = policy.OnUplinkSlot(
        {kEpoch + sim::Duration{slot * 2500}, 100'000});
    if (d.grant == ran::GrantType::kRequested && d.tbs_bytes >= 1000) ++predicted;
  }
  EXPECT_EQ(predicted, 5);  // one per 20 ms unit in 100 ms
}

TEST(AppAwarePolicyTest, StaleAnnouncementExpires) {
  const auto cell = ran::RanConfig::PaperCell();
  AppAwareGrantPolicy policy{cell, AppAwareGrantPolicy::Config{
                                       .size_margin = 1.25,
                                       .announcement_ttl = 100ms,
                                   }};
  policy.Announce(StreamAnnouncement{
      .stream_id = 1,
      .next_unit_at = kEpoch + 1ms,
      .unit_interval = 20ms,
      .unit_bytes = 1000,
  });
  // Far beyond the TTL, prediction stops (falls back to proactive).
  const auto d = policy.OnUplinkSlot({kEpoch + 10s, 100'000});
  EXPECT_EQ(d.grant, ran::GrantType::kProactive);
}

TEST(AppAwarePolicyTest, CapacityClipsPredictedGrant) {
  const auto cell = ran::RanConfig::PaperCell();
  AppAwareGrantPolicy policy{cell};
  policy.Announce(StreamAnnouncement{
      .stream_id = 1,
      .next_unit_at = kEpoch + 1ms,
      .unit_interval = 20ms,
      .unit_bytes = 50'000,
  });
  const auto d = policy.OnUplinkSlot({kEpoch + 2500us, 3000});
  EXPECT_LE(d.tbs_bytes, 3000u);
}

// ---------- TrafficPredictorPolicy (unit) ----------

TEST(TrafficPredictorTest, LearnsPeriodFromBursts) {
  const auto cell = ran::RanConfig::PaperCell();
  TrafficPredictorPolicy policy{cell};
  // Simulate 20 bursts of ~4 kB every 40 ms (16 slots), each burst filling
  // two consecutive slots.
  for (int burst = 0; burst < 20; ++burst) {
    for (int slot = 0; slot < 16; ++slot) {
      const auto t = kEpoch + sim::Duration{(burst * 16 + slot) * 2500};
      const std::uint32_t used = slot < 2 ? 2000 : 0;
      policy.OnTbFilled(t, {2500, ran::GrantType::kProactive}, used);
    }
  }
  const auto period = policy.learned_period();
  ASSERT_TRUE(period.has_value());
  EXPECT_NEAR(sim::ToMs(*period), 40.0, 2.6);
  EXPECT_NEAR(policy.learned_burst_bytes(), 4000.0, 500.0);
}

TEST(TrafficPredictorTest, NoPredictionWithoutHistory) {
  TrafficPredictorPolicy policy{ran::RanConfig::PaperCell()};
  EXPECT_FALSE(policy.learned_period().has_value());
  const auto d = policy.OnUplinkSlot({kEpoch + 2500us, 100'000});
  EXPECT_EQ(d.grant, ran::GrantType::kProactive);  // pure fallback
}

TEST(TrafficPredictorTest, PredictsAfterLearning) {
  const auto cell = ran::RanConfig::PaperCell();
  TrafficPredictorPolicy policy{cell};
  for (int burst = 0; burst < 20; ++burst) {
    for (int slot = 0; slot < 16; ++slot) {
      const auto t = kEpoch + sim::Duration{(burst * 16 + slot) * 2500};
      policy.OnTbFilled(t, {2500, ran::GrantType::kProactive}, slot < 2 ? 2000 : 0);
    }
  }
  // After the training window, slots near the predicted burst time get a
  // right-sized grant.
  int predicted = 0;
  for (int slot = 320; slot < 352; ++slot) {
    const auto d = policy.OnUplinkSlot({kEpoch + sim::Duration{slot * 2500}, 100'000});
    if (d.grant == ran::GrantType::kRequested && d.tbs_bytes >= 3000) ++predicted;
  }
  EXPECT_GE(predicted, 1);
  EXPECT_GT(policy.predicted_grants(), 0u);
}

// ---------- OnlineRanDelayEstimator (unit) ----------

ran::TbRecord Tb(ran::TbId id, sim::TimePoint slot, std::uint32_t used, bool crc_ok = true,
                 std::uint8_t round = 0, ran::TbId chain = 0) {
  return ran::TbRecord{.tb_id = id,
                       .chain_id = chain ? chain : id,
                       .slot_time = slot,
                       .grant = ran::GrantType::kProactive,
                       .tbs_bytes = 2500,
                       .used_bytes = used,
                       .harq_round = round,
                       .crc_ok = crc_ok};
}

TEST(OnlineEstimatorTest, ResolvesSimpleDelivery) {
  OnlineRanDelayEstimator est;
  est.OnPacketSent(1, 1000, kEpoch + 1ms);
  est.OnTbRecord(Tb(1, kEpoch + 2500us, 1000));
  EXPECT_EQ(est.resolved_packets(), 1u);
  // The first resolved packet defines the running minimum → extra = 0.
  const auto extra = est.ExtraDelay(1);
  ASSERT_TRUE(extra.has_value());
  EXPECT_EQ(*extra, 0us);
}

TEST(OnlineEstimatorTest, RtxShowsAsExtraDelay) {
  OnlineRanDelayEstimator est;
  // Packet A: clean, 1.5 ms to slot. Packet B: retransmitted once.
  est.OnPacketSent(1, 1000, kEpoch + 1ms);
  est.OnTbRecord(Tb(1, kEpoch + 2500us, 1000));
  est.OnPacketSent(2, 1000, kEpoch + 11ms);
  est.OnTbRecord(Tb(2, kEpoch + 12'500us, 1000, /*crc_ok=*/false));
  est.OnTbRecord(Tb(3, kEpoch + 22'500us, 1000, true, /*round=*/1, /*chain=*/2));
  const auto extra = est.ExtraDelay(2);
  ASSERT_TRUE(extra.has_value());
  EXPECT_EQ(*extra, 10ms);
}

TEST(OnlineEstimatorTest, SegmentedPacketResolvesAtLastByte) {
  OnlineRanDelayEstimator est;
  est.OnPacketSent(1, 3000, kEpoch + 1ms);
  est.OnTbRecord(Tb(1, kEpoch + 2500us, 2500));
  EXPECT_EQ(est.resolved_packets(), 0u);  // 500 bytes still queued
  est.OnTbRecord(Tb(2, kEpoch + 5000us, 500));
  EXPECT_EQ(est.resolved_packets(), 1u);
}

TEST(OnlineEstimatorTest, UnknownSeqHasNoDelay) {
  OnlineRanDelayEstimator est;
  EXPECT_FALSE(est.ExtraDelay(7).has_value());
}

// ---------- §5.2 end-to-end: app-aware grants cut frame delay ----------

class MitigationEndToEndTest : public ::testing::Test {
 protected:
  /// Runs a session and returns the median video frame-level delay (ms).
  struct Result {
    double median_frame_delay_ms = 0.0;
    double p95_frame_delay_ms = 0.0;
    std::uint64_t overuse_events = 0;
  };

  Result Run(app::SessionConfig config, sim::Duration span = 20s) {
    sim::Simulator sim;
    app::Session session{sim, std::move(config)};

    // The application announces its media pattern to the RAN if the
    // session uses the app-aware policy (§5.2: RTP-extension metadata).
    if (announce_) {
      announcer_ = std::make_unique<sim::PeriodicTimer>(sim, 100ms, [&] {
        auto* policy = dynamic_cast<AppAwareGrantPolicy*>(&session.ran_uplink()->policy());
        ASSERT_NE(policy, nullptr);
        auto& enc = session.sender().video_encoder();
        const double fps = media::NominalFps(enc.mode());
        policy->Announce(StreamAnnouncement{
            .stream_id = 1,
            .next_unit_at = sim.Now(),  // frames are already flowing
            .unit_interval = enc.frame_interval(),
            .unit_bytes = static_cast<std::uint32_t>(enc.target_bitrate() / fps / 8.0) +
                          3 * net::kRtpHeaderOverheadBytes,
        });
        policy->Announce(StreamAnnouncement{
            .stream_id = 2,
            .next_unit_at = sim.Now(),
            .unit_interval = 20ms,
            .unit_bytes = 160 + net::kRtpHeaderOverheadBytes,
        });
      });
      announcer_->Start(sim::Duration{0});
    }

    session.Run(span);
    announcer_.reset();

    const auto dataset = core::Correlator::Correlate(session.BuildCorrelatorInput());
    const auto delays = core::Analyzer::FrameDelayCdf(dataset);
    Result r;
    r.median_frame_delay_ms = delays.Median();
    r.p95_frame_delay_ms = delays.P(95);
    return r;
  }

  bool announce_ = false;
  std::unique_ptr<sim::PeriodicTimer> announcer_;
};

TEST_F(MitigationEndToEndTest, AppAwareGrantsCutFrameDelay) {
  app::SessionConfig baseline;
  baseline.seed = 3;
  const auto base = Run(baseline);

  app::SessionConfig aware = baseline;
  aware.grant_policy = [](const ran::RanConfig& cell) {
    return std::make_unique<AppAwareGrantPolicy>(cell);
  };
  announce_ = true;
  const auto mitigated = Run(aware);

  // §5.2: "Either approach has the potential to cut the delay inflation
  // experienced by frames in half."
  EXPECT_LT(mitigated.median_frame_delay_ms, 0.7 * base.median_frame_delay_ms)
      << "baseline " << base.median_frame_delay_ms << " ms vs mitigated "
      << mitigated.median_frame_delay_ms << " ms";
}

TEST_F(MitigationEndToEndTest, TrafficPredictorAlsoHelps) {
  app::SessionConfig baseline;
  baseline.seed = 4;
  const auto base = Run(baseline, 30s);

  app::SessionConfig predictor = baseline;
  predictor.grant_policy = [](const ran::RanConfig& cell) {
    return std::make_unique<TrafficPredictorPolicy>(cell);
  };
  const auto mitigated = Run(predictor, 30s);

  EXPECT_LT(mitigated.median_frame_delay_ms, base.median_frame_delay_ms);
}

// ---------- §5.3 end-to-end: PHY-informed GCC removes phantom overuse ----

TEST(PhyInformedEndToEndTest, MasksPhantomOveruseOnIdleCell) {
  auto run = [](bool phy_informed) {
    sim::Simulator sim;
    app::SessionConfig config;
    config.seed = 11;
    config.channel = ran::ChannelModel::FadingRadio();

    mitigation::PhyInformedController* phy_ctrl = nullptr;
    cc::GoogCc* plain = nullptr;
    if (phy_informed) {
      config.controller_factory = [&phy_ctrl]() {
        auto c = std::make_unique<PhyInformedController>();
        phy_ctrl = c.get();
        return c;
      };
    }
    app::Session session{sim, config};
    if (phy_informed) {
      session.ran_uplink()->set_telemetry_listener(
          [phy_ctrl](const ran::TbRecord& tb) { phy_ctrl->OnTbRecord(tb); });
    } else {
      plain = &dynamic_cast<app::GccController&>(session.sender().controller()).gcc();
    }
    session.Run(30s);
    return phy_informed ? phy_ctrl->gcc().overuse_events() : plain->overuse_events();
  };

  const auto baseline_overuse = run(false);
  const auto masked_overuse = run(true);
  // The idle 5G uplink makes plain GCC see phantom overuse (Fig. 10); the
  // §5.3 mask removes most of it.
  EXPECT_GT(baseline_overuse, 0u);
  EXPECT_LT(masked_overuse, baseline_overuse);
}

TEST(PhyInformedTest, MaskedReportsCounted) {
  sim::Simulator sim;
  app::SessionConfig config;
  PhyInformedController* ctrl = nullptr;
  config.controller_factory = [&ctrl]() {
    auto c = std::make_unique<PhyInformedController>();
    ctrl = c.get();
    return c;
  };
  app::Session session{sim, config};
  session.ran_uplink()->set_telemetry_listener(
      [&](const ran::TbRecord& tb) { ctrl->OnTbRecord(tb); });
  session.Run(5s);
  EXPECT_GT(ctrl->masked_reports(), 100u);
  EXPECT_GT(ctrl->estimator().resolved_packets(), 100u);
}

}  // namespace
}  // namespace athena::mitigation
