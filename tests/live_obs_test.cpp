// Ground-truth tests for the live diagnosis engine (obs/live/): each
// detector gets a scripted scenario that must fire it (with the right
// layer attribution) and a contrasting quiet scenario that must not,
// plus end-to-end sessions, event-log semantics, the Prometheus
// exposition edge cases, and the health report.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "app/session.hpp"
#include "obs/live/anomaly.hpp"
#include "obs/live/detectors.hpp"
#include "obs/live/exposition.hpp"
#include "obs/live/health.hpp"
#include "obs/live/live.hpp"
#include "obs/obs.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace athena;
using namespace athena::obs::live;
using namespace std::chrono_literals;

sim::TimePoint At(double ms) { return sim::TimePoint{sim::FromMs(ms)}; }

/// A bank that records every emitted anomaly for inspection.
struct CapturingBank {
  explicit CapturingBank(DetectorConfig config = {}) : bank(config) {
    bank.set_on_anomaly([this](const AnomalyEvent& e) { events.push_back(e); });
  }
  DetectorBank bank;
  std::vector<AnomalyEvent> events;
};

// ---------------------------------------------------------------------------
// SlotQuantizationDetector
// ---------------------------------------------------------------------------

TEST(LiveDetectors, SlotQuantizationFiresOnGridAlignedArrivals) {
  CapturingBank cap;
  // Successive deliveries spaced by exact multiples of the 2.5 ms UL slot
  // period: every inter-arrival phase lands in one bin.
  sim::TimePoint t = At(10.0);
  for (int i = 0; i < 80; ++i) {
    t += sim::FromMs(2.5 * (1 + i % 3));
    cap.bank.OnDelivery({static_cast<std::uint64_t>(i), t - sim::FromMs(4.0), t, 1200});
  }
  EXPECT_GE(cap.bank.anomaly_count(AnomalyKind::kDelaySpreadQuantization), 1u);
  ASSERT_FALSE(cap.events.empty());
  const AnomalyEvent& e = cap.events.front();
  EXPECT_EQ(e.kind, AnomalyKind::kDelaySpreadQuantization);
  EXPECT_EQ(e.layer, obs::Layer::kRan);
  EXPECT_STREQ(e.detector, "slot_quantization");
  EXPECT_GE(e.confidence, 0.5);
  EXPECT_LT(e.window_begin, e.window_end);
}

TEST(LiveDetectors, SlotQuantizationQuietOnSpreadArrivals) {
  CapturingBank cap;
  // Phases cycle uniformly through every bin (250 µs steps over a
  // 2500 µs period): a wire-like smooth arrival process.
  sim::TimePoint t = At(10.0);
  for (int i = 0; i < 200; ++i) {
    t += sim::Duration{5000 + (i * 250) % 2500};
    cap.bank.OnDelivery({static_cast<std::uint64_t>(i), t - sim::FromMs(4.0), t, 1200});
  }
  EXPECT_EQ(cap.bank.anomaly_count(AnomalyKind::kDelaySpreadQuantization), 0u);
}

// ---------------------------------------------------------------------------
// HarqRtxDetector
// ---------------------------------------------------------------------------

TEST(LiveDetectors, HarqRtxFiresWhenChainsExplainDelaySteps) {
  CapturingBank cap;
  // Baseline: 20 deliveries at a steady 5 ms OWD establish the floor.
  sim::TimePoint t = At(0.0);
  std::uint64_t id = 0;
  for (int i = 0; i < 20; ++i) {
    t += sim::FromMs(20.0);
    cap.bank.OnDelivery({id++, t - sim::FromMs(5.0), t, 1200});
  }
  // Forced HARQ: six late packets, each ~10 ms over the floor, each
  // preceded by a retransmitted chain completing just before delivery.
  for (int i = 0; i < 6; ++i) {
    t += sim::FromMs(30.0);
    cap.bank.OnHarqChain({t - sim::FromMs(11.0), t - sim::FromMs(1.0), 1, false});
    cap.bank.OnDelivery({id++, t - sim::FromMs(15.0), t, 1200});
  }
  EXPECT_GE(cap.bank.anomaly_count(AnomalyKind::kHarqRtxInflation), 1u);
  ASSERT_FALSE(cap.events.empty());
  EXPECT_EQ(cap.events.front().layer, obs::Layer::kRan);
  EXPECT_STREQ(cap.events.front().detector, "harq_rtx");
}

TEST(LiveDetectors, HarqRtxQuietWhenNoChainExplainsTheSteps) {
  CapturingBank cap;
  sim::TimePoint t = At(0.0);
  std::uint64_t id = 0;
  for (int i = 0; i < 20; ++i) {
    t += sim::FromMs(20.0);
    cap.bank.OnDelivery({id++, t - sim::FromMs(5.0), t, 1200});
  }
  // The same late packets, but no HARQ chain in sight: suspect, never
  // attributed, so the detector must stay silent.
  for (int i = 0; i < 10; ++i) {
    t += sim::FromMs(30.0);
    cap.bank.OnDelivery({id++, t - sim::FromMs(15.0), t, 1200});
  }
  EXPECT_EQ(cap.bank.anomaly_count(AnomalyKind::kHarqRtxInflation), 0u);
  // ...but the attribution tally still shows the unexplained suspects.
  const auto& detectors = cap.bank.detectors();
  for (const auto& d : detectors) {
    if (std::string{d->name()} == "harq_rtx") {
      EXPECT_GE(d->attribution().suspect, 10u);
      EXPECT_EQ(d->attribution().attributed, 0u);
    }
  }
}

// ---------------------------------------------------------------------------
// BsrGrantWaitDetector
// ---------------------------------------------------------------------------

TEST(LiveDetectors, BsrGrantWaitFiresOnSlowFirstService) {
  CapturingBank cap;
  // Ten backlog episodes, each served ~10 ms (one BSR scheduling delay)
  // after the buffer left zero.
  double base = 0.0;
  for (int i = 0; i < 10; ++i) {
    cap.bank.OnBacklog({At(base), 8000.0});
    cap.bank.OnTb({At(base + 10.0), 2500, 1500, 0, true, true});
    cap.bank.OnBacklog({At(base + 11.0), 0.0});
    base += 50.0;
  }
  EXPECT_GE(cap.bank.anomaly_count(AnomalyKind::kBsrGrantWait), 1u);
  ASSERT_FALSE(cap.events.empty());
  EXPECT_EQ(cap.events.front().kind, AnomalyKind::kBsrGrantWait);
  EXPECT_EQ(cap.events.front().layer, obs::Layer::kRan);
}

TEST(LiveDetectors, BsrGrantWaitQuietWhenProactiveGrantsServeNextSlot) {
  CapturingBank cap;
  // The mitigation scenario: every burst served one slot (2.5 ms) later.
  double base = 0.0;
  for (int i = 0; i < 20; ++i) {
    cap.bank.OnBacklog({At(base), 8000.0});
    cap.bank.OnTb({At(base + 2.5), 2500, 1500, 0, true, false});
    cap.bank.OnBacklog({At(base + 3.0), 0.0});
    base += 50.0;
  }
  EXPECT_EQ(cap.bank.anomaly_count(AnomalyKind::kBsrGrantWait), 0u);
}

// ---------------------------------------------------------------------------
// OverGrantingDetector
// ---------------------------------------------------------------------------

TEST(LiveDetectors, OverGrantingFiresOnWastedRequestedGrants) {
  CapturingBank cap;
  // An over-granted UE: 2500-byte requested grants carrying 100 bytes.
  sim::TimePoint t = At(0.0);
  for (int i = 0; i < 40; ++i) {
    t += sim::FromMs(2.5);
    cap.bank.OnTb({t, 2500, 100, 0, true, true});
  }
  EXPECT_GE(cap.bank.anomaly_count(AnomalyKind::kOverGranting), 1u);
  ASSERT_FALSE(cap.events.empty());
  EXPECT_EQ(cap.events.front().kind, AnomalyKind::kOverGranting);
  EXPECT_EQ(cap.events.front().layer, obs::Layer::kRan);
  EXPECT_GT(cap.events.front().confidence, 0.5);  // ≈ 96% waste
}

TEST(LiveDetectors, OverGrantingIgnoresProactiveGrants) {
  CapturingBank cap;
  // A quiet cell: the scheduler's always-on proactive grants go out
  // mostly empty *by design* — that must not read as over-granting.
  sim::TimePoint t = At(0.0);
  for (int i = 0; i < 400; ++i) {
    t += sim::FromMs(2.5);
    cap.bank.OnTb({t, 2500, 0, 0, true, false});
  }
  EXPECT_EQ(cap.bank.anomaly_count(AnomalyKind::kOverGranting), 0u);
}

TEST(LiveDetectors, OverGrantingQuietWhenGrantsAreUsed) {
  CapturingBank cap;
  sim::TimePoint t = At(0.0);
  for (int i = 0; i < 100; ++i) {
    t += sim::FromMs(2.5);
    cap.bank.OnTb({t, 2500, 2400, 0, true, true});
  }
  EXPECT_EQ(cap.bank.anomaly_count(AnomalyKind::kOverGranting), 0u);
}

// ---------------------------------------------------------------------------
// QueueBuildupDetector
// ---------------------------------------------------------------------------

TEST(LiveDetectors, QueueBuildupFiresWhenBacklogNeverDrains) {
  CapturingBank cap;
  // Injected cross traffic: the RLC buffer floats above 20 kB for the
  // whole window — a standing queue.
  sim::TimePoint t = At(0.0);
  for (int i = 0; i < 80; ++i) {
    t += sim::FromMs(2.5);
    cap.bank.OnBacklog({t, 20000.0 + 1000.0 * (i % 7)});
  }
  EXPECT_GE(cap.bank.anomaly_count(AnomalyKind::kQueueBuildup), 1u);
  ASSERT_FALSE(cap.events.empty());
  EXPECT_EQ(cap.events.front().kind, AnomalyKind::kQueueBuildup);
  EXPECT_EQ(cap.events.front().layer, obs::Layer::kRan);
}

TEST(LiveDetectors, QueueBuildupQuietWhenBufferTouchesZero) {
  CapturingBank cap;
  // Bursty but draining: deep bursts that empty out — BSR territory,
  // not capacity contention.
  sim::TimePoint t = At(0.0);
  for (int i = 0; i < 200; ++i) {
    t += sim::FromMs(2.5);
    cap.bank.OnBacklog({t, (i % 10 == 0) ? 0.0 : 40000.0});
  }
  EXPECT_EQ(cap.bank.anomaly_count(AnomalyKind::kQueueBuildup), 0u);
}

TEST(LiveDetectors, CooldownBoundsAnomalyRate) {
  DetectorConfig config;
  config.cooldown = sim::Duration{10s};
  CapturingBank cap{config};
  // A persistent standing queue for a long stretch: without the
  // cooldown this would emit every 8 samples.
  sim::TimePoint t = At(0.0);
  for (int i = 0; i < 2000; ++i) {
    t += sim::FromMs(2.5);  // 5 s total — inside one cooldown window
    cap.bank.OnBacklog({t, 30000.0});
  }
  EXPECT_EQ(cap.bank.anomaly_count(AnomalyKind::kQueueBuildup), 1u);
}

// ---------------------------------------------------------------------------
// LiveEngine trace decoding
// ---------------------------------------------------------------------------

TEST(LiveEngine, DecodesTraceStreamIntoObservationsAndRollups) {
  LiveEngine engine;
  obs::ScopedTraceSink scope{&engine};

  obs::TraceAsyncSpan(obs::Layer::kRan, "ran.transit", 1, At(1.0), At(6.0),
                      {{"bytes", 1200.0}});
  obs::TraceAsyncSpan(obs::Layer::kRan, "ran.transit", 2, At(2.0), At(8.0),
                      {{"bytes", 300.0}});
  obs::TraceAsyncSpan(obs::Layer::kMedia, "frame.jb", 7, At(3.0), At(9.0),
                      {{"late", 1.0}});
  obs::TraceAsyncSpan(obs::Layer::kMedia, "frame.jb", 8, At(4.0), At(10.0),
                      {{"late", 0.0}});
  obs::TraceAsyncSpan(obs::Layer::kCore, "pkt.uplink", 1, At(1.0), At(6.0),
                      {{"cause", 3.0}});
  obs::TraceInstant(obs::Layer::kNet, "link.drop", At(5.0));
  obs::TraceInstant(obs::Layer::kCc, "cc.overuse", At(5.5), {{"trend_ms", 2.0}});
  obs::TraceCounter(obs::Layer::kRan, "ran.rlc_bytes", At(6.0), 1234.0);

  EXPECT_EQ(engine.deliveries(), 2u);
  EXPECT_EQ(engine.frames_rendered(), 2u);
  EXPECT_EQ(engine.frames_late(), 1u);
  EXPECT_EQ(engine.link_drops(), 1u);
  EXPECT_EQ(engine.overuse_events(), 1u);
  EXPECT_EQ(engine.core_cause_counts()[3], 1u);
}

TEST(LiveEngine, AnomaliesLandInTheEventLog) {
  LiveEngine::Options options;
  options.log_capacity = 8;
  LiveEngine engine{options};
  // Drive the over-granting scenario through the decoder.
  obs::ScopedTraceSink scope{&engine};
  for (int i = 0; i < 40; ++i) {
    obs::TraceInstant(obs::Layer::kRan, "tb.tx", At(2.5 * i),
                      {{"tbs", 2500.0},
                       {"used", 100.0},
                       {"round", 0.0},
                       {"crc_ok", 1.0},
                       {"grant", 1.0}});
  }
  EXPECT_GE(engine.bank().anomaly_count(AnomalyKind::kOverGranting), 1u);
  EXPECT_GE(engine.log().size(), 1u);
  const auto records = engine.log().Ordered();
  ASSERT_FALSE(records.empty());
  EXPECT_EQ(records.front()->kind, EventLog::Record::Kind::kAnomaly);
  EXPECT_EQ(records.front()->anomaly.kind, AnomalyKind::kOverGranting);
}

// ---------------------------------------------------------------------------
// EventLog
// ---------------------------------------------------------------------------

AnomalyEvent MakeAnomaly(double at_ms, double confidence) {
  AnomalyEvent e;
  e.kind = AnomalyKind::kQueueBuildup;
  e.layer = obs::Layer::kRan;
  e.window_begin = At(at_ms - 1.0);
  e.window_end = At(at_ms);
  e.confidence = confidence;
  e.detector = "test";
  e.message = "synthetic";
  e.AddEvidence("k", 1.0);
  return e;
}

TEST(EventLog, RingOverwritesOldestAndCountsDrops) {
  EventLog log{4};
  for (int i = 0; i < 10; ++i) {
    log.PushAnomaly(MakeAnomaly(static_cast<double>(i), 0.5));
  }
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.capacity(), 4u);
  EXPECT_EQ(log.total_pushed(), 10u);
  EXPECT_EQ(log.dropped_count(), 6u);
  const auto records = log.Ordered();
  ASSERT_EQ(records.size(), 4u);
  // Oldest-first ordering of the surviving tail (6, 7, 8, 9).
  EXPECT_EQ(records.front()->t, At(6.0));
  EXPECT_EQ(records.back()->t, At(9.0));
}

TEST(EventLog, JsonlSinkStreamsEveryPushEvenWhenRingDrops) {
  EventLog log{2};
  std::ostringstream sink;
  log.set_jsonl_sink(&sink);
  for (int i = 0; i < 5; ++i) {
    log.PushAnomaly(MakeAnomaly(static_cast<double>(i), 0.25));
  }
  log.PushSpan(obs::Layer::kSim, "sim.run", At(10.0), 10.0);
  log.PushMetric("queue_depth", At(11.0), 42.0);

  std::istringstream lines{sink.str()};
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    ++count;
    EXPECT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
  EXPECT_EQ(count, 7);  // all pushes, not just the 2 the ring kept
  EXPECT_NE(sink.str().find("\"type\":\"anomaly\""), std::string::npos);
  EXPECT_NE(sink.str().find("\"type\":\"span\""), std::string::npos);
  EXPECT_NE(sink.str().find("\"type\":\"metric\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Prometheus exposition
// ---------------------------------------------------------------------------

TEST(Exposition, SanitizesMetricNames) {
  EXPECT_EQ(SanitizeMetricName("cc.target-bps"), "cc_target_bps");
  EXPECT_EQ(SanitizeMetricName("ran.tb_tx"), "ran_tb_tx");
  EXPECT_EQ(SanitizeMetricName("5g.delay"), "_5g_delay");
  EXPECT_EQ(SanitizeMetricName(""), "_");
  EXPECT_EQ(SanitizeMetricName("a:b"), "a:b");  // colons are legal
}

TEST(Exposition, EmptyRegistryStillProducesValidOutput) {
  obs::MetricsRegistry registry;
  std::ostringstream os;
  WritePrometheus(os, registry);
  const std::string out = os.str();
  EXPECT_FALSE(out.empty());
  // Comment-only output: every line starts with '#'.
  std::istringstream lines{out};
  std::string line;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '#');
  }
}

TEST(Exposition, RendersCountersGaugesAndNonFiniteValues) {
  obs::MetricsRegistry registry;
  registry.Counter("ran.tb-tx") = 17;
  registry.Gauge("cc.target.bps") = 5e5;
  registry.Gauge("weird.inf") = std::numeric_limits<double>::infinity();
  registry.Gauge("weird.neg_inf") = -std::numeric_limits<double>::infinity();
  registry.Gauge("weird.nan") = std::nan("");

  std::ostringstream os;
  WritePrometheus(os, registry);
  const std::string out = os.str();
  EXPECT_NE(out.find("athena_ran_tb_tx 17\n"), std::string::npos);
  EXPECT_NE(out.find("# TYPE athena_ran_tb_tx counter"), std::string::npos);
  EXPECT_NE(out.find("athena_cc_target_bps 500000\n"), std::string::npos);
  EXPECT_NE(out.find("athena_weird_inf +Inf\n"), std::string::npos);
  EXPECT_NE(out.find("athena_weird_neg_inf -Inf\n"), std::string::npos);
  EXPECT_NE(out.find("athena_weird_nan NaN\n"), std::string::npos);
  // No unsanitized names escape.
  EXPECT_EQ(out.find("ran.tb-tx"), std::string::npos);
}

TEST(Exposition, HistogramBucketsAreCumulativeAndEndAtInf) {
  obs::MetricsRegistry registry;
  auto& h = registry.Histogram("owd.ms", 0.0, 10.0, 2);
  h.Add(1.0);    // bin [0,5)
  h.Add(6.0);    // bin [5,10)
  h.Add(100.0);  // overflow
  h.Add(-3.0);   // underflow → folded into the first bucket

  std::ostringstream os;
  WritePrometheus(os, registry);
  const std::string out = os.str();
  EXPECT_NE(out.find("# TYPE athena_owd_ms histogram"), std::string::npos);
  EXPECT_NE(out.find("athena_owd_ms_bucket{le=\"5\"} 2\n"), std::string::npos);
  EXPECT_NE(out.find("athena_owd_ms_bucket{le=\"10\"} 3\n"), std::string::npos);
  EXPECT_NE(out.find("athena_owd_ms_bucket{le=\"+Inf\"} 4\n"), std::string::npos);
  EXPECT_NE(out.find("athena_owd_ms_count 4\n"), std::string::npos);
  EXPECT_NE(out.find("athena_owd_ms_sum 104\n"), std::string::npos);
}

TEST(Exposition, RunningStatsBecomeSummaries) {
  obs::MetricsRegistry registry;
  auto& s = registry.Stats("jitter.ms");
  s.Add(1.0);
  s.Add(3.0);

  std::ostringstream os;
  WritePrometheus(os, registry);
  const std::string out = os.str();
  EXPECT_NE(out.find("# TYPE athena_jitter_ms summary"), std::string::npos);
  EXPECT_NE(out.find("athena_jitter_ms_count 2\n"), std::string::npos);
  EXPECT_NE(out.find("athena_jitter_ms_sum 4\n"), std::string::npos);
  EXPECT_NE(out.find("athena_jitter_ms_mean 2\n"), std::string::npos);
  EXPECT_NE(out.find("athena_jitter_ms_min 1\n"), std::string::npos);
  EXPECT_NE(out.find("athena_jitter_ms_max 3\n"), std::string::npos);
}

TEST(Exposition, IncludesLiveDetectorState) {
  obs::MetricsRegistry registry;
  LiveEngine engine;
  std::ostringstream os;
  WritePrometheus(os, registry, &engine);
  const std::string out = os.str();
  // One series per anomaly kind, plus engine gauges — present even at zero.
  EXPECT_NE(out.find("athena_anomalies_total{kind=\"delay_spread_quantization\","
                     "layer=\"ran\"} 0"),
            std::string::npos);
  EXPECT_NE(out.find("athena_anomalies_total{kind=\"harq_rtx_inflation\","
                     "layer=\"ran\"} 0"),
            std::string::npos);
  EXPECT_NE(out.find("athena_detector_confidence{detector=\"slot_quantization\"}"),
            std::string::npos);
  EXPECT_NE(out.find("athena_event_log_records 0"), std::string::npos);
}

// ---------------------------------------------------------------------------
// HealthReport
// ---------------------------------------------------------------------------

TEST(HealthReport, RanksCausesAndRendersAttribution) {
  LiveEngine engine;
  // Over-granting scenario via the bank (stronger than queue buildup's
  // single anomaly thanks to a shorter eval stride + cooldown reset).
  sim::TimePoint t = At(0.0);
  for (int i = 0; i < 700; ++i) {
    t += sim::FromMs(2.5);
    engine.bank().OnTb({t, 2500, 100, 0, true, true});
  }
  const HealthReport report = HealthReport::Build(engine);
  EXPECT_FALSE(report.healthy());
  ASSERT_FALSE(report.causes.empty());
  EXPECT_EQ(report.causes.front().kind, AnomalyKind::kOverGranting);
  EXPECT_GT(report.causes.front().anomalies, 0u);
  EXPECT_FALSE(report.causes.front().summary.empty());

  std::ostringstream os;
  report.Render(os);
  EXPECT_NE(os.str().find("root causes, ranked:"), std::string::npos);
  EXPECT_NE(os.str().find("over-granting"), std::string::npos);
}

TEST(HealthReport, HealthySessionSaysSo) {
  LiveEngine engine;
  const HealthReport report = HealthReport::Build(engine);
  EXPECT_TRUE(report.healthy());
  std::ostringstream os;
  report.Render(os);
  EXPECT_NE(os.str().find("healthy"), std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end sessions
// ---------------------------------------------------------------------------

TEST(LiveEndToEnd, QuietEmulatedChannelRaisesNoAnomalies) {
  sim::Simulator simulator;
  obs::ObsSession::Options options;
  options.trace = false;
  options.live = true;
  obs::ObsSession observability{simulator, options};

  app::SessionConfig config;
  config.access = app::SessionConfig::Access::kEmulated;
  app::Session session{simulator, config};
  session.Run(10s);

  ASSERT_NE(observability.live(), nullptr);
  EXPECT_EQ(observability.live()->bank().anomaly_count(), 0u)
      << "false positive on a wire-like channel";
  EXPECT_GT(observability.live()->frames_rendered(), 0u);
}

TEST(LiveEndToEnd, FiveGSessionFiresSlotQuantization) {
  sim::Simulator simulator;
  obs::ObsSession::Options options;
  options.trace = false;
  options.live = true;
  obs::ObsSession observability{simulator, options};

  app::SessionConfig config;  // default: paper-cell 5G uplink
  app::Session session{simulator, config};
  session.Run(10s);

  ASSERT_NE(observability.live(), nullptr);
  EXPECT_GE(observability.live()->bank().anomaly_count(
                AnomalyKind::kDelaySpreadQuantization),
            1u);
  EXPECT_GT(observability.live()->deliveries(), 0u);
}

TEST(LiveEndToEnd, LossyFadingChannelFiresHarqDetector) {
  sim::Simulator simulator;
  obs::ObsSession::Options options;
  options.trace = false;
  options.live = true;
  obs::ObsSession observability{simulator, options};

  app::SessionConfig config;
  config.channel = ran::ChannelModel::FadingRadio();
  app::Session session{simulator, config};
  session.Run(15s);

  ASSERT_NE(observability.live(), nullptr);
  EXPECT_GE(
      observability.live()->bank().anomaly_count(AnomalyKind::kHarqRtxInflation),
      1u);
  const HealthReport report = HealthReport::Build(*observability.live());
  EXPECT_FALSE(report.healthy());
}

TEST(LiveEndToEnd, RecorderAndLiveEngineShareOneEmitStream) {
  sim::Simulator simulator;
  obs::ObsSession::Options options;
  options.trace = true;  // both sinks via the fanout
  options.live = true;
  obs::ObsSession observability{simulator, options};

  app::SessionConfig config;
  app::Session session{simulator, config};
  session.Run(5s);

  EXPECT_GT(observability.recorder().size(), 0u);
  ASSERT_NE(observability.live(), nullptr);
  EXPECT_GT(observability.live()->deliveries(), 0u);
}

}  // namespace
