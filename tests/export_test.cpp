#include <chrono>
#include <sstream>

#include <gtest/gtest.h>

#include "app/session.hpp"
#include "core/correlator.hpp"
#include "core/export.hpp"

namespace athena::core {
namespace {

using namespace std::chrono_literals;

std::size_t CountLines(const std::string& s) {
  std::size_t lines = 0;
  for (const char c : s) lines += c == '\n' ? 1 : 0;
  return lines;
}

class ExportTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim_ = new sim::Simulator;
    app::SessionConfig config;
    config.seed = 5;
    config.channel.base_bler = 0.1;
    session_ = new app::Session{*sim_, config};
    session_->Run(5s);
    data_ = new CrossLayerDataset{Correlator::Correlate(session_->BuildCorrelatorInput())};
  }

  static void TearDownTestSuite() {
    delete data_;
    delete session_;
    delete sim_;
    data_ = nullptr;
    session_ = nullptr;
    sim_ = nullptr;
  }

  static sim::Simulator* sim_;
  static app::Session* session_;
  static CrossLayerDataset* data_;
};

sim::Simulator* ExportTest::sim_ = nullptr;
app::Session* ExportTest::session_ = nullptr;
CrossLayerDataset* ExportTest::data_ = nullptr;

TEST_F(ExportTest, PacketsCsvHasHeaderPlusRowPerPacket) {
  std::ostringstream os;
  CsvExport::Packets(os, *data_);
  EXPECT_EQ(CountLines(os.str()), data_->packets.size() + 1);
  EXPECT_EQ(os.str().rfind("packet_id,kind,", 0), 0u);  // header first
}

TEST_F(ExportTest, PacketsCsvColumnsAreConsistent) {
  std::ostringstream os;
  CsvExport::Packets(os, *data_);
  std::istringstream in{os.str()};
  std::string line;
  std::getline(in, line);
  const auto commas = std::count(line.begin(), line.end(), ',');
  while (std::getline(in, line)) {
    EXPECT_EQ(std::count(line.begin(), line.end(), ','), commas) << line;
  }
}

TEST_F(ExportTest, FramesCsvMatchesFrameCount) {
  std::ostringstream os;
  CsvExport::Frames(os, *data_);
  EXPECT_EQ(CountLines(os.str()), data_->frames.size() + 1);
}

TEST_F(ExportTest, TelemetryCsvMatchesRecordCount) {
  std::ostringstream os;
  CsvExport::Telemetry(os, session_->ran_uplink()->telemetry());
  EXPECT_EQ(CountLines(os.str()), session_->ran_uplink()->telemetry().size() + 1);
  EXPECT_NE(os.str().find("proactive"), std::string::npos);
}

TEST_F(ExportTest, CaptureCsvMatchesCaptureCount) {
  std::ostringstream os;
  CsvExport::Capture(os, session_->sender_capture().records());
  EXPECT_EQ(CountLines(os.str()), session_->sender_capture().count() + 1);
}

TEST_F(ExportTest, TbChainListUsesSemicolons) {
  // Multi-chain packets must not break the CSV column count.
  std::ostringstream os;
  CsvExport::Packets(os, *data_);
  bool found_multi = false;
  std::istringstream in{os.str()};
  std::string line;
  std::getline(in, line);  // header
  while (std::getline(in, line)) {
    if (line.find(';') != std::string::npos) {
      found_multi = true;
      break;
    }
  }
  EXPECT_TRUE(found_multi) << "expected at least one packet spanning multiple TB chains";
}

TEST(ExportEmptyTest, EmptyDatasetYieldsHeadersOnly) {
  CrossLayerDataset empty;
  std::ostringstream packets;
  CsvExport::Packets(packets, empty);
  EXPECT_EQ(CountLines(packets.str()), 1u);
  std::ostringstream frames;
  CsvExport::Frames(frames, empty);
  EXPECT_EQ(CountLines(frames.str()), 1u);
  std::ostringstream telemetry;
  CsvExport::Telemetry(telemetry, {});
  EXPECT_EQ(CountLines(telemetry.str()), 1u);
}

}  // namespace
}  // namespace athena::core
