// Tests for the extended congestion-controller family: SCReAM-lite, the
// L4S/ECN controller, and the modem-side ECN marking that feeds it.
#include <chrono>

#include <gtest/gtest.h>

#include "app/session.hpp"
#include "cc/l4s.hpp"
#include "cc/scream.hpp"
#include "ran/uplink.hpp"
#include "sim/simulator.hpp"

namespace athena {
namespace {

using namespace std::chrono_literals;
using sim::kEpoch;

std::vector<rtp::PacketReport> Reports(int n, sim::TimePoint start, sim::Duration owd,
                                       std::uint16_t first_seq, double ce_fraction = 0.0) {
  std::vector<rtp::PacketReport> out;
  for (int i = 0; i < n; ++i) {
    const auto send = start + sim::Duration{i * 10'000};
    out.push_back(rtp::PacketReport{
        .transport_seq = static_cast<std::uint16_t>(first_seq + i),
        .send_ts = send,
        .recv_ts = send + owd,
        .size_bytes = 1200,
        .ce = i < static_cast<int>(ce_fraction * n),
    });
  }
  return out;
}

// ---------- ScreamController ----------

TEST(ScreamTest, RampsUpWithHeadroom) {
  cc::ScreamController scream;
  const double initial = scream.target_bps();
  std::uint16_t seq = 0;
  for (int batch = 0; batch < 100; ++batch) {
    const auto t0 = kEpoch + sim::Duration{batch * 100'000};
    scream.OnFeedback(Reports(10, t0, 20ms, seq), t0 + 120ms);
    seq += 10;
  }
  EXPECT_GT(scream.target_bps(), initial);
}

TEST(ScreamTest, BacksOffAboveQdelayTarget) {
  cc::ScreamController scream;
  std::uint16_t seq = 0;
  // Baseline, then a standing queue far above the 60 ms target.
  scream.OnFeedback(Reports(10, kEpoch, 20ms, seq), kEpoch + 120ms);
  seq += 10;
  for (int batch = 1; batch < 20; ++batch) {
    const auto t0 = kEpoch + sim::Duration{batch * 100'000};
    scream.OnFeedback(Reports(10, t0, 150ms, seq), t0 + 200ms);
    seq += 10;
  }
  const double congested = scream.target_bps();
  EXPECT_GT(scream.qdelay_ms(), 60.0);
  // Now drain: delay back to baseline → rate recovers.
  for (int batch = 20; batch < 60; ++batch) {
    const auto t0 = kEpoch + sim::Duration{batch * 100'000};
    scream.OnFeedback(Reports(10, t0, 22ms, seq), t0 + 120ms);
    seq += 10;
  }
  EXPECT_GT(scream.target_bps(), congested);
}

TEST(ScreamTest, RespectsBounds) {
  cc::ScreamController::Config config;
  config.min_bps = 200e3;
  config.max_bps = 900e3;
  config.initial_bps = 500e3;
  cc::ScreamController scream{config};
  std::uint16_t seq = 0;
  for (int batch = 0; batch < 300; ++batch) {
    const auto t0 = kEpoch + sim::Duration{batch * 100'000};
    scream.OnFeedback(Reports(10, t0, 10ms, seq), t0 + 50ms);
    seq += 10;
  }
  EXPECT_LE(scream.target_bps(), 900e3 + 1);
  for (int batch = 300; batch < 600; ++batch) {
    const auto t0 = kEpoch + sim::Duration{batch * 100'000};
    scream.OnFeedback(Reports(10, t0, 400ms, seq), t0 + 500ms);
    seq += 10;
  }
  EXPECT_GE(scream.target_bps(), 200e3 - 1);
}

TEST(ScreamTest, EmptyFeedbackHarmless) {
  cc::ScreamController scream;
  const double before = scream.target_bps();
  EXPECT_DOUBLE_EQ(scream.OnFeedback({}, kEpoch), before);
}

// ---------- L4sController ----------

TEST(L4sTest, IncreasesWithoutMarks) {
  cc::L4sController l4s;
  const double initial = l4s.target_bps();
  std::uint16_t seq = 0;
  for (int batch = 0; batch < 50; ++batch) {
    const auto t0 = kEpoch + sim::Duration{batch * 100'000};
    l4s.OnFeedback(Reports(10, t0, 20ms, seq), t0 + 120ms);
    seq += 10;
  }
  EXPECT_GT(l4s.target_bps(), initial);
  EXPECT_EQ(l4s.backoffs(), 0u);
}

TEST(L4sTest, MarksCauseProportionalBackoff) {
  cc::L4sController l4s;
  std::uint16_t seq = 0;
  l4s.OnFeedback(Reports(10, kEpoch, 20ms, seq), kEpoch + 100ms);
  seq += 10;
  const double before = l4s.target_bps();
  for (int batch = 1; batch < 20; ++batch) {
    const auto t0 = kEpoch + sim::Duration{batch * 100'000};
    l4s.OnFeedback(Reports(10, t0, 20ms, seq, /*ce_fraction=*/0.5), t0 + 100ms);
    seq += 10;
  }
  EXPECT_LT(l4s.target_bps(), before);
  EXPECT_GT(l4s.backoffs(), 5u);
  EXPECT_GT(l4s.marking_alpha(), 0.3);
}

TEST(L4sTest, BackoffRateLimited) {
  cc::L4sController::Config config;
  config.backoff_interval = 1s;
  cc::L4sController l4s{config};
  std::uint16_t seq = 0;
  l4s.OnFeedback(Reports(10, kEpoch, 20ms, seq), kEpoch + 50ms);
  seq += 10;
  // Many marked batches within one backoff interval → at most one brake.
  for (int batch = 1; batch < 8; ++batch) {
    const auto t0 = kEpoch + sim::Duration{batch * 50'000};
    l4s.OnFeedback(Reports(10, t0, 20ms, seq, 1.0), t0 + 50ms);
    seq += 10;
  }
  EXPECT_LE(l4s.backoffs(), 1u);
}

TEST(L4sTest, AlphaDecaysWhenMarksStop) {
  cc::L4sController l4s;
  std::uint16_t seq = 0;
  for (int batch = 0; batch < 10; ++batch) {
    const auto t0 = kEpoch + sim::Duration{batch * 100'000};
    l4s.OnFeedback(Reports(10, t0, 20ms, seq, 1.0), t0 + 100ms);
    seq += 10;
  }
  const double alpha_marked = l4s.marking_alpha();
  for (int batch = 10; batch < 30; ++batch) {
    const auto t0 = kEpoch + sim::Duration{batch * 100'000};
    l4s.OnFeedback(Reports(10, t0, 20ms, seq), t0 + 100ms);
    seq += 10;
  }
  EXPECT_LT(l4s.marking_alpha(), alpha_marked / 4.0);
}

// ---------- modem-side ECN marking ----------

TEST(EcnMarkingTest, MarksPacketsThatWaitedLong) {
  sim::Simulator sim;
  ran::RanConfig cell = ran::RanConfig::PaperCellNoProactive();  // force BSR waits
  cell.ecn_marking_threshold = 6ms;
  ran::RanUplink ran{sim, cell, ran::ChannelModel::Perfect(sim::Rng{1}),
                     ran::CrossTraffic::Idle(sim::Rng{2})};
  std::vector<net::Packet> delivered;
  ran.set_core_sink([&](const net::Packet& p) { delivered.push_back(p); });
  ran.Start();
  sim.ScheduleAfter(1ms, [&] {
    net::Packet p;
    p.id = 1;
    p.size_bytes = 1200;
    p.created_at = sim.Now();
    ran.SendFromUe(p);
  });
  sim.RunUntil(kEpoch + 100ms);
  ASSERT_EQ(delivered.size(), 1u);
  // BSR-only path: ~11.5 ms wait > 6 ms threshold → marked.
  EXPECT_TRUE(delivered[0].ecn_ce);
  EXPECT_EQ(ran.counters().ecn_marked, 1u);
}

TEST(EcnMarkingTest, FastPacketsNotMarked) {
  sim::Simulator sim;
  ran::RanConfig cell = ran::RanConfig::PaperCell();  // proactive: ≤2.5 ms wait
  cell.ecn_marking_threshold = 6ms;
  ran::RanUplink ran{sim, cell, ran::ChannelModel::Perfect(sim::Rng{1}),
                     ran::CrossTraffic::Idle(sim::Rng{2})};
  std::vector<net::Packet> delivered;
  ran.set_core_sink([&](const net::Packet& p) { delivered.push_back(p); });
  ran.Start();
  sim.ScheduleAfter(1ms, [&] {
    net::Packet p;
    p.id = 1;
    p.size_bytes = 1200;
    p.created_at = sim.Now();
    ran.SendFromUe(p);
  });
  sim.RunUntil(kEpoch + 100ms);
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_FALSE(delivered[0].ecn_ce);
}

TEST(EcnMarkingTest, DisabledByDefault) {
  EXPECT_EQ(ran::RanConfig::PaperCell().ecn_marking_threshold.count(), 0);
}

// ---------- sessions with the new controllers ----------

TEST(CcFamilySessionTest, ScreamSessionDeliversVideo) {
  sim::Simulator sim;
  app::SessionConfig config;
  config.controller = app::SessionConfig::Controller::kScream;
  app::Session session{sim, config};
  session.Run(10s);
  EXPECT_GT(session.qoe().video_frames_rendered(), 200u);
  const auto& scream =
      dynamic_cast<app::ScreamRateController&>(session.sender().controller()).scream();
  EXPECT_GT(scream.target_bps(), 0.0);
}

TEST(CcFamilySessionTest, L4sSessionMarksAndDelivers) {
  // Marks flag *queueing* (buffer waits beyond the threshold), which takes
  // real contention — HARQ losses alone do not hold bytes in the buffer.
  sim::Simulator sim;
  app::SessionConfig config;
  config.controller = app::SessionConfig::Controller::kL4s;
  config.cell.cell_ul_capacity_bps = 25e6;
  config.cross_traffic = net::CapacityTrace{22e6};
  config.cross_burstiness = 0.5;
  config.cross_modulation_sigma = 0.5;
  app::Session session{sim, config};
  session.Run(20s);
  EXPECT_GT(session.qoe().video_frames_rendered(), 300u);
  EXPECT_GT(session.ran_uplink()->counters().ecn_marked, 0u);
  const auto& l4s =
      dynamic_cast<app::L4sRateController&>(session.sender().controller()).l4s();
  EXPECT_GT(l4s.backoffs(), 0u);  // the brake actually engages under load
}

TEST(CcFamilySessionTest, L4sIgnoresSubThresholdRanArtifacts) {
  // On a clean idle cell the scheduling artifacts (proactive trickle +
  // one BSR cycle ≈ 12.5 ms worst case) stay below the session's default
  // marking threshold (bsr delay + 2 slots = 15 ms), so the L4S
  // controller sees no congestion at all — no phantom reactions by
  // construction. This is the §5.3 accelerate-brake design question: the
  // marker must be calibrated to the RAN's *predictable* delay spreads.
  sim::Simulator sim;
  app::SessionConfig config;
  config.controller = app::SessionConfig::Controller::kL4s;
  config.channel.base_bler = 0.0;
  app::Session session{sim, config};
  session.Run(20s);
  const auto& l4s =
      dynamic_cast<app::L4sRateController&>(session.sender().controller()).l4s();
  EXPECT_EQ(l4s.backoffs(), 0u);
  EXPECT_GT(l4s.target_bps(), 1e6);
}

}  // namespace
}  // namespace athena
