#include <chrono>
#include <vector>

#include <gtest/gtest.h>

#include "cc/aimd.hpp"
#include "cc/gcc.hpp"
#include "cc/inter_arrival.hpp"
#include "cc/nada.hpp"
#include "cc/trendline.hpp"

namespace athena::cc {
namespace {

using namespace std::chrono_literals;
using sim::kEpoch;

// ---------- InterArrival ----------

TEST(InterArrivalTest, FirstPacketsYieldNothing) {
  InterArrival ia;
  EXPECT_FALSE(ia.OnPacket(kEpoch, kEpoch + 50ms).has_value());
}

TEST(InterArrivalTest, DeltasBetweenGroups) {
  InterArrival ia;
  // Group 1 at send 0, group 2 at send 20 ms, group 3 at send 40 ms.
  EXPECT_FALSE(ia.OnPacket(kEpoch, kEpoch + 50ms).has_value());
  EXPECT_FALSE(ia.OnPacket(kEpoch + 20ms, kEpoch + 72ms).has_value());
  const auto deltas = ia.OnPacket(kEpoch + 40ms, kEpoch + 90ms);
  ASSERT_TRUE(deltas.has_value());
  EXPECT_EQ(deltas->send_delta, 20ms);
  EXPECT_EQ(deltas->recv_delta, 22ms);  // 72 − 50
}

TEST(InterArrivalTest, BurstPacketsShareAGroup) {
  InterArrival ia;
  EXPECT_FALSE(ia.OnPacket(kEpoch, kEpoch + 50ms).has_value());
  EXPECT_FALSE(ia.OnPacket(kEpoch + 2ms, kEpoch + 53ms).has_value());  // same burst
  EXPECT_FALSE(ia.OnPacket(kEpoch + 4ms, kEpoch + 55ms).has_value());  // same burst
  EXPECT_FALSE(ia.OnPacket(kEpoch + 20ms, kEpoch + 70ms).has_value());
  const auto deltas = ia.OnPacket(kEpoch + 40ms, kEpoch + 90ms);
  ASSERT_TRUE(deltas.has_value());
  // Previous groups: last send 4 ms / last recv 55 ms vs 20 ms / 70 ms.
  EXPECT_EQ(deltas->send_delta, 16ms);
  EXPECT_EQ(deltas->recv_delta, 15ms);
}

TEST(InterArrivalTest, GroupPacketCountReported) {
  InterArrival ia;
  (void)ia.OnPacket(kEpoch, kEpoch);
  (void)ia.OnPacket(kEpoch + 1ms, kEpoch + 1ms);
  (void)ia.OnPacket(kEpoch + 20ms, kEpoch + 20ms);
  const auto deltas = ia.OnPacket(kEpoch + 40ms, kEpoch + 40ms);
  ASSERT_TRUE(deltas.has_value());
  EXPECT_EQ(deltas->packets, 1);  // the 20 ms group had one packet
}

TEST(InterArrivalTest, ResetForgetsHistory) {
  InterArrival ia;
  (void)ia.OnPacket(kEpoch, kEpoch);
  (void)ia.OnPacket(kEpoch + 20ms, kEpoch + 20ms);
  ia.Reset();
  EXPECT_FALSE(ia.OnPacket(kEpoch + 40ms, kEpoch + 40ms).has_value());
}

// ---------- TrendlineEstimator ----------

/// Feeds `n` groups with constant per-group delay growth of `slope_ms`.
void FeedConstantGradient(TrendlineEstimator& est, int n, double slope_ms,
                          sim::Duration send_spacing = 20ms) {
  sim::TimePoint arrival = kEpoch;
  for (int i = 0; i < n; ++i) {
    arrival += send_spacing + sim::FromMs(slope_ms);
    est.Update(send_spacing + sim::FromMs(slope_ms), send_spacing, arrival);
  }
}

TEST(TrendlineTest, FlatDelayIsNormal) {
  TrendlineEstimator est;
  FeedConstantGradient(est, 100, 0.0);
  EXPECT_EQ(est.State(), BandwidthUsage::kNormal);
  EXPECT_NEAR(est.trend(), 0.0, 1e-6);
}

TEST(TrendlineTest, GrowingDelayTriggersOveruse) {
  TrendlineEstimator est;
  FeedConstantGradient(est, 100, 2.0);  // +2 ms per group: clear overuse
  EXPECT_EQ(est.State(), BandwidthUsage::kOverusing);
  EXPECT_GT(est.trend(), 0.0);
}

TEST(TrendlineTest, ShrinkingDelayTriggersUnderuse) {
  TrendlineEstimator est;
  // Build up a queue first, then drain it fast.
  FeedConstantGradient(est, 40, 1.0);
  FeedConstantGradient(est, 60, -3.0);
  EXPECT_EQ(est.State(), BandwidthUsage::kUnderusing);
}

TEST(TrendlineTest, ThresholdAdaptsUpUnderSustainedNoise) {
  TrendlineEstimator est;
  const double initial = est.threshold_ms();
  // A sustained moderate drift keeps the modified trend slightly above the
  // threshold (not far enough to look like a spike) → the threshold adapts
  // upwards toward it, learning to tolerate the condition.
  sim::TimePoint arrival = kEpoch;
  for (int i = 0; i < 200; ++i) {
    arrival += 20ms + sim::FromMs(1.5);
    est.Update(20ms + sim::FromMs(1.5), 20ms, arrival);
  }
  EXPECT_GT(est.threshold_ms(), initial);
}

TEST(TrendlineTest, ModifiedTrendScalesWithGain) {
  TrendlineEstimator::Config config;
  config.threshold_gain = 4.0;
  TrendlineEstimator est{config};
  FeedConstantGradient(est, 100, 1.0);
  EXPECT_NEAR(est.modified_trend_ms(), est.trend() * 60.0 * 4.0, 1e-6);
}

TEST(TrendlineTest, OveruseRequiresPersistence) {
  // A single spiky group must not trigger overuse (10 ms hysteresis).
  TrendlineEstimator est;
  FeedConstantGradient(est, 30, 0.0);
  est.Update(20ms + 30ms, 20ms, kEpoch + 700ms);  // one 30 ms spike
  EXPECT_NE(est.State(), BandwidthUsage::kOverusing);
}

// ---------- AckedBitrateEstimator ----------

TEST(AckedBitrateTest, NeedsTwoSamples) {
  AckedBitrateEstimator est;
  EXPECT_FALSE(est.BitrateBps(kEpoch).has_value());
  est.OnAckedBytes(1000, kEpoch);
  EXPECT_FALSE(est.BitrateBps(kEpoch).has_value());
}

TEST(AckedBitrateTest, WindowedRate) {
  AckedBitrateEstimator est{500ms};
  // 10 packets × 1250 B over 500 ms = 25 kB / 0.5 s = 400 kbps.
  for (int i = 0; i < 10; ++i) {
    est.OnAckedBytes(1250, kEpoch + sim::Duration{i * 50'000});
  }
  const auto rate = est.BitrateBps(kEpoch + 450ms);
  ASSERT_TRUE(rate.has_value());
  EXPECT_NEAR(*rate, 200e3, 10e3);  // 12.5 kB in window / 0.5 s
}

TEST(AckedBitrateTest, OldSamplesExpire) {
  AckedBitrateEstimator est{500ms};
  est.OnAckedBytes(100'000, kEpoch);
  for (int i = 0; i < 5; ++i) est.OnAckedBytes(1000, kEpoch + 2s + sim::Duration{i * 1000});
  const auto rate = est.BitrateBps(kEpoch + 2s + 5ms);
  ASSERT_TRUE(rate.has_value());
  EXPECT_LT(*rate, 1e6);  // the 100 kB burst no longer counts
}

// ---------- AimdRateControl ----------

TEST(AimdTest, IncreasesWhenNormal) {
  AimdRateControl aimd;
  const double initial = aimd.target_bps();
  for (int i = 0; i < 10; ++i) {
    aimd.Update(BandwidthUsage::kNormal, 2e6, kEpoch + sim::Duration{i * 200'000});
  }
  EXPECT_GT(aimd.target_bps(), initial);
}

TEST(AimdTest, OveruseDecreasesToBetaTimesAcked) {
  AimdRateControl aimd;
  aimd.Update(BandwidthUsage::kNormal, 1e6, kEpoch);
  aimd.Update(BandwidthUsage::kOverusing, 1e6, kEpoch + 200ms);
  EXPECT_NEAR(aimd.target_bps(), 0.85 * 1e6, 1e3);
  EXPECT_EQ(aimd.decreases(), 1u);
}

TEST(AimdTest, UnderuseHolds) {
  AimdRateControl aimd;
  aimd.Update(BandwidthUsage::kNormal, 1e6, kEpoch);
  const double before = aimd.target_bps();
  aimd.Update(BandwidthUsage::kUnderusing, 1e6, kEpoch + 200ms);
  EXPECT_DOUBLE_EQ(aimd.target_bps(), before);
}

TEST(AimdTest, RespectsMinAndMax) {
  AimdRateControl::Config config;
  config.min_bps = 100e3;
  config.max_bps = 900e3;
  config.initial_bps = 500e3;
  AimdRateControl aimd{config};
  for (int i = 0; i < 50; ++i) {
    aimd.Update(BandwidthUsage::kOverusing, 50e3, kEpoch + sim::Duration{i * 100'000});
  }
  EXPECT_DOUBLE_EQ(aimd.target_bps(), 100e3);
  for (int i = 0; i < 500; ++i) {
    aimd.Update(BandwidthUsage::kNormal, 10e6, kEpoch + sim::Duration{(50 + i) * 100'000});
  }
  EXPECT_DOUBLE_EQ(aimd.target_bps(), 900e3);
}

TEST(AimdTest, IncreaseCappedNearAckedRate) {
  AimdRateControl aimd;
  for (int i = 0; i < 100; ++i) {
    aimd.Update(BandwidthUsage::kNormal, 500e3, kEpoch + sim::Duration{i * 200'000});
  }
  EXPECT_LE(aimd.target_bps(), 1.5 * 500e3 + 10e3 + 1);
}

TEST(AimdTest, NearConvergenceSwitchesToAdditive) {
  AimdRateControl aimd;
  // A decrease establishes the link estimate near 1 Mbps.
  aimd.Update(BandwidthUsage::kNormal, 1e6, kEpoch);
  aimd.Update(BandwidthUsage::kOverusing, 1e6, kEpoch + 100ms);
  // Growth from 850 kbps inside the ±3σ band around 1 Mbps is additive:
  // bounded by additive_bps_per_s × dt, far below 8%/s multiplicative.
  const double before = aimd.target_bps();
  aimd.Update(BandwidthUsage::kNormal, 1e6, kEpoch + 300ms);
  aimd.Update(BandwidthUsage::kNormal, 1e6, kEpoch + 500ms);
  const double grown = aimd.target_bps() - before;
  EXPECT_GT(grown, 0.0);
  EXPECT_LE(grown, 2 * 0.2 * 40e3 + 1.0);  // two 0.2 s additive steps
}

TEST(AimdTest, HoldAfterDecreaseUntilNormal) {
  AimdRateControl aimd;
  aimd.Update(BandwidthUsage::kOverusing, 1e6, kEpoch);
  EXPECT_EQ(aimd.state(), AimdRateControl::State::kHold);
  const double held = aimd.target_bps();
  aimd.Update(BandwidthUsage::kUnderusing, 1e6, kEpoch + 100ms);
  EXPECT_DOUBLE_EQ(aimd.target_bps(), held);  // underuse keeps holding
  aimd.Update(BandwidthUsage::kNormal, 1e6, kEpoch + 200ms);
  EXPECT_GT(aimd.target_bps(), held);  // normal resumes increase
}

// ---------- LossEstimator ----------

TEST(LossEstimatorTest, NoLossWhenAllReceived) {
  LossEstimator loss;
  loss.OnBatch(0, 9, 10);
  EXPECT_DOUBLE_EQ(loss.LossFraction(), 0.0);
}

TEST(LossEstimatorTest, HalfLoss) {
  LossEstimator loss;
  loss.OnBatch(0, 9, 5);
  EXPECT_DOUBLE_EQ(loss.LossFraction(), 0.5);
}

TEST(LossEstimatorTest, SeqWrapHandled) {
  LossEstimator loss;
  loss.OnBatch(65'530, 3, 10);  // span of 10 across the wrap
  EXPECT_DOUBLE_EQ(loss.LossFraction(), 0.0);
}

// ---------- GoogCc end-to-end ----------

std::vector<rtp::PacketReport> CleanPathReports(int n, sim::TimePoint start,
                                                sim::Duration owd, std::uint16_t first_seq,
                                                sim::Duration spacing = 10ms) {
  std::vector<rtp::PacketReport> out;
  for (int i = 0; i < n; ++i) {
    const auto send = start + sim::Duration{i * spacing.count()};
    out.push_back(rtp::PacketReport{
        .transport_seq = static_cast<std::uint16_t>(first_seq + i),
        .send_ts = send,
        .recv_ts = send + owd,
        .size_bytes = 1200,
    });
  }
  return out;
}

TEST(GoogCcTest, RampsUpOnCleanPath) {
  GoogCc gcc;
  const double initial = gcc.target_bps();
  std::uint16_t seq = 0;
  for (int batch = 0; batch < 100; ++batch) {
    const auto t0 = kEpoch + sim::Duration{batch * 100'000};
    const auto reports = CleanPathReports(10, t0, 20ms, seq);
    seq += 10;
    gcc.OnFeedback(reports, t0 + 120ms);
  }
  EXPECT_GT(gcc.target_bps(), initial * 1.5);
  EXPECT_EQ(gcc.overuse_events(), 0u);
}

TEST(GoogCcTest, GrowingQueueTriggersOveruseAndBackoff) {
  GoogCc gcc;
  std::uint16_t seq = 0;
  double owd_ms = 20.0;
  bool saw_overuse = false;
  for (int batch = 0; batch < 80; ++batch) {
    const auto t0 = kEpoch + sim::Duration{batch * 100'000};
    std::vector<rtp::PacketReport> reports;
    for (int i = 0; i < 10; ++i) {
      owd_ms += 1.0;  // steadily growing queue
      const auto send = t0 + sim::Duration{i * 10'000};
      reports.push_back(rtp::PacketReport{
          .transport_seq = seq++,
          .send_ts = send,
          .recv_ts = send + sim::FromMs(owd_ms),
          .size_bytes = 1200,
      });
    }
    gcc.OnFeedback(reports, t0 + 120ms);
    saw_overuse |= gcc.usage() == BandwidthUsage::kOverusing;
  }
  EXPECT_TRUE(saw_overuse);
  EXPECT_GT(gcc.overuse_events(), 0u);
}

TEST(GoogCcTest, HistoryRecordsSnapshots) {
  GoogCc gcc;
  const auto reports = CleanPathReports(50, kEpoch, 20ms, 0);
  gcc.OnFeedback(reports, kEpoch + 600ms);
  EXPECT_FALSE(gcc.history().empty());
  for (const auto& s : gcc.history()) {
    EXPECT_GT(s.threshold_ms, 0.0);
  }
}

TEST(GoogCcTest, LossBoundCapsTarget) {
  GoogCc gcc;
  // Batches with 50% loss (span 20, 10 received).
  std::uint16_t base = 0;
  for (int batch = 0; batch < 30; ++batch) {
    std::vector<rtp::PacketReport> reports;
    const auto t0 = kEpoch + sim::Duration{batch * 100'000};
    for (int i = 0; i < 10; ++i) {
      const auto send = t0 + sim::Duration{i * 10'000};
      reports.push_back(rtp::PacketReport{
          .transport_seq = static_cast<std::uint16_t>(base + 2 * i),  // every other lost
          .send_ts = send,
          .recv_ts = send + 20ms,
          .size_bytes = 1200,
      });
    }
    base += 20;
    gcc.OnFeedback(reports, t0 + 120ms);
  }
  EXPECT_GT(gcc.LossFraction(), 0.3);
  EXPECT_LT(gcc.target_bps(), gcc.delay_based_bps() + 1.0);
}

TEST(GoogCcTest, EmptyFeedbackIsHarmless) {
  GoogCc gcc;
  const double before = gcc.target_bps();
  EXPECT_DOUBLE_EQ(gcc.OnFeedback({}, kEpoch), before);
}

TEST(GoogCcTest, HistoryDisabledKeepsNoSnapshots) {
  GoogCc::Config config;
  config.keep_history = false;
  GoogCc gcc{config};
  gcc.OnFeedback(CleanPathReports(50, kEpoch, 20ms, 0), kEpoch + 600ms);
  EXPECT_TRUE(gcc.history().empty());
  EXPECT_GT(gcc.detector_updates(), 0u);
}

TEST(GoogCcTest, LossBoundRelaxesWhenLossClears) {
  GoogCc gcc;
  // Heavy loss clamps the loss-based bound...
  std::uint16_t base = 0;
  for (int batch = 0; batch < 25; ++batch) {
    std::vector<rtp::PacketReport> reports;
    const auto t0 = kEpoch + sim::Duration{batch * 100'000};
    for (int i = 0; i < 5; ++i) {
      reports.push_back(rtp::PacketReport{
          .transport_seq = static_cast<std::uint16_t>(base + 4 * i),  // 75% loss
          .send_ts = t0 + sim::Duration{i * 10'000},
          .recv_ts = t0 + sim::Duration{i * 10'000} + 20ms,
          .size_bytes = 1200,
      });
    }
    base += 20;
    gcc.OnFeedback(reports, t0 + 120ms);
  }
  const double clamped = gcc.target_bps();
  // ...then clean batches age the loss window out and the bound relaxes.
  for (int batch = 0; batch < 60; ++batch) {
    const auto t0 = kEpoch + 3s + sim::Duration{batch * 100'000};
    const auto reports = CleanPathReports(10, t0, 20ms, base);
    base += 10;
    gcc.OnFeedback(reports, t0 + 120ms);
  }
  EXPECT_GT(gcc.target_bps(), clamped);
  EXPECT_LT(gcc.LossFraction(), 0.02);
}

// ---------- NADA ----------

TEST(NadaTest, RampsUpWhenUncongested) {
  NadaController nada;
  const double initial = nada.target_bps();
  std::uint16_t seq = 0;
  for (int batch = 0; batch < 50; ++batch) {
    const auto t0 = kEpoch + sim::Duration{batch * 100'000};
    const auto reports = CleanPathReports(10, t0, 20ms, seq);
    seq += 10;
    nada.OnFeedback(reports, 0.0, t0 + 120ms);
  }
  EXPECT_GT(nada.target_bps(), initial);
}

TEST(NadaTest, BacksOffUnderQueuingDelay) {
  NadaController nada;
  std::uint16_t seq = 0;
  // Establish the baseline delay.
  nada.OnFeedback(CleanPathReports(10, kEpoch, 20ms, seq), 0.0, kEpoch + 120ms);
  seq += 10;
  const double before = nada.target_bps();
  // Now 80 ms of standing queue.
  for (int batch = 1; batch < 40; ++batch) {
    const auto t0 = kEpoch + sim::Duration{batch * 100'000};
    nada.OnFeedback(CleanPathReports(10, t0, 100ms, seq), 0.0, t0 + 120ms);
    seq += 10;
  }
  EXPECT_LT(nada.target_bps(), before);
  EXPECT_GT(nada.queuing_delay_ms(), 10.0);
}

TEST(NadaTest, LossAddsPenalty) {
  NadaController nada;
  nada.OnFeedback(CleanPathReports(10, kEpoch, 20ms, 0), 0.0, kEpoch + 120ms);
  nada.OnFeedback(CleanPathReports(10, kEpoch + 100ms, 20ms, 10), 0.05, kEpoch + 220ms);
  EXPECT_GT(nada.congestion_signal_ms(), nada.queuing_delay_ms());
}

TEST(NadaTest, RespectsBounds) {
  NadaController::Config config;
  config.min_bps = 200e3;
  config.max_bps = 700e3;
  config.initial_bps = 500e3;
  NadaController nada{config};
  std::uint16_t seq = 0;
  for (int batch = 0; batch < 200; ++batch) {
    const auto t0 = kEpoch + sim::Duration{batch * 100'000};
    nada.OnFeedback(CleanPathReports(5, t0, 20ms, seq), 0.0, t0 + 50ms);
    seq += 5;
  }
  EXPECT_LE(nada.target_bps(), 700e3);
  EXPECT_GE(nada.target_bps(), 200e3);
}

}  // namespace
}  // namespace athena::cc
