#include <chrono>

#include <gtest/gtest.h>

#include "net/capacity_trace.hpp"
#include "net/capture.hpp"
#include "net/clock.hpp"
#include "net/icmp.hpp"
#include "net/link.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace athena::net {
namespace {

using namespace std::chrono_literals;
using sim::kEpoch;

Packet MakePacket(PacketId id, std::uint32_t size = 1000,
                  PacketKind kind = PacketKind::kGeneric) {
  Packet p;
  p.id = id;
  p.size_bytes = size;
  p.kind = kind;
  return p;
}

// ---------- Packet ----------

TEST(PacketTest, KindPredicates) {
  EXPECT_TRUE(MakePacket(1, 1, PacketKind::kRtpVideo).is_video());
  EXPECT_TRUE(MakePacket(1, 1, PacketKind::kRtpVideo).is_media());
  EXPECT_TRUE(MakePacket(1, 1, PacketKind::kRtpAudio).is_audio());
  EXPECT_FALSE(MakePacket(1, 1, PacketKind::kIcmpEcho).is_media());
}

TEST(PacketTest, KindAndLayerNames) {
  EXPECT_STREQ(ToString(PacketKind::kRtpVideo), "rtp-video");
  EXPECT_STREQ(ToString(PacketKind::kIcmpReply), "icmp-reply");
  EXPECT_STREQ(ToString(SvcLayer::kBase), "base");
  EXPECT_STREQ(ToString(SvcLayer::kLowFpsEnhancement), "low-fps-enh");
}

TEST(PacketTest, IdGeneratorIsMonotone) {
  PacketIdGenerator gen;
  const auto a = gen.Next();
  const auto b = gen.Next();
  EXPECT_LT(a, b);
  gen.Reset();
  EXPECT_EQ(gen.Next(), a);
}

// ---------- HostClock ----------

TEST(HostClockTest, OffsetShiftsLocalTime) {
  HostClock clock{2ms, 0.0};
  EXPECT_EQ(clock.ToLocal(kEpoch + 10ms), kEpoch + 12ms);
  EXPECT_EQ(clock.ToTrue(kEpoch + 12ms), kEpoch + 10ms);
}

TEST(HostClockTest, DriftGrowsWithTime) {
  HostClock clock{0ms, 100.0};  // 100 ppm
  const auto local = clock.ToLocal(kEpoch + 10s);
  EXPECT_EQ(local - (kEpoch + 10s), 1ms);  // 100 ppm of 10 s = 1 ms
}

TEST(HostClockTest, RoundTripIsStableWithoutDrift) {
  HostClock clock{-3500us, 0.0};
  const auto t = kEpoch + 123456us;
  EXPECT_EQ(clock.ToTrue(clock.ToLocal(t)), t);
}

// ---------- CapturePoint ----------

TEST(CapturePointTest, RecordsAndForwards) {
  sim::Simulator sim;
  CapturePoint cap{sim, "tap"};
  int forwarded = 0;
  cap.set_sink([&](const Packet&) { ++forwarded; });
  sim.ScheduleAfter(5ms, [&] { cap.OnPacket(MakePacket(1)); });
  sim.RunAll();
  EXPECT_EQ(forwarded, 1);
  ASSERT_EQ(cap.count(), 1u);
  EXPECT_EQ(cap.records()[0].packet_id, 1u);
  EXPECT_EQ(cap.records()[0].true_ts, kEpoch + 5ms);
}

TEST(CapturePointTest, LocalTimestampUsesHostClock) {
  sim::Simulator sim;
  CapturePoint cap{sim, "tap", HostClock{1ms, 0.0}};
  sim.ScheduleAfter(5ms, [&] { cap.OnPacket(MakePacket(1)); });
  sim.RunAll();
  EXPECT_EQ(cap.records()[0].local_ts, kEpoch + 6ms);
  EXPECT_EQ(cap.records()[0].true_ts, kEpoch + 5ms);
}

TEST(CapturePointTest, CopiesRtpMetadata) {
  sim::Simulator sim;
  CapturePoint cap{sim, "tap"};
  Packet p = MakePacket(1, 1200, PacketKind::kRtpVideo);
  p.rtp = RtpMeta{.frame_id = 77, .transport_seq = 5};
  cap.OnPacket(p);
  ASSERT_TRUE(cap.records()[0].rtp.has_value());
  EXPECT_EQ(cap.records()[0].rtp->frame_id, 77u);
}

TEST(CapturePointTest, ClearEmptiesLog) {
  sim::Simulator sim;
  CapturePoint cap{sim, "tap"};
  cap.OnPacket(MakePacket(1));
  cap.Clear();
  EXPECT_EQ(cap.count(), 0u);
}

TEST(CapturePointTest, WorksWithoutSink) {
  sim::Simulator sim;
  CapturePoint cap{sim, "tap"};
  EXPECT_NO_THROW(cap.OnPacket(MakePacket(1)));
}

// ---------- CapacityTrace ----------

TEST(CapacityTraceTest, StepFunctionLookup) {
  CapacityTrace t;
  t.Append(kEpoch, 10e6);
  t.Append(kEpoch + 5s, 20e6);
  EXPECT_DOUBLE_EQ(t.At(kEpoch + 1s), 10e6);
  EXPECT_DOUBLE_EQ(t.At(kEpoch + 5s), 20e6);
  EXPECT_DOUBLE_EQ(t.At(kEpoch + 100s), 20e6);
}

TEST(CapacityTraceTest, ZeroBeforeFirstStep) {
  CapacityTrace t;
  t.Append(kEpoch + 1s, 10e6);
  EXPECT_DOUBLE_EQ(t.At(kEpoch), 0.0);
}

TEST(CapacityTraceTest, ConstantConstructor) {
  const CapacityTrace t{5e6};
  EXPECT_DOUBLE_EQ(t.At(kEpoch), 5e6);
  EXPECT_DOUBLE_EQ(t.At(kEpoch + 100s), 5e6);
}

TEST(CapacityTraceTest, MeanOverWeightsByTime) {
  CapacityTrace t;
  t.Append(kEpoch, 10e6);
  t.Append(kEpoch + 1s, 30e6);
  // [0, 2 s): 1 s at 10 Mbps + 1 s at 30 Mbps = 20 Mbps mean.
  EXPECT_NEAR(t.MeanOver(kEpoch, kEpoch + 2s), 20e6, 1.0);
}

TEST(CapacityTraceTest, PaperScheduleHasFourPhases) {
  const auto t = CapacityTrace::PaperCrossTrafficSchedule(5min);
  EXPECT_DOUBLE_EQ(t.At(kEpoch + 1min), 0.0);
  EXPECT_DOUBLE_EQ(t.At(kEpoch + 6min), 14e6);
  EXPECT_DOUBLE_EQ(t.At(kEpoch + 11min), 16e6);
  EXPECT_DOUBLE_EQ(t.At(kEpoch + 16min), 18e6);
}

// ---------- FixedDelayLink ----------

TEST(FixedDelayLinkTest, DeliversAfterDelay) {
  sim::Simulator sim;
  FixedDelayLink link{sim, {.delay = 10ms}};
  sim::TimePoint delivered_at;
  link.set_sink([&](const Packet&) { delivered_at = sim.Now(); });
  link.Send(MakePacket(1));
  sim.RunAll();
  EXPECT_EQ(delivered_at, kEpoch + 10ms);
  EXPECT_EQ(link.delivered(), 1u);
}

TEST(FixedDelayLinkTest, PreservesFifoUnderJitter) {
  sim::Simulator sim;
  FixedDelayLink link{sim, {.delay = 10ms, .jitter_stddev = 5ms}, sim::Rng{3}};
  std::vector<PacketId> order;
  link.set_sink([&](const Packet& p) { order.push_back(p.id); });
  for (PacketId i = 1; i <= 50; ++i) {
    sim.ScheduleAfter(sim::Duration{static_cast<std::int64_t>(i) * 100},
                      [&link, i] { link.Send(MakePacket(i)); });
  }
  sim.RunAll();
  ASSERT_EQ(order.size(), 50u);
  for (std::size_t i = 1; i < order.size(); ++i) EXPECT_LT(order[i - 1], order[i]);
}

TEST(FixedDelayLinkTest, LossDropsPackets) {
  sim::Simulator sim;
  FixedDelayLink link{sim, {.delay = 1ms, .loss_probability = 1.0}};
  int received = 0;
  link.set_sink([&](const Packet&) { ++received; });
  for (int i = 0; i < 10; ++i) link.Send(MakePacket(i + 1));
  sim.RunAll();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(link.dropped(), 10u);
}

// ---------- RateLimitedLink ----------

TEST(RateLimitedLinkTest, SerializationDelayMatchesRate) {
  sim::Simulator sim;
  // 8 Mbps: a 1000-byte packet takes 1 ms to serialize.
  RateLimitedLink link{sim, {.capacity = CapacityTrace{8e6}, .propagation = 0ms}};
  sim::TimePoint delivered_at;
  link.set_sink([&](const Packet&) { delivered_at = sim.Now(); });
  link.Send(MakePacket(1, 1000));
  sim.RunAll();
  EXPECT_EQ(delivered_at, kEpoch + 1ms);
}

TEST(RateLimitedLinkTest, QueueingDelaysBackToBackPackets) {
  sim::Simulator sim;
  RateLimitedLink link{sim, {.capacity = CapacityTrace{8e6}, .propagation = 0ms}};
  std::vector<sim::TimePoint> times;
  link.set_sink([&](const Packet&) { times.push_back(sim.Now()); });
  link.Send(MakePacket(1, 1000));
  link.Send(MakePacket(2, 1000));
  link.Send(MakePacket(3, 1000));
  sim.RunAll();
  ASSERT_EQ(times.size(), 3u);
  EXPECT_EQ(times[0], kEpoch + 1ms);
  EXPECT_EQ(times[1], kEpoch + 2ms);
  EXPECT_EQ(times[2], kEpoch + 3ms);
}

TEST(RateLimitedLinkTest, PropagationAddsConstant) {
  sim::Simulator sim;
  RateLimitedLink link{sim, {.capacity = CapacityTrace{8e6}, .propagation = 15ms}};
  sim::TimePoint delivered_at;
  link.set_sink([&](const Packet&) { delivered_at = sim.Now(); });
  link.Send(MakePacket(1, 1000));
  sim.RunAll();
  EXPECT_EQ(delivered_at, kEpoch + 16ms);
}

TEST(RateLimitedLinkTest, DropTailOnFullQueue) {
  sim::Simulator sim;
  RateLimitedLink link{
      sim, {.capacity = CapacityTrace{8e6}, .propagation = 0ms, .max_queue_packets = 2}};
  int received = 0;
  link.set_sink([&](const Packet&) { ++received; });
  for (int i = 0; i < 10; ++i) link.Send(MakePacket(i + 1, 1000));
  sim.RunAll();
  EXPECT_GT(link.dropped(), 0u);
  EXPECT_LT(received, 10);
}

TEST(RateLimitedLinkTest, ZeroCapacityParksUntilStep) {
  sim::Simulator sim;
  CapacityTrace trace;
  trace.Append(kEpoch, 0.0);
  trace.Append(kEpoch + 50ms, 8e6);
  RateLimitedLink link{sim, {.capacity = trace, .propagation = 0ms}};
  sim::TimePoint delivered_at;
  link.set_sink([&](const Packet&) { delivered_at = sim.Now(); });
  link.Send(MakePacket(1, 1000));
  sim.RunAll();
  EXPECT_GE(delivered_at, kEpoch + 51ms);  // waits out the dead interval
}

TEST(RateLimitedLinkTest, QueueDepthTracksBacklog) {
  sim::Simulator sim;
  RateLimitedLink link{sim, {.capacity = CapacityTrace{8e6}, .propagation = 0ms}};
  link.set_sink([](const Packet&) {});
  for (int i = 0; i < 5; ++i) link.Send(MakePacket(i + 1, 1000));
  EXPECT_EQ(link.queue_depth(), 5u);  // head in service + 4 queued
  sim.RunAll();
  EXPECT_EQ(link.queue_depth(), 0u);
}

TEST(CapacityTraceTest, MeanOverDegenerateRange) {
  const CapacityTrace t{5e6};
  EXPECT_DOUBLE_EQ(t.MeanOver(kEpoch + 1s, kEpoch + 1s), 5e6);  // falls back to At()
}

// ---------- ICMP ----------

TEST(IcmpTest, ProbesAtConfiguredInterval) {
  sim::Simulator sim;
  PacketIdGenerator ids;
  IcmpProber prober{sim, {.interval = 20ms}, ids};
  int sent = 0;
  prober.set_outbound([&](const Packet& p) {
    EXPECT_EQ(p.kind, PacketKind::kIcmpEcho);
    ++sent;
  });
  prober.Start();
  sim.RunUntil(kEpoch + 99ms);
  prober.Stop();
  EXPECT_EQ(sent, 5);  // t = 0, 20, 40, 60, 80
}

TEST(IcmpTest, RoundTripMeasuresPathDelay) {
  sim::Simulator sim;
  PacketIdGenerator ids;
  IcmpProber prober{sim, {.interval = 20ms}, ids};
  IcmpResponder responder{sim};
  FixedDelayLink out{sim, {.delay = 10ms}};
  FixedDelayLink back{sim, {.delay = 10ms}};

  prober.set_outbound(out.AsHandler());
  out.set_sink(responder.AsHandler());
  responder.set_return_path(back.AsHandler());
  back.set_sink([&](const Packet& p) { prober.OnReply(p); });

  prober.Start();
  sim.RunUntil(kEpoch + 100ms);
  prober.Stop();

  ASSERT_GE(prober.results().size(), 4u);
  for (const auto& r : prober.results()) {
    EXPECT_EQ(r.rtt, 20ms);
  }
}

TEST(IcmpTest, ResponderIgnoresNonEcho) {
  sim::Simulator sim;
  IcmpResponder responder{sim};
  int replies = 0;
  responder.set_return_path([&](const Packet&) { ++replies; });
  responder.OnPacket(MakePacket(1, 100, PacketKind::kRtpVideo));
  sim.RunAll();
  EXPECT_EQ(replies, 0);
}

TEST(IcmpTest, ResponderTurnaroundDelay) {
  sim::Simulator sim;
  IcmpResponder responder{sim, 2ms};
  sim::TimePoint replied_at;
  responder.set_return_path([&](const Packet&) { replied_at = sim.Now(); });
  Packet echo = MakePacket(1, 64, PacketKind::kIcmpEcho);
  echo.icmp = IcmpMeta{.probe_seq = 0, .echo_sent_at = kEpoch};
  responder.OnPacket(echo);
  sim.RunAll();
  EXPECT_EQ(replied_at, kEpoch + 2ms);
}

TEST(IcmpTest, ReplyCarriesProbeSeq) {
  sim::Simulator sim;
  PacketIdGenerator ids;
  IcmpProber prober{sim, {}, ids};
  IcmpResponder responder{sim};
  prober.set_outbound(responder.AsHandler());
  responder.set_return_path([&](const Packet& p) { prober.OnReply(p); });
  prober.Start();
  sim.RunUntil(kEpoch + 45ms);
  prober.Stop();
  ASSERT_GE(prober.results().size(), 2u);
  EXPECT_EQ(prober.results()[0].seq, 0u);
  EXPECT_EQ(prober.results()[1].seq, 1u);
}

}  // namespace
}  // namespace athena::net
