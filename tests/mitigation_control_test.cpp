// Tests for the online mitigation control plane (src/mitigation/control/):
//
//   * MitigationControllerTest — the guardrail contract, knob by knob:
//     hysteresis, confidence gate (low confidence / gate anomalies /
//     degraded correlation), cooldown anti-flap, the QoE watchdog and the
//     feed-silence fail-safe, refusal recording, and the sense-to-act
//     budget in virtual time.
//   * MitigationMatrixTest — the chaos-facing determinism surface: the
//     mitigation on/off matrix is byte-identical across --jobs and across
//     repeated runs, and the guarded scenarios actually engage the
//     guardrails. (This suite is also the TSAN probe: pairs run on
//     ParallelRunner workers, each with a private runtime + LiveEngine.)
//   * MitigationCheckpointTest — a supervised kill/restore replays the
//     decision ledger byte-identically, and the ledger joins the report
//     digest surface via RunPlan::report_appendix.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "app/session.hpp"
#include "fault/chaos.hpp"
#include "fault/mitigation_chaos.hpp"
#include "mitigation/control/controller.hpp"
#include "mitigation/control/runtime.hpp"
#include "net/capacity_trace.hpp"
#include "obs/live/anomaly.hpp"
#include "obs/metrics.hpp"
#include "ran/types.hpp"
#include "resilience/checkpoint.hpp"
#include "resilience/supervisor.hpp"
#include "sim/check.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace athena {
namespace {

using namespace std::chrono_literals;
namespace ctl = mitigation::control;
using ctl::DecisionOutcome;
using ctl::Knob;
using obs::live::AnomalyEvent;
using obs::live::AnomalyKind;
using resilience::CheckpointingDriver;
using resilience::ProcessFaultSpec;
using resilience::RunPlan;
using resilience::Supervisor;
using resilience::SupervisorOptions;
using sim::kEpoch;

AnomalyEvent Verdict(AnomalyKind kind, double confidence) {
  AnomalyEvent event;
  event.kind = kind;
  event.confidence = confidence;
  return event;
}

std::size_t CountOutcome(const ctl::MitigationController& controller,
                         DecisionOutcome outcome) {
  const auto& ledger = controller.ledger();
  return static_cast<std::size_t>(std::count_if(
      ledger.begin(), ledger.end(),
      [outcome](const ctl::DecisionRecord& r) { return r.outcome == outcome; }));
}

/// A controller wired to recording fake actuators and a flat QoE probe
/// (100 rendered, 0 late) — each test overrides what it exercises.
struct Harness {
  obs::MetricsRegistry registry;
  obs::ScopedMetrics metrics_scope{&registry};
  sim::Simulator sim;
  ctl::MitigationController controller;
  std::vector<double> gains;
  std::vector<double> scales;
  std::vector<bool> grant_modes;
  std::vector<bool> pacing;

  explicit Harness(ctl::MitigationController::Config config = {})
      : controller(sim, config) {
    ctl::Actuators actuators;
    actuators.cc_mask_gain = [this](double g) { gains.push_back(g); };
    actuators.proactive_scale = [this](double s) { scales.push_back(s); };
    actuators.grant_mode = [this](bool on) { grant_modes.push_back(on); };
    actuators.pacing = [this](bool on) { pacing.push_back(on); };
    controller.set_actuators(std::move(actuators));
    controller.set_qoe_probe(
        [] { return std::pair<std::uint64_t, std::uint64_t>{100, 0}; });
  }

  void Inject(sim::Duration at, AnomalyKind kind, double confidence) {
    sim.ScheduleAt(kEpoch + at,
                   [this, kind, confidence] { controller.OnAnomaly(Verdict(kind, confidence)); });
  }
};

// --- the happy path: corroborated trigger -> actuation within budget ---

TEST(MitigationControllerTest, ActuatesOnCorroboratedTriggerWithinBudget) {
  Harness h;
  h.controller.Start();
  h.Inject(5ms, AnomalyKind::kDelaySpreadQuantization, 0.9);
  h.Inject(12ms, AnomalyKind::kHarqRtxInflation, 0.9);  // same knob, corroborates
  h.sim.RunFor(100ms);

  EXPECT_EQ(h.controller.actuations(), 1u);
  EXPECT_DOUBLE_EQ(h.controller.knob_value(Knob::kCcMaskGain), 1.0);
  ASSERT_EQ(h.gains.size(), 1u);
  EXPECT_DOUBLE_EQ(h.gains.front(), 1.0);
  // First trigger alone must not move the knob.
  EXPECT_EQ(CountOutcome(h.controller, DecisionOutcome::kBlockedHysteresis), 1u);
  EXPECT_EQ(CountOutcome(h.controller, DecisionOutcome::kActuated), 1u);
  // Sense-to-act is virtual-time exact: trigger at 12ms, decided on the
  // 20ms tick.
  EXPECT_EQ(h.controller.max_sense_to_act(), 8ms);
  EXPECT_LE(h.controller.max_sense_to_act(), h.controller.config().budget);
}

TEST(MitigationControllerTest, EachKnobMapsToItsActuator) {
  Harness h;
  h.controller.Start();
  h.Inject(5ms, AnomalyKind::kBsrGrantWait, 0.9);
  h.Inject(12ms, AnomalyKind::kBsrGrantWait, 0.9);
  h.Inject(15ms, AnomalyKind::kQueueBuildup, 0.9);
  h.Inject(22ms, AnomalyKind::kQueueBuildup, 0.9);
  h.Inject(25ms, AnomalyKind::kOverGranting, 0.9);
  h.Inject(32ms, AnomalyKind::kOverGranting, 0.9);
  h.sim.RunFor(100ms);

  EXPECT_EQ(h.controller.actuations(), 3u);
  ASSERT_EQ(h.grant_modes.size(), 1u);
  EXPECT_TRUE(h.grant_modes.front());
  ASSERT_EQ(h.pacing.size(), 1u);
  EXPECT_TRUE(h.pacing.front());
  // Proactive backoff: 1.0 * 0.75, clamped to [0.5, 1.0].
  ASSERT_EQ(h.scales.size(), 1u);
  EXPECT_DOUBLE_EQ(h.scales.front(), 0.75);
  EXPECT_DOUBLE_EQ(h.controller.knob_value(Knob::kProactiveScale), 0.75);
}

// --- confidence gate ---

TEST(MitigationControllerTest, LowConfidenceNeverActuates) {
  Harness h;
  h.controller.Start();
  h.Inject(5ms, AnomalyKind::kDelaySpreadQuantization, 0.2);
  h.Inject(12ms, AnomalyKind::kDelaySpreadQuantization, 0.2);
  h.sim.RunFor(100ms);

  EXPECT_EQ(h.controller.actuations(), 0u);
  EXPECT_TRUE(h.gains.empty());
  EXPECT_DOUBLE_EQ(h.controller.knob_value(Knob::kCcMaskGain), 0.0);
  EXPECT_EQ(CountOutcome(h.controller, DecisionOutcome::kBlockedConfidence), 2u);
  EXPECT_EQ(h.controller.guardrail_blocks(), 2u);
}

TEST(MitigationControllerTest, GateAnomalyPoisonsDecisionsUntilHoldExpires) {
  Harness h;
  h.controller.Start();
  // A telemetry-gap verdict means the input stream is suspect: refuse
  // even high-confidence triggers for the whole gate-hold window.
  h.Inject(1ms, AnomalyKind::kTelemetryGap, 0.9);
  h.Inject(5ms, AnomalyKind::kDelaySpreadQuantization, 0.95);
  h.Inject(12ms, AnomalyKind::kDelaySpreadQuantization, 0.95);
  // Well past gate_hold (1s after the gap): the same evidence actuates.
  h.Inject(1100ms, AnomalyKind::kDelaySpreadQuantization, 0.95);
  h.Inject(1110ms, AnomalyKind::kDelaySpreadQuantization, 0.95);
  h.sim.RunFor(1300ms);

  EXPECT_EQ(CountOutcome(h.controller, DecisionOutcome::kBlockedConfidence), 2u);
  EXPECT_EQ(h.controller.actuations(), 1u);
  EXPECT_DOUBLE_EQ(h.controller.knob_value(Knob::kCcMaskGain), 1.0);
}

TEST(MitigationControllerTest, DegradedCorrelationRefusesUntilCleared) {
  Harness h;
  h.controller.NoteCorrelationDegraded(true);
  h.controller.Start();
  h.Inject(5ms, AnomalyKind::kDelaySpreadQuantization, 0.95);
  h.Inject(12ms, AnomalyKind::kDelaySpreadQuantization, 0.95);
  h.sim.ScheduleAt(kEpoch + 50ms, [&h] { h.controller.NoteCorrelationDegraded(false); });
  h.Inject(60ms, AnomalyKind::kDelaySpreadQuantization, 0.95);
  h.Inject(70ms, AnomalyKind::kDelaySpreadQuantization, 0.95);
  h.sim.RunFor(200ms);

  EXPECT_EQ(CountOutcome(h.controller, DecisionOutcome::kBlockedConfidence), 2u);
  EXPECT_EQ(h.controller.actuations(), 1u);
}

// --- cooldown / anti-flap ---

TEST(MitigationControllerTest, CooldownBlocksFlapping) {
  Harness h;
  h.controller.Start();
  // First backoff: 1.0 -> 0.75.
  h.Inject(5ms, AnomalyKind::kOverGranting, 0.9);
  h.Inject(12ms, AnomalyKind::kOverGranting, 0.9);
  // Immediate re-trigger: corroborated again, but the knob moved 10-30ms
  // ago and the 500ms cooldown must hold it.
  h.Inject(30ms, AnomalyKind::kOverGranting, 0.9);
  h.Inject(40ms, AnomalyKind::kOverGranting, 0.9);
  h.sim.RunFor(300ms);
  EXPECT_EQ(h.controller.actuations(), 1u);
  EXPECT_GE(CountOutcome(h.controller, DecisionOutcome::kBlockedCooldown), 1u);
  EXPECT_DOUBLE_EQ(h.controller.knob_value(Knob::kProactiveScale), 0.75);

  // Past the cooldown, fresh corroboration backs off again: 0.75 -> 0.5625.
  h.Inject(600ms, AnomalyKind::kOverGranting, 0.9);
  h.Inject(610ms, AnomalyKind::kOverGranting, 0.9);
  h.sim.RunFor(400ms);
  EXPECT_EQ(h.controller.actuations(), 2u);
  EXPECT_DOUBLE_EQ(h.controller.knob_value(Knob::kProactiveScale), 0.75 * 0.75);
  ASSERT_EQ(h.scales.size(), 2u);
  EXPECT_DOUBLE_EQ(h.scales.back(), 0.75 * 0.75);
}

// --- fail-safe watchdogs ---

TEST(MitigationControllerTest, QoeWatchdogRevertsWhenLateFramesRise) {
  Harness h;
  // One frame per 10ms; every frame after t=20ms (the actuation tick)
  // arrives late — the post-actuation window is catastrophically worse
  // than the pre-actuation one.
  h.controller.set_qoe_probe([&h]() -> std::pair<std::uint64_t, std::uint64_t> {
    const std::int64_t us = (h.sim.Now() - kEpoch).count();
    const auto rendered = static_cast<std::uint64_t>(us / 10000);
    const auto late = static_cast<std::uint64_t>(us > 20000 ? (us - 20000) / 10000 : 0);
    return {rendered, late};
  });
  h.controller.Start();
  h.Inject(5ms, AnomalyKind::kDelaySpreadQuantization, 0.9);
  h.Inject(12ms, AnomalyKind::kDelaySpreadQuantization, 0.9);
  h.sim.RunFor(1s);

  EXPECT_EQ(h.controller.actuations(), 1u);
  EXPECT_EQ(h.controller.reverts(), 1u);
  EXPECT_DOUBLE_EQ(h.controller.knob_value(Knob::kCcMaskGain), 0.0);
  // The actuator saw the move and the rollback.
  ASSERT_EQ(h.gains.size(), 2u);
  EXPECT_DOUBLE_EQ(h.gains[0], 1.0);
  EXPECT_DOUBLE_EQ(h.gains[1], 0.0);
  // The ledger records why.
  const auto& ledger = h.controller.ledger();
  const auto it = std::find_if(ledger.begin(), ledger.end(), [](const auto& r) {
    return r.outcome == DecisionOutcome::kReverted;
  });
  ASSERT_NE(it, ledger.end());
  EXPECT_EQ(std::string{it->why}, "qoe worsened post-actuation");
}

TEST(MitigationControllerTest, FeedSilenceFailsafeRevertsAndGates) {
  Harness h;
  h.controller.set_has_telemetry_feed(true);
  h.controller.Start();
  // A live feed for the first 100ms, then silence.
  for (int i = 1; i <= 10; ++i) {
    h.sim.ScheduleAt(kEpoch + i * 10ms, [&h] { h.controller.OnTelemetry(ran::TbRecord{}); });
  }
  h.Inject(5ms, AnomalyKind::kDelaySpreadQuantization, 0.9);
  h.Inject(12ms, AnomalyKind::kDelaySpreadQuantization, 0.9);
  // Triggers arriving during the silence must be refused, not actuated.
  h.Inject(500ms, AnomalyKind::kBsrGrantWait, 0.95);
  h.Inject(510ms, AnomalyKind::kBsrGrantWait, 0.95);
  h.sim.RunFor(1s);

  EXPECT_EQ(h.controller.actuations(), 1u);
  EXPECT_EQ(h.controller.reverts(), 1u);
  EXPECT_DOUBLE_EQ(h.controller.knob_value(Knob::kCcMaskGain), 0.0);
  EXPECT_DOUBLE_EQ(h.controller.knob_value(Knob::kGrantMode), 0.0);
  EXPECT_GE(CountOutcome(h.controller, DecisionOutcome::kBlockedConfidence), 2u);
  const auto& ledger = h.controller.ledger();
  const auto it = std::find_if(ledger.begin(), ledger.end(), [](const auto& r) {
    return r.outcome == DecisionOutcome::kReverted;
  });
  ASSERT_NE(it, ledger.end());
  EXPECT_EQ(std::string{it->why}, "telemetry feed silent");
}

// --- refusal recording ---

TEST(MitigationControllerTest, MissingActuatorIsARecordedRefusal) {
  obs::MetricsRegistry registry;
  obs::ScopedMetrics metrics_scope{&registry};
  sim::Simulator sim;
  ctl::MitigationController controller{sim, {}};  // no actuators wired
  controller.set_qoe_probe([] { return std::pair<std::uint64_t, std::uint64_t>{0, 0}; });
  controller.Start();
  sim.ScheduleAt(kEpoch + 5ms, [&controller] {
    controller.OnAnomaly(Verdict(AnomalyKind::kQueueBuildup, 0.9));
  });
  sim.ScheduleAt(kEpoch + 12ms, [&controller] {
    controller.OnAnomaly(Verdict(AnomalyKind::kQueueBuildup, 0.9));
  });
  sim.RunFor(100ms);

  EXPECT_EQ(controller.actuations(), 0u);
  EXPECT_DOUBLE_EQ(controller.knob_value(Knob::kPacing), 0.0);
  EXPECT_EQ(CountOutcome(controller, DecisionOutcome::kBlockedNoActuator), 1u);
  EXPECT_GE(controller.guardrail_blocks(), 1u);
}

// --- determinism + config validation ---

TEST(MitigationControllerTest, LedgerDigestIsDeterministic) {
  const auto run = [] {
    Harness h;
    h.controller.Start();
    h.Inject(5ms, AnomalyKind::kDelaySpreadQuantization, 0.9);
    h.Inject(12ms, AnomalyKind::kDelaySpreadQuantization, 0.9);
    h.Inject(40ms, AnomalyKind::kOverGranting, 0.3);
    h.Inject(700ms, AnomalyKind::kBsrGrantWait, 0.8);
    h.Inject(710ms, AnomalyKind::kBsrGrantWait, 0.8);
    h.sim.RunFor(1s);
    return std::pair{h.controller.LedgerDigest(), h.controller.ledger().size()};
  };
  const auto [digest_a, size_a] = run();
  const auto [digest_b, size_b] = run();
  EXPECT_EQ(digest_a, digest_b);
  EXPECT_EQ(size_a, size_b);
  EXPECT_GT(size_a, 0u);
  EXPECT_NE(digest_a, 0xcbf29ce484222325ULL);  // not the empty-ledger basis
}

TEST(MitigationControllerTest, ConfigRejectsZeroBudgetAndClampsTick) {
  sim::Simulator sim;
  {
    sim::ScopedCheckThrow guard;
    ctl::MitigationController::Config config;
    config.budget = sim::Duration{0};
    EXPECT_THROW((ctl::MitigationController{sim, config}), sim::CheckViolation);
  }
  // A tick coarser than the budget would let triggers age past the
  // sense-to-act bound; the controller clamps it.
  ctl::MitigationController::Config config;
  config.budget = 20ms;
  config.tick = 100ms;
  ctl::MitigationController controller{sim, config};
  EXPECT_EQ(controller.config().tick, 20ms);
}

// --- the chaos-facing matrix: determinism across jobs and repeats ---

std::vector<fault::ChaosScenario> GuardedScenarios() {
  std::vector<fault::ChaosScenario> out;
  for (const fault::ChaosScenario& s : fault::BuiltinScenarios()) {
    if (s.expect.mitigation_guarded) out.push_back(s);
  }
  return out;
}

std::string MatrixJson(const fault::MitigationMatrixResult& result, std::size_t seeds) {
  std::ostringstream os;
  // jobs written as 0 so serializations from different job counts are
  // directly byte-comparable.
  fault::WriteMitigationJson(os, result, 42, seeds, 0, 50ms);
  return os.str();
}

TEST(MitigationMatrixTest, ByteIdenticalAcrossJobCounts) {
  const auto scenarios = GuardedScenarios();
  ASSERT_GE(scenarios.size(), 2u);  // lying_telemetry + actuate_during_handover

  const auto seq = fault::RunMitigationMatrix(scenarios, 42, 2, 1);
  const auto par = fault::RunMitigationMatrix(scenarios, 42, 2, 8);
  ASSERT_EQ(seq.outcomes.size(), par.outcomes.size());
  for (std::size_t i = 0; i < seq.outcomes.size(); ++i) {
    EXPECT_EQ(seq.outcomes[i].ledger_digest, par.outcomes[i].ledger_digest)
        << seq.outcomes[i].scenario << " seed " << seq.outcomes[i].seed;
    EXPECT_EQ(seq.outcomes[i].decisions, par.outcomes[i].decisions);
  }
  EXPECT_EQ(MatrixJson(seq, 2), MatrixJson(par, 2));
}

TEST(MitigationMatrixTest, GuardedScenariosEngageGuardrailsAndHoldQoe) {
  const auto scenarios = GuardedScenarios();
  ASSERT_GE(scenarios.size(), 2u);

  const auto result = fault::RunMitigationMatrix(scenarios, 42, 2, 2);
  ASSERT_EQ(result.outcomes.size(), scenarios.size() * 2);
  for (const fault::MitigationOutcome& o : result.outcomes) {
    EXPECT_TRUE(o.ok()) << o.scenario << " seed " << o.seed << ": " << o.failure;
    // Hostile telemetry must visibly hit a guardrail: a refusal or a
    // fail-safe revert, never a silent pass-through.
    EXPECT_GT(o.guardrail_blocks + o.reverts, 0u) << o.scenario;
    EXPECT_TRUE(o.budget_ok) << o.scenario << ": " << o.max_sense_to_act_us << "us";
    EXPECT_TRUE(o.qoe_ok) << o.scenario;
  }
  EXPECT_TRUE(result.all_ok());
}

TEST(MitigationMatrixTest, RepeatedRunsAreByteIdentical) {
  const auto scenarios = GuardedScenarios();
  ASSERT_FALSE(scenarios.empty());
  const auto a = fault::RunMitigationMatrix(scenarios, 42, 1, 2);
  const auto b = fault::RunMitigationMatrix(scenarios, 42, 1, 2);
  EXPECT_EQ(MatrixJson(a, 1), MatrixJson(b, 1));
}

// --- checkpoint/restore: the ledger joins the byte-identity surface ---

SupervisorOptions FastOptions() {
  SupervisorOptions options;
  options.watchdog = false;
  options.backoff_initial = std::chrono::milliseconds{0};
  return options;
}

RunPlan MitigatedPlan(ctl::MitigationRuntime& runtime, std::uint64_t seed) {
  RunPlan plan;
  plan.config.seed = seed;
  plan.config.cross_traffic = net::CapacityTrace{16e6};
  plan.config.cross_burstiness = 0.35;
  plan.config.channel = ran::ChannelModel::FadingRadio();
  plan.duration = 2s;
  plan.checkpoint_every = 250ms;
  runtime.InstallConfigHooks(plan.config);
  plan.trace_sink = runtime.sink();
  plan.on_session = [&runtime](sim::Simulator& sim, app::Session& session) {
    runtime.BindSession(sim, session);
  };
  plan.report_appendix = [&runtime](std::ostream& os) { runtime.RenderLedger(os); };
  return plan;
}

TEST(MitigationCheckpointTest, LedgerReplaysByteIdenticallyAcrossKillRestore) {
  // Reference: one uninterrupted checkpointing run under mitigation.
  ctl::MitigationRuntime runtime_a;
  CheckpointingDriver driver{MitigatedPlan(runtime_a, 7)};
  const resilience::RunOutcome base = driver.Run();
  const std::uint64_t ledger_a = runtime_a.controller()->LedgerDigest();
  ASSERT_GT(runtime_a.controller()->ledger().size(), 0u)
      << "scenario produced no decisions — the identity check would be vacuous";

  // Same plan, supervised, killed mid-run: the restore replays from the
  // last checkpoint with a fresh controller and must land on the same
  // ledger, final digest and rendered report (which embeds the ledger
  // via report_appendix).
  ctl::MitigationRuntime runtime_b;
  Supervisor supervisor{MitigatedPlan(runtime_b, 7), FastOptions()};
  ProcessFaultSpec faults;
  faults.kill_at = kEpoch + 1200ms;
  const resilience::SupervisedOutcome sup = supervisor.Run(faults);

  ASSERT_TRUE(sup.completed) << sup.last_error;
  EXPECT_EQ(sup.crashes, 1);
  EXPECT_TRUE(sup.outcome.restored);
  EXPECT_EQ(sup.outcome.final_digest, base.final_digest);
  EXPECT_EQ(sup.outcome.report_digest, base.report_digest);
  EXPECT_EQ(sup.outcome.report, base.report);
  EXPECT_EQ(runtime_b.controller()->LedgerDigest(), ledger_a);
}

}  // namespace
}  // namespace athena
