// Tests for the trace-driven replay link (§5.1 "GCC simulator" substrate).
#include <chrono>

#include <gtest/gtest.h>

#include "app/session.hpp"
#include "core/analyzer.hpp"
#include "core/correlator.hpp"
#include "net/trace_link.hpp"
#include "sim/simulator.hpp"

namespace athena::net {
namespace {

using namespace std::chrono_literals;
using sim::kEpoch;

DelayTrace SimpleTrace() {
  return DelayTrace{{
      {0ms, 10ms},
      {100ms, 20ms},
      {200ms, 30ms},
  }};
}

TEST(DelayTraceTest, NearestSampleLookup) {
  const auto trace = SimpleTrace();
  EXPECT_EQ(trace.DelayAt(0ms), 10ms);
  EXPECT_EQ(trace.DelayAt(40ms), 10ms);    // nearer to 0 than 100
  EXPECT_EQ(trace.DelayAt(60ms), 20ms);    // nearer to 100
  EXPECT_EQ(trace.DelayAt(199ms), 30ms);
}

TEST(DelayTraceTest, CyclicExtension) {
  const auto trace = SimpleTrace();  // span 200 ms
  EXPECT_EQ(trace.DelayAt(201ms), trace.DelayAt(0ms));
  EXPECT_EQ(trace.DelayAt(301ms), trace.DelayAt(100ms));
}

TEST(DelayTraceTest, EmptyTraceGivesZero) {
  const DelayTrace trace;
  EXPECT_EQ(trace.DelayAt(123ms), 0ms);
}

TEST(DelayTraceTest, UnsortedInputIsSorted) {
  const DelayTrace trace{{{200ms, 30ms}, {0ms, 10ms}, {100ms, 20ms}}};
  EXPECT_EQ(trace.DelayAt(0ms), 10ms);
  EXPECT_EQ(trace.span(), 200ms);
}

TEST(TraceDrivenLinkTest, ReplaysRecordedDelays) {
  sim::Simulator sim;
  TraceDrivenLink link{sim, SimpleTrace()};
  std::vector<std::pair<PacketId, sim::TimePoint>> out;
  link.set_sink([&](const Packet& p) { out.emplace_back(p.id, sim.Now()); });

  auto send_at = [&](sim::Duration when, PacketId id) {
    sim.ScheduleAt(kEpoch + when, [&link, id] {
      Packet p;
      p.id = id;
      p.size_bytes = 1000;
      link.Send(p);
    });
  };
  send_at(0ms, 1);    // delay 10 → arrives 10
  send_at(100ms, 2);  // delay 20 → arrives 120
  send_at(200ms, 3);  // delay 30 → arrives 230
  sim.RunAll();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].second, kEpoch + 10ms);
  EXPECT_EQ(out[1].second, kEpoch + 120ms);
  EXPECT_EQ(out[2].second, kEpoch + 230ms);
}

TEST(TraceDrivenLinkTest, FifoEnforcedWhenTraceWouldReorder) {
  sim::Simulator sim;
  // Delay collapses from 50 ms to 1 ms: naive replay would reorder.
  TraceDrivenLink link{sim, DelayTrace{{{0ms, 50ms}, {10ms, 1ms}}}};
  std::vector<PacketId> order;
  link.set_sink([&](const Packet& p) { order.push_back(p.id); });
  sim.ScheduleAt(kEpoch, [&] {
    Packet p;
    p.id = 1;
    link.Send(p);
  });
  sim.ScheduleAt(kEpoch + 10ms, [&] {
    Packet p;
    p.id = 2;
    link.Send(p);
  });
  sim.RunAll();
  EXPECT_EQ(order, (std::vector<PacketId>{1, 2}));
}

TEST(TraceHarvestTest, DatasetRoundTrip) {
  // Record a short 5G session, harvest the delay trace, and check that the
  // replayed delay distribution matches the recorded one.
  sim::Simulator sim;
  app::SessionConfig config;
  config.seed = 95;
  config.channel.base_bler = 0.1;
  app::Session session{sim, config};
  session.Run(10s);
  const auto data = core::Correlator::Correlate(session.BuildCorrelatorInput());
  const auto trace = core::Analyzer::BuildDelayTrace(data);

  ASSERT_GT(trace.size(), 1000u);
  EXPECT_GT(trace.span(), 9s);
  // Replay at a recorded offset returns the delay of one of the samples
  // recorded at that offset (burst packets share a send time, so the
  // offset can be ambiguous — any of its delays is a faithful replay).
  for (std::size_t i = 0; i < trace.size(); i += 97) {
    const auto& s = trace.samples()[i];
    const auto replayed = trace.DelayAt(s.offset);
    bool matches_one = false;
    for (const auto& other : trace.samples()) {
      if (other.offset == s.offset && other.delay == replayed) {
        matches_one = true;
        break;
      }
    }
    EXPECT_TRUE(matches_one) << "offset " << s.offset.count();
  }
}

}  // namespace
}  // namespace athena::net
