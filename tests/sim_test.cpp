#include <algorithm>
#include <array>
#include <chrono>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace athena::sim {
namespace {

using namespace std::chrono_literals;

// ---------- TimePoint / Duration ----------

TEST(TimeTest, DefaultIsEpoch) {
  EXPECT_EQ(TimePoint{}, kEpoch);
  EXPECT_EQ(kEpoch.us(), 0);
}

TEST(TimeTest, ArithmeticRoundTrips) {
  const TimePoint t = kEpoch + 1500us;
  EXPECT_EQ(t.us(), 1500);
  EXPECT_EQ((t - kEpoch), 1500us);
  EXPECT_EQ(t - 500us, kEpoch + 1ms);
}

TEST(TimeTest, ComparisonIsTotalOrder) {
  const TimePoint a = kEpoch + 1ms;
  const TimePoint b = kEpoch + 2ms;
  EXPECT_LT(a, b);
  EXPECT_LE(a, a);
  EXPECT_GT(b, a);
  EXPECT_NE(a, b);
}

TEST(TimeTest, MsAndSecondsConversions) {
  const TimePoint t = kEpoch + 2500us;
  EXPECT_DOUBLE_EQ(t.ms(), 2.5);
  EXPECT_DOUBLE_EQ(t.seconds(), 0.0025);
  EXPECT_DOUBLE_EQ(ToMs(2500us), 2.5);
  EXPECT_DOUBLE_EQ(ToSeconds(1500ms), 1.5);
}

TEST(TimeTest, FromMsAndFromSeconds) {
  EXPECT_EQ(FromMs(2.5), 2500us);
  EXPECT_EQ(FromSeconds(0.001), 1ms);
  EXPECT_EQ(FromMs(-1.0), -1000us);
}

TEST(TimeTest, ToStringFormatsMilliseconds) {
  EXPECT_EQ(ToString(Duration{12'500}), "12.500ms");
  EXPECT_EQ(ToString(kEpoch + 1ms), "1.000ms");
}

TEST(TimeTest, InfinityIsLargerThanAnyPracticalTime) {
  EXPECT_GT(kTimeInfinity, kEpoch + std::chrono::hours{24 * 365});
}

// ---------- EventQueue ----------

TEST(EventQueueTest, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(kEpoch + 3ms, [&] { order.push_back(3); });
  q.Schedule(kEpoch + 1ms, [&] { order.push_back(1); });
  q.Schedule(kEpoch + 2ms, [&] { order.push_back(2); });
  while (!q.empty()) q.PopNext().cb();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, SameTimeIsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.Schedule(kEpoch + 1ms, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.PopNext().cb();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, NextTimeReportsEarliest) {
  EventQueue q;
  q.Schedule(kEpoch + 5ms, [] {});
  q.Schedule(kEpoch + 2ms, [] {});
  EXPECT_EQ(q.next_time(), kEpoch + 2ms);
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  int fired = 0;
  const auto h = q.Schedule(kEpoch + 1ms, [&] { ++fired; });
  q.Schedule(kEpoch + 2ms, [&] { ++fired; });
  EXPECT_TRUE(q.Cancel(h));
  while (!q.empty()) q.PopNext().cb();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueueTest, CancelInvalidHandleIsNoop) {
  EventQueue q;
  EXPECT_FALSE(q.Cancel(EventHandle{}));
}

TEST(EventQueueTest, DoubleCancelReturnsFalse) {
  EventQueue q;
  const auto h = q.Schedule(kEpoch + 1ms, [] {});
  EXPECT_TRUE(q.Cancel(h));
  EXPECT_FALSE(q.Cancel(h));
}

TEST(EventQueueTest, SizeTracksLiveEvents) {
  EventQueue q;
  const auto h = q.Schedule(kEpoch + 1ms, [] {});
  q.Schedule(kEpoch + 2ms, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.Cancel(h);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueueTest, CancelAfterFireReturnsFalseAndKeepsCount) {
  // Regression: cancelling a handle whose event already fired used to
  // decrement the live count anyway, making size()/empty() lie and
  // Run* loops terminate early.
  EventQueue q;
  int fired = 0;
  const auto h = q.Schedule(kEpoch + 1ms, [&] { ++fired; });
  q.Schedule(kEpoch + 2ms, [&] { ++fired; });
  q.PopNext().cb();  // fires the 1ms event; h is now stale
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(q.Cancel(h));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_FALSE(q.empty());
  q.PopNext().cb();
  EXPECT_EQ(fired, 2);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, StaleHandleCannotCancelSlotReuser) {
  // After an event fires, its slot may be reused by a younger event; the
  // old handle's generation tag must not match the new occupant.
  EventQueue q;
  const auto h1 = q.Schedule(kEpoch + 1ms, [] {});
  q.PopNext().cb();  // slot freed, h1 stale
  bool ran = false;
  q.Schedule(kEpoch + 2ms, [&] { ran = true; });  // reuses the slot
  EXPECT_FALSE(q.Cancel(h1));
  EXPECT_EQ(q.size(), 1u);
  q.PopNext().cb();
  EXPECT_TRUE(ran);
}

TEST(EventQueueTest, CancelledDoubleCancelAfterHeadDropIsNoop) {
  EventQueue q;
  const auto h = q.Schedule(kEpoch + 1ms, [] {});
  int fired = 0;
  q.Schedule(kEpoch + 2ms, [&] { ++fired; });
  EXPECT_TRUE(q.Cancel(h));
  // next_time() lazily discards the tombstone and recycles the slot.
  EXPECT_EQ(q.next_time(), kEpoch + 2ms);
  EXPECT_FALSE(q.Cancel(h));
  EXPECT_EQ(q.size(), 1u);
  q.PopNext().cb();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueueTest, MatchesReferenceModelUnderRandomOps) {
  // Property test: random schedule/cancel/pop interleavings must agree
  // with a naive sorted-reference model on firing order, size, and
  // cancel results.
  struct ModelEvent {
    std::int64_t when_us;
    std::uint64_t seq;
    int id;
  };
  for (const std::uint64_t seed : {1ULL, 7ULL, 99ULL}) {
    Rng rng{seed};
    EventQueue q;
    std::vector<ModelEvent> model;  // pending, unordered
    std::vector<std::pair<EventHandle, std::uint64_t>> handles;  // all ever issued
    std::vector<int> actual_order;
    std::vector<int> expected_order;
    std::uint64_t next_seq = 1;
    int next_id = 0;

    const auto model_pop = [&]() -> ModelEvent {
      std::size_t best = 0;
      for (std::size_t i = 1; i < model.size(); ++i) {
        const auto& a = model[i];
        const auto& b = model[best];
        if (a.when_us < b.when_us || (a.when_us == b.when_us && a.seq < b.seq)) best = i;
      }
      const ModelEvent e = model[best];
      model.erase(model.begin() + static_cast<std::ptrdiff_t>(best));
      return e;
    };

    for (int op = 0; op < 4000; ++op) {
      const double dice = rng.Uniform(0, 1);
      if (dice < 0.5 || model.empty()) {
        // Coarse time grid on purpose: plenty of equal-time collisions.
        const std::int64_t when_us = rng.UniformInt(0, 50) * 1000;
        const int id = next_id++;
        const auto h = q.Schedule(TimePoint{} + Duration{when_us},
                                  [&actual_order, id] { actual_order.push_back(id); });
        handles.emplace_back(h, next_seq);
        model.push_back(ModelEvent{when_us, next_seq, id});
        ++next_seq;
      } else if (dice < 0.75) {
        // Cancel a random handle — possibly stale, possibly already
        // cancelled; the queue must agree with the model either way.
        const auto& [h, seq] =
            handles[static_cast<std::size_t>(rng.UniformInt(
                0, static_cast<std::int64_t>(handles.size()) - 1))];
        const auto it = std::find_if(model.begin(), model.end(),
                                     [&](const ModelEvent& e) { return e.seq == seq; });
        const bool model_ok = it != model.end();
        if (model_ok) model.erase(it);
        EXPECT_EQ(q.Cancel(h), model_ok);
      } else {
        expected_order.push_back(model_pop().id);
        q.PopNext().cb();
      }
      ASSERT_EQ(q.size(), model.size());
    }
    while (!model.empty()) {
      expected_order.push_back(model_pop().id);
      q.PopNext().cb();
    }
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(actual_order, expected_order);
  }
}

// ---------- InlineCallback ----------

TEST(InlineCallbackTest, SmallCapturesStayInline) {
  int x = 0;
  InlineCallback cb{[&x] { ++x; }};
  EXPECT_TRUE(cb.is_inline());
  cb();
  EXPECT_EQ(x, 1);
}

TEST(InlineCallbackTest, LargeCapturesAreBoxed) {
  std::array<char, 128> big{};
  big[0] = 7;
  int result = 0;
  InlineCallback cb{[big, &result] { result = big[0]; }};
  EXPECT_FALSE(cb.is_inline());
  cb();
  EXPECT_EQ(result, 7);
}

TEST(InlineCallbackTest, MoveTransfersOwnership) {
  auto counter = std::make_shared<int>(0);
  InlineCallback a{[counter] { ++*counter; }};
  InlineCallback b{std::move(a)};
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(*counter, 1);
  InlineCallback c;
  c = std::move(b);
  c();
  EXPECT_EQ(*counter, 2);
  // `counter` + the callable's copy: moves must not have duplicated it.
  EXPECT_EQ(counter.use_count(), 2);
}

// ---------- Simulator ----------

TEST(SimulatorTest, ClockAdvancesToEventTime) {
  Simulator sim;
  TimePoint seen;
  sim.ScheduleAfter(10ms, [&] { seen = sim.Now(); });
  sim.RunAll();
  EXPECT_EQ(seen, kEpoch + 10ms);
  EXPECT_EQ(sim.Now(), kEpoch + 10ms);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAfter(5ms, [&] { ++fired; });
  sim.ScheduleAfter(15ms, [&] { ++fired; });
  sim.RunUntil(kEpoch + 10ms);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), kEpoch + 10ms);  // clock lands on the deadline
  sim.RunAll();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, PastScheduleClampsToNow) {
  Simulator sim;
  sim.ScheduleAfter(10ms, [&] {
    // From within an event, schedule into the past: must still run, at now.
    sim.ScheduleAt(kEpoch + 1ms, [&] { EXPECT_EQ(sim.Now(), kEpoch + 10ms); });
  });
  sim.RunAll();
  EXPECT_EQ(sim.events_executed(), 2u);
}

TEST(SimulatorTest, NegativeDelayClampsToZero) {
  Simulator sim;
  bool ran = false;
  sim.ScheduleAfter(-5ms, [&] { ran = true; });
  sim.RunAll();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.Now(), kEpoch);
}

TEST(SimulatorTest, EventsCanScheduleMoreEvents) {
  Simulator sim;
  std::vector<std::int64_t> times;
  std::function<void()> chain = [&] {
    times.push_back(sim.Now().us());
    if (times.size() < 5) sim.ScheduleAfter(1ms, chain);
  };
  sim.ScheduleAfter(1ms, chain);
  sim.RunAll();
  EXPECT_EQ(times, (std::vector<std::int64_t>{1000, 2000, 3000, 4000, 5000}));
}

TEST(SimulatorTest, StepExecutesExactlyOne) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAfter(1ms, [&] { ++fired; });
  sim.ScheduleAfter(2ms, [&] { ++fired; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_FALSE(sim.Step());
}

TEST(SimulatorTest, EventBudgetThrows) {
  Simulator sim;
  sim.set_event_budget(10);
  std::function<void()> forever = [&] { sim.ScheduleAfter(1ms, forever); };
  sim.ScheduleAfter(1ms, forever);
  EXPECT_THROW(sim.RunAll(), EventBudgetExceeded);
}

TEST(SimulatorTest, CancelStopsScheduledEvent) {
  Simulator sim;
  bool ran = false;
  const auto h = sim.ScheduleAfter(1ms, [&] { ran = true; });
  EXPECT_TRUE(sim.Cancel(h));
  sim.RunAll();
  EXPECT_FALSE(ran);
}

// ---------- PeriodicTimer ----------

TEST(PeriodicTimerTest, TicksAtPeriod) {
  Simulator sim;
  std::vector<std::int64_t> ticks;
  PeriodicTimer timer{sim, 10ms, [&] { ticks.push_back(sim.Now().us()); }};
  timer.Start();
  sim.RunUntil(kEpoch + 35ms);
  timer.Stop();
  EXPECT_EQ(ticks, (std::vector<std::int64_t>{10'000, 20'000, 30'000}));
}

TEST(PeriodicTimerTest, InitialDelayControlsPhase) {
  Simulator sim;
  std::vector<std::int64_t> ticks;
  PeriodicTimer timer{sim, 10ms, [&] { ticks.push_back(sim.Now().us()); }};
  timer.Start(0ms);
  sim.RunUntil(kEpoch + 25ms);
  timer.Stop();
  EXPECT_EQ(ticks, (std::vector<std::int64_t>{0, 10'000, 20'000}));
}

TEST(PeriodicTimerTest, StopPreventsFurtherTicks) {
  Simulator sim;
  int ticks = 0;
  PeriodicTimer timer{sim, 10ms, [&] { ++ticks; }};
  timer.Start();
  sim.RunUntil(kEpoch + 15ms);
  timer.Stop();
  sim.RunUntil(kEpoch + 100ms);
  EXPECT_EQ(ticks, 1);
}

TEST(PeriodicTimerTest, CallbackMayStopTimer) {
  Simulator sim;
  int ticks = 0;
  PeriodicTimer timer{sim, 10ms, [&] {
                        if (++ticks == 2) timer.Stop();
                      }};
  timer.Start();
  sim.RunUntil(kEpoch + 100ms);
  EXPECT_EQ(ticks, 2);
}

TEST(PeriodicTimerTest, DestructorCancels) {
  Simulator sim;
  int ticks = 0;
  {
    PeriodicTimer timer{sim, 10ms, [&] { ++ticks; }};
    timer.Start();
  }
  sim.RunUntil(kEpoch + 100ms);
  EXPECT_EQ(ticks, 0);
}

// ---------- Rng ----------

TEST(RngTest, SameSeedSameSequence) {
  Rng a{123};
  Rng b{123};
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(0, 1), b.Uniform(0, 1));
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  bool differ = false;
  for (int i = 0; i < 10 && !differ; ++i) {
    differ = a.Uniform(0, 1) != b.Uniform(0, 1);
  }
  EXPECT_TRUE(differ);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng{7};
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(3.0, 5.0);
    EXPECT_GE(v, 3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng{7};
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.UniformInt(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= v == 0;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng{7};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequencyMatchesP) {
  Rng rng{7};
  int hits = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, NormalMeanAndSpread) {
  Rng rng{7};
  double sum = 0.0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) sum += rng.Normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, NormalAtLeastRespectsFloor) {
  Rng rng{7};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.NormalAtLeast(0.0, 100.0, -5.0), -5.0);
  }
}

TEST(RngTest, ExponentialMeanIsMean) {
  Rng rng{7};
  double sum = 0.0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) sum += rng.ExponentialMean(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(RngTest, LogNormalMeanPreservation) {
  // E[lognormal(mu, s)] = exp(mu + s^2/2): with mu = -s^2/2 the mean is 1.
  Rng rng{7};
  const double sigma = 0.5;
  double sum = 0.0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) sum += rng.LogNormal(-sigma * sigma / 2.0, sigma);
  EXPECT_NEAR(sum / n, 1.0, 0.03);
}

TEST(RngTest, ParetoAboveScale) {
  Rng rng{7};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.Pareto(2.0, 1.5), 2.0);
  }
}

TEST(RngTest, UniformDurationWithinBounds) {
  Rng rng{7};
  for (int i = 0; i < 1000; ++i) {
    const auto d = rng.UniformDuration(1ms, 3ms);
    EXPECT_GE(d, 1ms);
    EXPECT_LE(d, 3ms);
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a{42};
  Rng fork = a.Fork();
  // The fork must not replay the parent's stream.
  Rng b{42};
  (void)b.engine()();  // advance by the same one draw Fork consumed
  bool differ = false;
  for (int i = 0; i < 10 && !differ; ++i) {
    differ = fork.Uniform(0, 1) != b.Uniform(0, 1);
  }
  EXPECT_TRUE(differ);
}

}  // namespace
}  // namespace athena::sim
