// Tests for the §5.1 alternative-access models (Wi-Fi-like contention,
// LEO-satellite-like path) and their integration into the session.
#include <chrono>

#include <gtest/gtest.h>

#include "app/session.hpp"
#include "core/analyzer.hpp"
#include "core/clock_sync.hpp"
#include "core/correlator.hpp"
#include "net/wireless_links.hpp"
#include "sim/simulator.hpp"
#include "stats/cdf.hpp"

namespace athena::net {
namespace {

using namespace std::chrono_literals;
using sim::kEpoch;

Packet MakePacket(PacketId id, std::uint32_t size = 1200) {
  Packet p;
  p.id = id;
  p.size_bytes = size;
  p.kind = PacketKind::kRtpVideo;
  return p;
}

// ---------- WifiLikeLink ----------

TEST(WifiLinkTest, DeliversAllWithoutCollisions) {
  sim::Simulator sim;
  WifiLikeLink::Config config;
  config.collision_probability = 0.0;
  WifiLikeLink wifi{sim, config, sim::Rng{1}};
  int received = 0;
  wifi.set_sink([&](const Packet&) { ++received; });
  for (PacketId i = 1; i <= 100; ++i) {
    sim.ScheduleAfter(sim::Duration{static_cast<std::int64_t>(i) * 5000},
                      [&wifi, i] { wifi.Send(MakePacket(i)); });
  }
  sim.RunAll();
  EXPECT_EQ(received, 100);
  EXPECT_EQ(wifi.collisions(), 0u);
}

TEST(WifiLinkTest, PreservesFifo) {
  sim::Simulator sim;
  WifiLikeLink wifi{sim, {}, sim::Rng{2}};
  std::vector<PacketId> order;
  wifi.set_sink([&](const Packet& p) { order.push_back(p.id); });
  for (PacketId i = 1; i <= 60; ++i) {
    sim.ScheduleAfter(sim::Duration{static_cast<std::int64_t>(i) * 2000},
                      [&wifi, i] { wifi.Send(MakePacket(i)); });
  }
  sim.RunAll();
  for (std::size_t i = 1; i < order.size(); ++i) EXPECT_LT(order[i - 1], order[i]);
}

TEST(WifiLinkTest, LoadIncreasesDelay) {
  auto median_delay = [](double load) {
    sim::Simulator sim;
    WifiLikeLink::Config config;
    config.channel_load = load;
    config.collision_probability = 0.0;
    WifiLikeLink wifi{sim, config, sim::Rng{3}};
    stats::Cdf delays;
    std::unordered_map<PacketId, sim::TimePoint> sent;
    wifi.set_sink([&](const Packet& p) { delays.Add(sim::ToMs(sim.Now() - sent[p.id])); });
    for (PacketId i = 1; i <= 300; ++i) {
      sim.ScheduleAfter(sim::Duration{static_cast<std::int64_t>(i) * 10'000}, [&, i] {
        sent[i] = sim.Now();
        wifi.Send(MakePacket(i));
      });
    }
    sim.RunAll();
    return delays.Median();
  };
  EXPECT_LT(median_delay(0.1), median_delay(0.7));
}

TEST(WifiLinkTest, CollisionsCountAndRetryDelays) {
  sim::Simulator sim;
  WifiLikeLink::Config config;
  config.collision_probability = 0.5;
  WifiLikeLink wifi{sim, config, sim::Rng{4}};
  int received = 0;
  wifi.set_sink([&](const Packet&) { ++received; });
  for (PacketId i = 1; i <= 100; ++i) {
    sim.ScheduleAfter(sim::Duration{static_cast<std::int64_t>(i) * 20'000},
                      [&wifi, i] { wifi.Send(MakePacket(i)); });
  }
  sim.RunAll();
  EXPECT_GT(wifi.collisions(), 20u);
  EXPECT_GT(received, 60);  // retries recover most packets
}

TEST(WifiLinkTest, NoSlotQuantization) {
  // The defining contrast with TDD: Wi-Fi delays do NOT sit on a grid.
  sim::Simulator sim;
  WifiLikeLink wifi{sim, {}, sim::Rng{5}};
  std::vector<double> delays_ms;
  std::unordered_map<PacketId, sim::TimePoint> sent;
  wifi.set_sink(
      [&](const Packet& p) { delays_ms.push_back(sim::ToMs(sim.Now() - sent[p.id])); });
  for (PacketId i = 1; i <= 200; ++i) {
    sim.ScheduleAfter(sim::Duration{static_cast<std::int64_t>(i) * 15'000}, [&, i] {
      sent[i] = sim.Now();
      wifi.Send(MakePacket(i));
    });
  }
  sim.RunAll();
  std::size_t on_grid = 0;
  for (const double d : delays_ms) {
    const double nearest = std::round(d / 2.5) * 2.5;
    if (std::abs(d - nearest) < 0.1) ++on_grid;
  }
  EXPECT_LT(static_cast<double>(on_grid) / static_cast<double>(delays_ms.size()), 0.3);
}

// ---------- LeoSatLink ----------

TEST(LeoSatTest, PropagationWithinSwing) {
  sim::Simulator sim;
  LeoSatLink leo{sim, {}};
  const auto base = LeoSatLink::Config{}.base_propagation;
  const auto swing = LeoSatLink::Config{}.propagation_swing;
  for (int i = 0; i < 100; ++i) {
    const auto prop = leo.PropagationAt(kEpoch + sim::Duration{i * 377'000});
    EXPECT_GE(prop, base);
    EXPECT_LE(prop, base + swing);
  }
}

TEST(LeoSatTest, PropagationIsPeriodic) {
  sim::Simulator sim;
  LeoSatLink leo{sim, {}};
  const auto period = LeoSatLink::Config{}.pass_period;
  const auto t = kEpoch + 3'700ms;
  EXPECT_EQ(leo.PropagationAt(t), leo.PropagationAt(t + period));
}

TEST(LeoSatTest, HandoverWindowDetected) {
  sim::Simulator sim;
  LeoSatLink leo{sim, {}};
  EXPECT_TRUE(leo.InOutage(kEpoch + 50ms));    // inside the 180 ms window
  EXPECT_FALSE(leo.InOutage(kEpoch + 500ms));  // well past it
}

TEST(LeoSatTest, PacketsDuringOutageAreParkedNotLost) {
  sim::Simulator sim;
  LeoSatLink leo{sim, {}};
  sim::TimePoint delivered_at;
  leo.set_sink([&](const Packet&) { delivered_at = sim.Now(); });
  sim.ScheduleAfter(50ms, [&] { leo.Send(MakePacket(1)); });  // mid-outage
  sim.RunAll();
  // Released at 180 ms, plus propagation.
  EXPECT_GT(delivered_at, kEpoch + 180ms);
  EXPECT_EQ(leo.delivered(), 1u);
}

TEST(LeoSatTest, FifoAcrossOutages) {
  sim::Simulator sim;
  LeoSatLink leo{sim, {}};
  std::vector<PacketId> order;
  leo.set_sink([&](const Packet& p) { order.push_back(p.id); });
  for (PacketId i = 1; i <= 50; ++i) {
    sim.ScheduleAfter(sim::Duration{static_cast<std::int64_t>(i) * 9'000},
                      [&leo, i] { leo.Send(MakePacket(i)); });
  }
  sim.RunAll();
  ASSERT_EQ(order.size(), 50u);
  for (std::size_t i = 1; i < order.size(); ++i) EXPECT_LT(order[i - 1], order[i]);
}

// ---------- sessions over the alternative access networks ----------

TEST(AltAccessSessionTest, WifiSessionDelivers) {
  sim::Simulator sim;
  app::SessionConfig config;
  config.access = app::SessionConfig::Access::kWifiLike;
  config.wifi.channel_load = 0.4;
  app::Session session{sim, config};
  session.Run(10s);
  EXPECT_GT(session.qoe().video_frames_rendered(), 200u);
  EXPECT_EQ(session.ran_uplink(), nullptr);
}

TEST(AltAccessSessionTest, LeoSessionSurvivesHandovers) {
  sim::Simulator sim;
  app::SessionConfig config;
  config.access = app::SessionConfig::Access::kLeoSat;
  app::Session session{sim, config};
  session.Run(40s);  // spans two handovers
  EXPECT_GT(session.qoe().video_frames_rendered(), 800u);
  // Handovers park packets rather than dropping them: delivery stays
  // near-complete. The first handover anchors the playout clock with
  // ~180 ms of useless slack, which the jitter buffer's tightening
  // reclaims once a clean window passes.
  EXPECT_GT(session.qoe().VideoDeliveryRatio(), 0.95);
  EXPECT_GE(session.receiver().video_jitter_buffer().anchor_tightenings(), 1u);
}

TEST(AltAccessSessionTest, ArtifactProfilesDiffer) {
  // The §5.1 thesis: each technology imprints a *different* artifact on
  // the same call. Compare uplink delay CDF shapes.
  auto run = [](app::SessionConfig::Access access) {
    sim::Simulator sim;
    app::SessionConfig config;
    config.seed = 71;
    config.access = access;
    app::Session session{sim, config};
    session.Run(20s);
    const auto pairs = core::ClockSync::JoinCaptures(session.sender_capture().records(),
                                                     session.core_capture().records());
    stats::Cdf owd;
    for (const auto& p : pairs) owd.Add(sim::ToMs(p.b_ts - p.a_ts));
    return owd;
  };
  const auto fiveg = run(app::SessionConfig::Access::k5G);
  const auto wifi = run(app::SessionConfig::Access::kWifiLike);
  const auto leo = run(app::SessionConfig::Access::kLeoSat);
  // LEO: high floor (propagation); Wi-Fi: low floor, no grid; 5G: slotted.
  EXPECT_GT(leo.Min(), 20.0);
  EXPECT_LT(wifi.Min(), 5.0);
  EXPECT_GT(leo.Median(), wifi.Median());
  EXPECT_GT(leo.Median(), fiveg.Median());
}

}  // namespace
}  // namespace athena::net
