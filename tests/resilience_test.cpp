// Resilience-layer tests: checkpoint serialization + rejection of
// malformed snapshots, the restore-equals-uninterrupted determinism
// property across seeds × kill points, watchdog stall detection,
// bounded supervisor retries, the overload governor's priority tiers,
// the trace recorder's byte budget, and the overload detector.
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/live/detectors.hpp"
#include "obs/trace.hpp"
#include "obs/trace_names.hpp"
#include "resilience/checkpoint.hpp"
#include "resilience/overload.hpp"
#include "resilience/supervisor.hpp"
#include "sim/check.hpp"
#include "sim/runner.hpp"
#include "sim/simulator.hpp"

namespace athena {
namespace {

using namespace std::chrono_literals;
using resilience::BoundInput;
using resilience::Checkpoint;
using resilience::CheckpointError;
using resilience::CheckpointingDriver;
using resilience::MemoryBudget;
using resilience::ProcessFaultSpec;
using resilience::RunPlan;
using resilience::Supervisor;
using resilience::SupervisorOptions;
using sim::kEpoch;

RunPlan ShortPlan(std::uint64_t seed) {
  RunPlan plan;
  plan.config.seed = seed;
  plan.duration = 2s;
  plan.checkpoint_every = 250ms;
  return plan;
}

SupervisorOptions FastOptions() {
  SupervisorOptions options;
  options.watchdog = false;
  options.backoff_initial = std::chrono::milliseconds{0};
  return options;
}

// --- the determinism property the whole subsystem exists for ---

TEST(CheckpointRestoreTest, RestoredRunIsByteIdenticalAcrossSeedsAndKillPoints) {
  const std::uint64_t seeds[] = {11, 22, 33};
  const sim::Duration kill_points[] = {600ms, 1000ms, 1500ms};
  for (const std::uint64_t seed : seeds) {
    const RunPlan plan = ShortPlan(seed);
    CheckpointingDriver reference{plan};
    const resilience::RunOutcome uninterrupted = reference.Run();
    ASSERT_GT(uninterrupted.events_executed, 0u);
    ASSERT_GT(uninterrupted.packets_correlated, 0u);

    for (const sim::Duration kill : kill_points) {
      ProcessFaultSpec faults;
      faults.kill_at = kEpoch + kill;
      Supervisor supervisor{plan, FastOptions()};
      const resilience::SupervisedOutcome sup = supervisor.Run(faults);

      ASSERT_TRUE(sup.completed) << "seed " << seed << " kill " << kill.count()
                                 << "us: " << sup.last_error;
      EXPECT_EQ(sup.crashes, 1);
      EXPECT_EQ(sup.restarts, 1);
      EXPECT_TRUE(sup.outcome.restored);
      EXPECT_EQ(sup.outcome.final_digest, uninterrupted.final_digest)
          << "seed " << seed << " kill " << kill.count() << "us";
      EXPECT_EQ(sup.outcome.report_digest, uninterrupted.report_digest);
      EXPECT_EQ(sup.outcome.report, uninterrupted.report);
      EXPECT_EQ(sup.outcome.events_executed, uninterrupted.events_executed);
    }
  }
}

TEST(CheckpointRestoreTest, RestoredRunKeepsCheckpointingOnTheSameGrid) {
  // A run restored at 1s must take its later snapshots at the same
  // absolute boundaries an uninterrupted run does — the grid is anchored
  // at t=0, not at the restore point.
  const RunPlan plan = ShortPlan(7);
  std::vector<sim::TimePoint> uninterrupted_times;
  {
    RunPlan p = plan;
    p.on_checkpoint = [&](const Checkpoint& c) {
      uninterrupted_times.push_back(c.virtual_time);
    };
    (void)CheckpointingDriver{p}.Run();
  }
  ASSERT_GE(uninterrupted_times.size(), 4u);

  ProcessFaultSpec faults;
  faults.kill_at = kEpoch + 1100ms;
  std::vector<sim::TimePoint> supervised_times;
  RunPlan p = plan;
  p.on_checkpoint = [&](const Checkpoint& c) {
    supervised_times.push_back(c.virtual_time);
  };
  Supervisor supervisor{p, FastOptions()};
  ASSERT_TRUE(supervisor.Run(faults).completed);
  // Every boundary the supervised run checkpointed at (before and after
  // the crash) lies on the uninterrupted run's grid.
  for (const sim::TimePoint t : supervised_times) {
    EXPECT_NE(std::find(uninterrupted_times.begin(), uninterrupted_times.end(), t),
              uninterrupted_times.end())
        << "off-grid checkpoint at " << t.us() << "us";
  }
}

// --- serialization: round trip + malformed-input rejection ---

class CheckpointSerializationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RunPlan plan = ShortPlan(5);
    plan.on_checkpoint = [this](const Checkpoint& c) { latest_ = c; };
    (void)CheckpointingDriver{plan}.Run();
    ASSERT_GT(latest_.events_executed, 0u);
    ASSERT_FALSE(latest_.input.telemetry.empty());
    latest_.Serialize(bytes_);
    ASSERT_EQ(bytes_.size(), latest_.SerializedBytes());
  }

  Checkpoint latest_;
  std::vector<std::uint8_t> bytes_;
};

TEST_F(CheckpointSerializationTest, RoundTripsEveryField) {
  const Checkpoint back = Checkpoint::Deserialize(bytes_.data(), bytes_.size());
  EXPECT_EQ(back.config_fingerprint, latest_.config_fingerprint);
  EXPECT_EQ(back.seed, latest_.seed);
  EXPECT_EQ(back.planned_duration, latest_.planned_duration);
  EXPECT_EQ(back.virtual_time, latest_.virtual_time);
  EXPECT_EQ(back.events_executed, latest_.events_executed);
  EXPECT_EQ(back.state_digest, latest_.state_digest);
  EXPECT_EQ(back.input.telemetry.size(), latest_.input.telemetry.size());
  EXPECT_EQ(back.input.sender.size(), latest_.input.sender.size());
  EXPECT_EQ(back.input.core.size(), latest_.input.core.size());
  EXPECT_EQ(back.input.receiver.size(), latest_.input.receiver.size());
  EXPECT_EQ(back.input.sender_offset, latest_.input.sender_offset);
  EXPECT_EQ(back.input.receiver_offset, latest_.input.receiver_offset);

  resilience::StateDigest digest;
  digest.Mix(back.input);
  EXPECT_EQ(digest.value(), back.state_digest);
}

TEST_F(CheckpointSerializationTest, RoundTripsThroughAFile) {
  const std::string path = ::testing::TempDir() + "/athena_ckpt_test.bin";
  latest_.WriteFile(path);
  const Checkpoint back = Checkpoint::LoadFile(path);
  EXPECT_EQ(back.state_digest, latest_.state_digest);
  EXPECT_EQ(back.virtual_time, latest_.virtual_time);
}

TEST_F(CheckpointSerializationTest, RejectsTruncation) {
  // Any prefix must be rejected, from the empty file to one missing only
  // the final checksum byte.
  for (const std::size_t size :
       {std::size_t{0}, std::size_t{4}, bytes_.size() / 2, bytes_.size() - 1}) {
    EXPECT_THROW((void)Checkpoint::Deserialize(bytes_.data(), size), CheckpointError)
        << "accepted a " << size << "-byte prefix";
  }
}

TEST_F(CheckpointSerializationTest, RejectsBitFlipsAnywhere) {
  // Magic, header fields, record payload, trailing checksum — a flip in
  // any region must be caught before a single field is trusted.
  for (const std::size_t at : {std::size_t{0}, std::size_t{9}, bytes_.size() / 2,
                               bytes_.size() - 1}) {
    std::vector<std::uint8_t> corrupt = bytes_;
    corrupt[at] ^= 0x40;
    EXPECT_THROW((void)Checkpoint::Deserialize(corrupt.data(), corrupt.size()),
                 CheckpointError)
        << "accepted a bit flip at offset " << at;
  }
}

TEST_F(CheckpointSerializationTest, RejectsTrailingGarbage) {
  std::vector<std::uint8_t> padded = bytes_;
  padded.push_back(0);
  EXPECT_THROW((void)Checkpoint::Deserialize(padded.data(), padded.size()),
               CheckpointError);
}

TEST_F(CheckpointSerializationTest, RefusesToResumeUnderADifferentPlan) {
  // Same bytes, different seed: the replay would silently diverge, so
  // Resume must refuse up front.
  CheckpointingDriver other{ShortPlan(6)};
  EXPECT_THROW((void)other.Resume(latest_), CheckpointError);

  RunPlan longer = ShortPlan(5);
  longer.duration = 3s;
  CheckpointingDriver wrong_duration{longer};
  EXPECT_THROW((void)wrong_duration.Resume(latest_), CheckpointError);
}

// --- supervision: stalls, retry budgets, contained check violations ---

TEST(SupervisorTest, WatchdogCancelsALivelockedRun) {
  // An event that reschedules itself at its own timestamp freezes
  // virtual time while the event counter spins — the exact signature the
  // watchdog watches for. The bomb is re-planted on every attempt, so
  // the supervisor must eventually give up, honestly.
  RunPlan plan = ShortPlan(3);
  plan.on_simulator = [](sim::Simulator& sim) {
    struct Bomb {
      static void Plant(sim::Simulator& s, sim::TimePoint at) {
        s.ScheduleAt(at, [&s, at] { Plant(s, at); });
      }
    };
    Bomb::Plant(sim, kEpoch + 100ms);
  };
  SupervisorOptions options;
  options.watchdog = true;
  options.stall_timeout = std::chrono::milliseconds{50};
  options.max_restarts = 1;
  options.backoff_initial = std::chrono::milliseconds{0};
  Supervisor supervisor{plan, options};
  const resilience::SupervisedOutcome sup = supervisor.Run();
  EXPECT_FALSE(sup.completed);
  EXPECT_TRUE(sup.gave_up);
  EXPECT_EQ(sup.stalls, 2);  // initial attempt + one restart, both stalled
  EXPECT_EQ(sup.crashes, 0);
}

TEST(SupervisorTest, RetryBudgetBoundsACrashLoop) {
  // A kill every N events fires again after every restore: with a large
  // kill budget the run can never finish, and the supervisor must stop
  // at max_restarts instead of looping forever.
  ProcessFaultSpec faults;
  faults.kill_every_events = 400;
  faults.max_kills = 100;
  SupervisorOptions options = FastOptions();
  options.max_restarts = 2;
  Supervisor supervisor{ShortPlan(4), options};
  const resilience::SupervisedOutcome sup = supervisor.Run(faults);
  EXPECT_FALSE(sup.completed);
  EXPECT_TRUE(sup.gave_up);
  EXPECT_EQ(sup.crashes, 3);  // initial attempt + two restarts
  EXPECT_EQ(sup.restarts, 2);
}

TEST(SupervisorTest, ExhaustedKillBudgetLetsTheRunComplete) {
  // max_kills = 2 with a per-event kill cadence: two attempts die, the
  // third sails through and must still match the uninterrupted digest.
  const RunPlan plan = ShortPlan(9);
  const resilience::RunOutcome uninterrupted = CheckpointingDriver{plan}.Run();

  ProcessFaultSpec faults;
  faults.kill_every_events = 700;
  faults.max_kills = 2;
  Supervisor supervisor{plan, FastOptions()};
  const resilience::SupervisedOutcome sup = supervisor.Run(faults);
  ASSERT_TRUE(sup.completed) << sup.last_error;
  EXPECT_EQ(sup.crashes, 2);
  EXPECT_EQ(sup.outcome.final_digest, uninterrupted.final_digest);
}

TEST(ParallelRunnerTest, PoisonedRunIsAFailedRunNotAProcessKill) {
  // An ATHENA_CHECK violation inside one sweep worker must surface as
  // that run's exception after the join — the sibling runs complete and
  // the process survives.
  const sim::ParallelRunner runner{4};
  std::atomic<int> completed{0};
  EXPECT_THROW(runner.ForEach(8,
                              [&](std::size_t i) {
                                ATHENA_CHECK(i != 5, "poisoned run");
                                completed.fetch_add(1);
                              }),
               sim::CheckViolation);
  EXPECT_EQ(completed.load(), 7);
}

// --- overload governor ---

core::CorrelatorInput MakeOverloadInput() {
  core::CorrelatorInput input;
  for (std::size_t i = 0; i < 150; ++i) {
    ran::TbRecord tb;
    tb.tb_id = i + 1;
    tb.slot_time = kEpoch + i * 2500us;
    tb.tbs_bytes = 1500;
    tb.used_bytes = i < 100 ? 1200 : 0;  // last 50 are padding-only
    input.telemetry.push_back(tb);
  }
  for (std::size_t i = 0; i < 150; ++i) {
    net::CaptureRecord r;
    r.packet_id = i + 1;
    r.local_ts = kEpoch + i * 1ms;
    r.size_bytes = 1200;
    if (i >= 100) {  // last 50 are ICMP probes
      r.icmp = net::IcmpMeta{.probe_seq = static_cast<std::uint32_t>(i),
                             .echo_sent_at = r.local_ts};
    } else {
      r.rtp = net::RtpMeta{.seq = static_cast<std::uint16_t>(i)};
    }
    input.core.push_back(r);
  }
  return input;
}

TEST(OverloadGovernorTest, UnboundedBudgetShedsNothing) {
  core::CorrelatorInput input = MakeOverloadInput();
  const std::size_t before = resilience::InputBytes(input);
  const resilience::ShedStats stats = BoundInput(input, MemoryBudget{});
  EXPECT_EQ(stats.total(), 0u);
  EXPECT_EQ(resilience::InputBytes(input), before);
}

TEST(OverloadGovernorTest, ShedsIcmpBeforeTouchingData) {
  core::CorrelatorInput input = MakeOverloadInput();
  const std::size_t icmp_bytes = 50 * sizeof(net::CaptureRecord);
  MemoryBudget budget;
  budget.input_bytes = resilience::InputBytes(input) - icmp_bytes / 2;
  const resilience::ShedStats stats = BoundInput(input, budget);
  EXPECT_EQ(stats.icmp_shed, 50u);
  EXPECT_EQ(stats.padding_tb_shed, 0u);
  EXPECT_EQ(stats.capped(), 0u);
  EXPECT_LE(resilience::InputBytes(input), budget.input_bytes);
  EXPECT_EQ(input.core.size(), 100u);  // every data record survived
  EXPECT_EQ(input.telemetry.size(), 150u);
}

TEST(OverloadGovernorTest, HardCapEngagesLastAndFitsTheBudget) {
  core::CorrelatorInput input = MakeOverloadInput();
  MemoryBudget budget;
  budget.input_bytes = 12'000;  // below what tiers 2-3 can free
  const resilience::ShedStats stats = BoundInput(input, budget);
  EXPECT_EQ(stats.icmp_shed, 50u);
  EXPECT_EQ(stats.padding_tb_shed, 50u);
  EXPECT_GT(stats.capped(), 0u);
  EXPECT_LE(resilience::InputBytes(input), budget.input_bytes);
  // The cap drops the newest records: the surviving history is a
  // contiguous prefix from t=0.
  ASSERT_FALSE(input.telemetry.empty());
  EXPECT_EQ(input.telemetry.front().slot_time, kEpoch);
}

TEST(TraceRecorderBudgetTest, LowPriorityEventsAreShedAtTheBudget) {
  obs::TraceRecorder recorder;
  recorder.set_byte_budget(2 * 256 * sizeof(obs::TraceEvent));  // two chunks
  ASSERT_EQ(recorder.byte_budget(), 2 * 256 * sizeof(obs::TraceEvent));

  obs::TraceEvent low;
  low.phase = obs::TraceEvent::Phase::kCounter;
  low.name = obs::names::kSimQueueDepth.id;
  for (int i = 0; i < 600; ++i) recorder.Emit(low);

  EXPECT_EQ(recorder.size(), 512u);  // saturated at the budget
  EXPECT_EQ(recorder.shed_low_priority(), 600u - 512u);
  EXPECT_EQ(recorder.chunks_evicted(), 0u);
  EXPECT_LE(recorder.buffered_bytes(), recorder.byte_budget());

  // Critical events still land: the oldest chunk is evicted to make room.
  obs::TraceEvent critical;
  critical.phase = obs::TraceEvent::Phase::kInstant;
  critical.name = obs::names::kTbTx.id;
  recorder.Emit(critical);
  EXPECT_EQ(recorder.chunks_evicted(), 1u);
  EXPECT_LE(recorder.buffered_bytes(), recorder.byte_budget());
}

TEST(TraceRecorderBudgetTest, ZeroBudgetMeansUnbounded) {
  obs::TraceRecorder recorder;
  obs::TraceEvent low;
  low.name = obs::names::kSimQueueDepth.id;
  for (int i = 0; i < 2000; ++i) recorder.Emit(low);
  EXPECT_EQ(recorder.size(), 2000u);
  EXPECT_EQ(recorder.shed_low_priority(), 0u);
}

TEST(OverloadDetectorTest, FiresOnShedGrowthAndStaysQuietOtherwise) {
  obs::live::DetectorBank bank;
  EXPECT_EQ(bank.anomaly_count(obs::live::AnomalyKind::kOverload), 0u);

  bank.OnShed({.t = kEpoch + 100ms, .shed_total = 40.0, .shed_capped = 0.0});
  EXPECT_EQ(bank.anomaly_count(obs::live::AnomalyKind::kOverload), 1u);

  // No growth → no new anomaly, even past the emission cooldown.
  bank.OnShed({.t = kEpoch + 700ms, .shed_total = 40.0, .shed_capped = 0.0});
  EXPECT_EQ(bank.anomaly_count(obs::live::AnomalyKind::kOverload), 1u);

  // Growth, now with hard-capped data records → fires again.
  bank.OnShed({.t = kEpoch + 1400ms, .shed_total = 90.0, .shed_capped = 10.0});
  EXPECT_EQ(bank.anomaly_count(obs::live::AnomalyKind::kOverload), 2u);
}

}  // namespace
}  // namespace athena
