// Tests for the bidirectional two-party session: the mobile party's media
// climbs the 5G uplink while the wired party's media descends the full
// downlink model — the complete Fig. 2 picture plus the reverse direction.
#include <chrono>

#include <gtest/gtest.h>

#include "app/two_party.hpp"
#include "core/analyzer.hpp"
#include "sim/simulator.hpp"

namespace athena::app {
namespace {

using namespace std::chrono_literals;
using sim::kEpoch;

// ---------- RanDownlink in isolation ----------

class RanDownlinkTest : public ::testing::Test {
 protected:
  void Build(ran::RanConfig cell, ran::ChannelModel::Config channel = {.base_bler = 0.0}) {
    cell_ = cell;
    downlink_ = std::make_unique<ran::RanDownlink>(
        sim_, cell, ran::ChannelModel{channel, sim::Rng{5}},
        ran::CrossTraffic::Idle(sim::Rng{6}));
    downlink_->set_ue_sink([this](const net::Packet& p) {
      deliveries_.emplace_back(p.id, sim_.Now());
    });
    downlink_->Start();
  }

  void SendAt(sim::Duration when, net::PacketId id, std::uint32_t bytes) {
    sim_.ScheduleAt(kEpoch + when, [this, id, bytes] {
      net::Packet p;
      p.id = id;
      p.size_bytes = bytes;
      p.created_at = sim_.Now();
      downlink_->SendFromCore(p);
    });
  }

  sim::Simulator sim_;
  ran::RanConfig cell_;
  std::unique_ptr<ran::RanDownlink> downlink_;
  std::vector<std::pair<net::PacketId, sim::TimePoint>> deliveries_;
};

TEST_F(RanDownlinkTest, SlotGridIsFourTimesDenser) {
  Build(ran::RanConfig::PaperCell());
  EXPECT_EQ(downlink_->slot_period(), 625us);
}

TEST_F(RanDownlinkTest, SinglePacketRidesNextSlot) {
  Build(ran::RanConfig::PaperCell());
  SendAt(1ms, 1, 1200);
  sim_.RunUntil(kEpoch + 50ms);
  ASSERT_EQ(deliveries_.size(), 1u);
  // Next DL slot after 1 ms is 1.25 ms; plus the UE pipeline delay.
  EXPECT_EQ(deliveries_[0].second, kEpoch + 1250us + cell_.gnb_to_core_delay);
}

TEST_F(RanDownlinkTest, NoGrantCycleMeansWholeBurstInOneSlot) {
  // The §3.1 pathology cannot happen downlink: the gNB grants itself the
  // whole backlog immediately. A 6 kB burst fits one DL slot at 25 Mbps?
  // Slot budget = 25e6 × 0.625 ms / 8 ≈ 1953 B → the burst takes a few
  // *dense* slots, still finishing far faster than an uplink BSR cycle.
  Build(ran::RanConfig::PaperCell());
  for (int i = 0; i < 5; ++i) SendAt(1ms, static_cast<net::PacketId>(i + 1), 1200);
  sim_.RunUntil(kEpoch + 100ms);
  ASSERT_EQ(deliveries_.size(), 5u);
  const auto last = deliveries_.back().second - cell_.gnb_to_core_delay;
  EXPECT_LE(last, kEpoch + 4ms);  // vs ~12.5 ms on the uplink
}

TEST_F(RanDownlinkTest, HarqAddsRtxDelay) {
  Build(ran::RanConfig::PaperCell(), {.base_bler = 1.0, .rtx_bler_factor = 0.0});
  SendAt(1ms, 1, 1000);
  sim_.RunUntil(kEpoch + 100ms);
  ASSERT_EQ(deliveries_.size(), 1u);
  // First tx at 1.25 ms fails; rtx 10 ms later (grid-aligned) succeeds.
  EXPECT_GE(deliveries_[0].second, kEpoch + 11ms);
  EXPECT_GT(downlink_->counters().tb_rtx, 0u);
}

TEST_F(RanDownlinkTest, ChainDropLosesPacket) {
  Build(ran::RanConfig::PaperCell(), {.base_bler = 1.0, .rtx_bler_factor = 1.0});
  SendAt(1ms, 1, 1000);
  sim_.RunUntil(kEpoch + 500ms);
  EXPECT_TRUE(deliveries_.empty());
  EXPECT_EQ(downlink_->counters().packets_lost, 1u);
}

TEST_F(RanDownlinkTest, TelemetryByteConservation) {
  Build(ran::RanConfig::PaperCell());
  for (int i = 0; i < 20; ++i) {
    SendAt(sim::Duration{i * 5'000}, static_cast<net::PacketId>(i + 1), 900);
  }
  sim_.RunUntil(kEpoch + 1s);
  std::uint64_t used = 0;
  for (const auto& tb : downlink_->telemetry()) {
    if (tb.harq_round == 0) used += tb.used_bytes;
  }
  EXPECT_EQ(used, 20u * 900u);
  EXPECT_EQ(downlink_->queue_bytes(), 0u);
}

// ---------- the full two-party call ----------

class TwoPartyTest : public ::testing::Test {
 protected:
  void Run(TwoPartyConfig config, sim::Duration span = 20s) {
    session_ = std::make_unique<TwoPartySession>(sim_, std::move(config));
    session_->Run(span);
  }

  sim::Simulator sim_;
  std::unique_ptr<TwoPartySession> session_;
};

TEST_F(TwoPartyTest, BothDirectionsDeliverVideo) {
  TwoPartyConfig config;
  config.channel.base_bler = 0.08;
  Run(config);
  EXPECT_GT(session_->qoe_at_b().video_frames_rendered(), 400u);  // A → B
  EXPECT_GT(session_->qoe_at_a().video_frames_rendered(), 400u);  // B → A
  EXPECT_GT(session_->sender_a().feedback_received(), 100u);
  EXPECT_GT(session_->sender_b().feedback_received(), 100u);
}

TEST_F(TwoPartyTest, UplinkJittersDownlinkDoesNot) {
  // The paper's takeaway (c), demonstrated with full machinery on both
  // paths: same cell, same radio, same HARQ — the *grant cycle* is what
  // makes the uplink jittery.
  TwoPartyConfig config;
  config.channel = ran::ChannelModel::FadingRadio();
  Run(config, 30s);

  const auto up = core::Correlator::Correlate(session_->BuildUplinkCorrelatorInput());
  const auto down = core::Correlator::Correlate(session_->BuildDownlinkCorrelatorInput());
  stats::Cdf up_owd{core::Analyzer::UplinkOwdSeries(up).Values()};
  stats::Cdf down_owd{core::Analyzer::UplinkOwdSeries(down).Values()};
  ASSERT_GT(up_owd.size(), 1000u);
  ASSERT_GT(down_owd.size(), 1000u);

  EXPECT_LT(down_owd.Median(), up_owd.Median());
  const double up_jitter = up_owd.P(95) - up_owd.P(5);
  const double down_jitter = down_owd.P(95) - down_owd.P(5);
  EXPECT_LT(down_jitter, up_jitter);
}

TEST_F(TwoPartyTest, DownlinkCorrelatorConservesBytes) {
  TwoPartyConfig config;
  config.channel.base_bler = 0.1;
  Run(config);
  const auto down = core::Correlator::Correlate(session_->BuildDownlinkCorrelatorInput());
  EXPECT_EQ(down.unmatched_tb_bytes, 0u);
  EXPECT_LT(down.unmatched_packet_bytes, 20'000u);  // shutdown in-flight only
}

TEST_F(TwoPartyTest, UplinkCorrelatorSeesFeedbackSharingTheQueue) {
  // A's RTCP about B's media is uplink traffic: the correlator must see
  // non-media packets in the uplink dataset.
  TwoPartyConfig config;
  Run(config, 10s);
  const auto up = core::Correlator::Correlate(session_->BuildUplinkCorrelatorInput());
  std::size_t rtcp = 0;
  for (const auto& p : up.packets) {
    if (p.kind == net::PacketKind::kRtcpFeedback) ++rtcp;
  }
  EXPECT_GT(rtcp, 50u);
  EXPECT_EQ(up.unmatched_tb_bytes, 0u);  // byte conservation incl. RTCP
}

TEST_F(TwoPartyTest, DownlinkHasNoGrantWaste) {
  TwoPartyConfig config;
  Run(config, 10s);
  // The gNB self-schedules: granted == used, no padding, no over-grant.
  EXPECT_DOUBLE_EQ(session_->downlink().counters().GrantUtilization(), 1.0);
  EXPECT_LT(session_->uplink().counters().GrantUtilization(), 0.5);
}

}  // namespace
}  // namespace athena::app
