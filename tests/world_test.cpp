// World engine invariants: digest identity across shard layouts and
// execution modes, run-to-run reproducibility, handover conservation,
// contention backpressure, and outage degradation.
#include <chrono>
#include <string>

#include <gtest/gtest.h>

#include "fault/world_chaos.hpp"
#include "sim/check.hpp"
#include "world/engine.hpp"

namespace athena::world {
namespace {

using namespace std::chrono_literals;

WorldConfig SmallWorld() {
  WorldConfig config;
  config.seed = 1234;
  config.ues = 16;
  config.cells = 8;
  config.duration = sim::Duration{400ms};
  config.handover_every = 4;  // UEs 0, 4, 8, 12 migrate mid-run
  return config;
}

WorldResult RunWorld(WorldConfig config, std::size_t shards, bool threaded) {
  config.shards = shards;
  config.threaded = threaded;
  WorldEngine engine(std::move(config));
  return engine.Run();
}

TEST(WorldEngineTest, DigestIdenticalAcrossShardCounts) {
  const WorldResult one = RunWorld(SmallWorld(), 1, /*threaded=*/false);
  const WorldResult two = RunWorld(SmallWorld(), 2, /*threaded=*/true);
  const WorldResult eight = RunWorld(SmallWorld(), 8, /*threaded=*/true);

  ASSERT_TRUE(one.conservation_ok) << one.conservation_error;
  ASSERT_TRUE(two.conservation_ok) << two.conservation_error;
  ASSERT_TRUE(eight.conservation_ok) << eight.conservation_error;

  EXPECT_EQ(one.digest, two.digest);
  EXPECT_EQ(one.digest, eight.digest);
  // The population report must also be byte-identical — not just the
  // simulation state but everything derived from it.
  EXPECT_EQ(one.fleet_json, two.fleet_json);
  EXPECT_EQ(one.fleet_json, eight.fleet_json);
  EXPECT_EQ(eight.shards, 8u);
  EXPECT_TRUE(eight.threaded);
}

TEST(WorldEngineTest, SameSeedRunsAreByteIdentical) {
  const WorldResult a = RunWorld(SmallWorld(), 4, /*threaded=*/true);
  const WorldResult b = RunWorld(SmallWorld(), 4, /*threaded=*/true);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.fleet_json, b.fleet_json);
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.handovers, b.handovers);
}

TEST(WorldEngineTest, ThreadedMatchesSequential) {
  const WorldResult threaded = RunWorld(SmallWorld(), 4, /*threaded=*/true);
  const WorldResult sequential = RunWorld(SmallWorld(), 4, /*threaded=*/false);
  EXPECT_EQ(threaded.digest, sequential.digest);
  EXPECT_EQ(threaded.fleet_json, sequential.fleet_json);
  EXPECT_FALSE(sequential.threaded);
}

TEST(WorldEngineTest, SeedChangesTheWorld) {
  WorldConfig other = SmallWorld();
  other.seed = 99;
  const WorldResult a = RunWorld(SmallWorld(), 2, /*threaded=*/true);
  const WorldResult b = RunWorld(other, 2, /*threaded=*/true);
  EXPECT_NE(a.digest, b.digest);
}

TEST(WorldEngineTest, HandoverConservesEveryUe) {
  WorldConfig config = SmallWorld();
  config.handover_every = 2;  // half the population migrates
  const WorldResult result = RunWorld(config, 4, /*threaded=*/true);

  ASSERT_TRUE(result.conservation_ok) << result.conservation_error;
  EXPECT_EQ(result.handovers, 8u);  // UEs 0, 2, ..., 14
  // Population-wide packet conservation: nothing created, nothing
  // silently destroyed.
  EXPECT_EQ(result.offered, result.delivered + result.lost + result.in_flight);
}

TEST(WorldEngineTest, ContentionCreatesBackpressure) {
  WorldConfig tight = SmallWorld();
  tight.ues = 8;
  tight.cells = 1;
  tight.handover_every = 0;
  tight.cell.cell_ul_capacity_bps = 1e6;  // 8 UEs into a 1 Mbps cell
  WorldConfig roomy = tight;
  roomy.cell.cell_ul_capacity_bps = 100e6;

  const WorldResult starved = RunWorld(tight, 1, /*threaded=*/false);
  const WorldResult fed = RunWorld(roomy, 1, /*threaded=*/false);

  ASSERT_TRUE(starved.conservation_ok) << starved.conservation_error;
  ASSERT_GT(starved.offered, 0u);
  ASSERT_GT(fed.offered, 0u);
  const double starved_ratio =
      static_cast<double>(starved.delivered) / static_cast<double>(starved.offered);
  const double fed_ratio =
      static_cast<double>(fed.delivered) / static_cast<double>(fed.offered);
  EXPECT_LT(starved_ratio, fed_ratio);
}

TEST(WorldEngineTest, CellOutageDegradesItsPopulation) {
  WorldConfig config = SmallWorld();
  config.handover_every = 0;
  config.outage_cell = 0;
  // Black the cell out until the end of the run: a window that closes
  // early lets the 100 Mbps cell drain the whole backlog and the
  // end-state totals converge again.
  config.outage_start = sim::TimePoint{sim::Duration{100ms}};
  config.outage_end = sim::TimePoint{config.duration};
  WorldConfig clean_config = config;
  clean_config.outage_cell = WorldConfig::kNoOutage;

  const WorldResult faulted = RunWorld(config, 4, /*threaded=*/true);
  const WorldResult clean = RunWorld(clean_config, 4, /*threaded=*/true);

  ASSERT_TRUE(faulted.conservation_ok) << faulted.conservation_error;
  EXPECT_LT(faulted.delivered, clean.delivered);
  // Per-cell population groups surface the blast radius.
  EXPECT_EQ(faulted.report.scenarios.count("world/cell0"), 1u);
  EXPECT_EQ(faulted.report.scenarios.count("world/cell1"), 1u);
}

TEST(WorldEngineTest, FleetReportCoversThePopulation) {
  const WorldResult result = RunWorld(SmallWorld(), 2, /*threaded=*/true);
  EXPECT_EQ(result.report.sessions, 16u);
  EXPECT_FALSE(result.fleet_json.empty());
  EXPECT_GT(result.events_executed, 0u);
  EXPECT_GT(result.messages_delivered, 0u);
  EXPECT_GT(result.busy_seconds, 0.0);
  EXPECT_GT(result.critical_path_seconds, 0.0);
  EXPECT_LE(result.critical_path_seconds, result.busy_seconds + 1e-9);
}

TEST(WorldValidationTest, RejectsUnbuildableWorlds) {
  sim::ScopedCheckThrow guard;
  const auto build = [](auto mutate) {
    WorldConfig config = SmallWorld();
    mutate(config);
    WorldEngine engine{std::move(config)};
  };
  EXPECT_THROW(build([](WorldConfig& c) { c.ues = 0; }), sim::CheckViolation);
  EXPECT_THROW(build([](WorldConfig& c) { c.cells = 0; }), sim::CheckViolation);
  EXPECT_THROW(build([](WorldConfig& c) { c.shards = 0; }), sim::CheckViolation);
  // More shards than cells leaves shards with no entities to run.
  EXPECT_THROW(build([](WorldConfig& c) { c.shards = c.cells + 1; }),
               sim::CheckViolation);
  EXPECT_THROW(build([](WorldConfig& c) { c.duration = sim::Duration{0}; }),
               sim::CheckViolation);
  EXPECT_THROW(build([](WorldConfig& c) { c.link_latency = sim::Duration{0}; }),
               sim::CheckViolation);
  // Lookahead longer than the run: not even one window fits.
  EXPECT_THROW(build([](WorldConfig& c) { c.link_latency = c.duration * 2; }),
               sim::CheckViolation);
  EXPECT_THROW(build([](WorldConfig& c) { c.handover_latency = sim::Duration{-1}; }),
               sim::CheckViolation);
  // A crash point needs a 1-based window.
  EXPECT_THROW(build([](WorldConfig& c) { c.crash_shard = 0; c.crash_window = 0; }),
               sim::CheckViolation);
  EXPECT_THROW(build([](WorldConfig& c) {
                 c.quarantines.push_back({c.cells, sim::kEpoch});
               }),
               sim::CheckViolation);
}

TEST(WorldValidationTest, RunIsSingleShot) {
  sim::ScopedCheckThrow guard;
  WorldConfig config = SmallWorld();
  config.duration = sim::Duration{50ms};
  WorldEngine engine{std::move(config)};
  (void)engine.Run();
  EXPECT_THROW((void)engine.Run(), sim::CheckViolation);
}

TEST(WorldChaosTest, CellOutageContractHolds) {
  fault::WorldChaosConfig config;
  config.ues = 24;
  config.cells = 4;
  config.shards = 2;
  config.duration = sim::Duration{400ms};
  const fault::WorldChaosOutcome outcome = fault::RunWorldChaos(config);
  EXPECT_TRUE(outcome.invariants_ok)
      << (outcome.violations.empty() ? "" : outcome.violations.front());
  EXPECT_TRUE(outcome.clean.conservation_ok);
  EXPECT_TRUE(outcome.faulted.conservation_ok);
  EXPECT_LT(outcome.faulted.delivered, outcome.clean.delivered);
}

}  // namespace
}  // namespace athena::world
