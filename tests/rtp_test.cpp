#include <chrono>

#include <gtest/gtest.h>

#include "rtp/packetizer.hpp"
#include "rtp/twcc.hpp"
#include "sim/simulator.hpp"

namespace athena::rtp {
namespace {

using namespace std::chrono_literals;
using sim::kEpoch;

class PacketizerTest : public ::testing::Test {
 protected:
  net::PacketIdGenerator ids_;
  TransportSequencer seq_;
  Packetizer packetizer_{Packetizer::Config{.ssrc = 0x10, .flow = 1}, ids_, seq_};
};

TEST_F(PacketizerTest, SmallUnitIsOnePacket) {
  const auto packets = packetizer_.Packetize(
      MediaUnit{.frame_id = 1, .payload_bytes = 500, .is_audio = true}, kEpoch);
  ASSERT_EQ(packets.size(), 1u);
  EXPECT_TRUE(packets[0].rtp->marker);
  EXPECT_EQ(packets[0].kind, net::PacketKind::kRtpAudio);
  EXPECT_EQ(packets[0].size_bytes, 500 + net::kRtpHeaderOverheadBytes);
}

TEST_F(PacketizerTest, LargeFrameSplitsAtMtu) {
  const std::uint32_t payload = net::kRtpPayloadMtuBytes * 3 + 100;
  const auto packets = packetizer_.Packetize(
      MediaUnit{.frame_id = 3, .payload_bytes = payload,
                .layer = net::SvcLayer::kBase},
      kEpoch);
  ASSERT_EQ(packets.size(), 4u);
  // Byte conservation: payload splits exactly.
  std::uint32_t total = 0;
  for (const auto& p : packets) total += p.size_bytes - net::kRtpHeaderOverheadBytes;
  EXPECT_EQ(total, payload);
}

TEST_F(PacketizerTest, OnlyLastPacketHasMarker) {
  const auto packets = packetizer_.Packetize(
      MediaUnit{.frame_id = 1, .payload_bytes = net::kRtpPayloadMtuBytes * 2}, kEpoch);
  ASSERT_EQ(packets.size(), 2u);
  EXPECT_FALSE(packets[0].rtp->marker);
  EXPECT_TRUE(packets[1].rtp->marker);
}

TEST_F(PacketizerTest, PacketIndexAndCountAreStamped) {
  const auto packets = packetizer_.Packetize(
      MediaUnit{.frame_id = 9, .payload_bytes = net::kRtpPayloadMtuBytes * 3}, kEpoch);
  ASSERT_EQ(packets.size(), 3u);
  for (std::uint32_t i = 0; i < packets.size(); ++i) {
    EXPECT_EQ(packets[i].rtp->packets_in_frame, 3u);
    EXPECT_EQ(packets[i].rtp->packet_index_in_frame, i);
    EXPECT_EQ(packets[i].rtp->frame_id, 9u);
  }
}

TEST_F(PacketizerTest, RtpSequenceIsContiguous) {
  const auto a = packetizer_.Packetize(MediaUnit{.frame_id = 1, .payload_bytes = 3000}, kEpoch);
  const auto b = packetizer_.Packetize(MediaUnit{.frame_id = 2, .payload_bytes = 3000}, kEpoch);
  EXPECT_EQ(b.front().rtp->seq, a.back().rtp->seq + 1);
}

TEST_F(PacketizerTest, SvcLayerIsCarried) {
  const auto packets = packetizer_.Packetize(
      MediaUnit{.frame_id = 1, .payload_bytes = 100,
                .layer = net::SvcLayer::kHighFpsEnhancement},
      kEpoch);
  EXPECT_EQ(packets[0].rtp->layer, net::SvcLayer::kHighFpsEnhancement);
}

TEST(TransportSequencerTest, SharedAcrossPacketizers) {
  net::PacketIdGenerator ids;
  TransportSequencer seq;
  Packetizer video{Packetizer::Config{.ssrc = 1, .flow = 1}, ids, seq};
  Packetizer audio{Packetizer::Config{.ssrc = 2, .flow = 1}, ids, seq};
  const auto v = video.Packetize(MediaUnit{.frame_id = 1, .payload_bytes = 100}, kEpoch);
  const auto a = audio.Packetize(
      MediaUnit{.frame_id = 2, .payload_bytes = 100, .is_audio = true}, kEpoch);
  EXPECT_EQ(a[0].rtp->transport_seq, v[0].rtp->transport_seq + 1);
}

TEST(TransportSequencerTest, WrapsAt16Bits) {
  TransportSequencer seq;
  for (int i = 0; i < 65535; ++i) (void)seq.Next();
  EXPECT_EQ(seq.Next(), 65535);
  EXPECT_EQ(seq.Next(), 0);  // wraps
}

// ---------- TWCC ----------

class TwccTest : public ::testing::Test {
 protected:
  net::Packet MediaPacket(std::uint16_t tseq, std::uint32_t size = 1200) {
    net::Packet p;
    p.id = next_id_++;
    p.kind = net::PacketKind::kRtpVideo;
    p.size_bytes = size;
    p.rtp = net::RtpMeta{.transport_seq = tseq};
    return p;
  }

  sim::Simulator sim_;
  net::PacketIdGenerator ids_;
  net::PacketId next_id_ = 1;
};

TEST_F(TwccTest, FeedbackCarriesArrivals) {
  TwccReceiver receiver{sim_, {.feedback_interval = 50ms}, ids_};
  std::vector<net::Packet> feedback;
  receiver.set_feedback_path([&](const net::Packet& p) { feedback.push_back(p); });
  receiver.Start();
  sim_.ScheduleAfter(10ms, [&] { receiver.OnMediaPacket(MediaPacket(0)); });
  sim_.ScheduleAfter(20ms, [&] { receiver.OnMediaPacket(MediaPacket(1)); });
  sim_.RunUntil(kEpoch + 60ms);
  receiver.Stop();
  ASSERT_EQ(feedback.size(), 1u);
  ASSERT_TRUE(feedback[0].feedback.has_value());
  ASSERT_EQ(feedback[0].feedback->arrivals.size(), 2u);
  EXPECT_EQ(feedback[0].feedback->arrivals[0].transport_seq, 0);
  EXPECT_EQ(feedback[0].feedback->arrivals[0].recv_ts, kEpoch + 10ms);
}

TEST_F(TwccTest, NoFeedbackWithoutArrivals) {
  TwccReceiver receiver{sim_, {.feedback_interval = 50ms}, ids_};
  int count = 0;
  receiver.set_feedback_path([&](const net::Packet&) { ++count; });
  receiver.Start();
  sim_.RunUntil(kEpoch + 500ms);
  receiver.Stop();
  EXPECT_EQ(count, 0);
}

TEST_F(TwccTest, FeedbackSeqIncrements) {
  TwccReceiver receiver{sim_, {.feedback_interval = 50ms}, ids_};
  std::vector<std::uint32_t> seqs;
  receiver.set_feedback_path(
      [&](const net::Packet& p) { seqs.push_back(p.feedback->feedback_seq); });
  receiver.Start();
  sim_.ScheduleAfter(10ms, [&] { receiver.OnMediaPacket(MediaPacket(0)); });
  sim_.ScheduleAfter(60ms, [&] { receiver.OnMediaPacket(MediaPacket(1)); });
  sim_.RunUntil(kEpoch + 150ms);
  receiver.Stop();
  EXPECT_EQ(seqs, (std::vector<std::uint32_t>{0, 1}));
}

TEST_F(TwccTest, SenderResolvesReports) {
  TwccSender sender;
  const auto p0 = MediaPacket(10, 900);
  const auto p1 = MediaPacket(11, 1100);
  sender.OnPacketSent(p0, kEpoch + 1ms);
  sender.OnPacketSent(p1, kEpoch + 2ms);

  net::Packet fb;
  fb.kind = net::PacketKind::kRtcpFeedback;
  fb.feedback = net::FeedbackMeta{
      0, {{10, kEpoch + 21ms}, {11, kEpoch + 23ms}}};
  const auto reports = sender.OnFeedback(fb);
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[0].transport_seq, 10);
  EXPECT_EQ(reports[0].send_ts, kEpoch + 1ms);
  EXPECT_EQ(reports[0].recv_ts, kEpoch + 21ms);
  EXPECT_EQ(reports[0].size_bytes, 900u);
  EXPECT_EQ(reports[1].size_bytes, 1100u);
}

TEST_F(TwccTest, UnknownSeqIsSkipped) {
  TwccSender sender;
  sender.OnPacketSent(MediaPacket(1), kEpoch);
  net::Packet fb;
  fb.feedback = net::FeedbackMeta{0, {{99, kEpoch + 1ms}}};
  EXPECT_TRUE(sender.OnFeedback(fb).empty());
}

TEST_F(TwccTest, ReportsSortedByReceiveTime) {
  TwccSender sender;
  sender.OnPacketSent(MediaPacket(1), kEpoch);
  sender.OnPacketSent(MediaPacket(2), kEpoch + 1ms);
  net::Packet fb;
  // Out-of-order arrivals in the feedback message.
  fb.feedback = net::FeedbackMeta{0, {{2, kEpoch + 30ms}, {1, kEpoch + 25ms}}};
  const auto reports = sender.OnFeedback(fb);
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[0].transport_seq, 1);
  EXPECT_EQ(reports[1].transport_seq, 2);
}

TEST_F(TwccTest, HistoryEviction) {
  TwccSender sender{4};
  for (std::uint16_t i = 0; i < 10; ++i) sender.OnPacketSent(MediaPacket(i), kEpoch);
  EXPECT_EQ(sender.history_size(), 4u);
  net::Packet fb;
  fb.feedback = net::FeedbackMeta{0, {{0, kEpoch + 1ms}, {9, kEpoch + 2ms}}};
  const auto reports = sender.OnFeedback(fb);
  ASSERT_EQ(reports.size(), 1u);  // seq 0 was evicted, seq 9 survives
  EXPECT_EQ(reports[0].transport_seq, 9);
}

TEST_F(TwccTest, AudioFlagPropagates) {
  TwccSender sender;
  net::Packet p = MediaPacket(5);
  p.kind = net::PacketKind::kRtpAudio;
  sender.OnPacketSent(p, kEpoch);
  net::Packet fb;
  fb.feedback = net::FeedbackMeta{0, {{5, kEpoch + 5ms}}};
  const auto reports = sender.OnFeedback(fb);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_TRUE(reports[0].is_audio);
}

TEST_F(TwccTest, FeedbackPacketSizeGrowsWithReports) {
  TwccReceiver receiver{sim_, {.feedback_interval = 50ms}, ids_};
  std::vector<net::Packet> feedback;
  receiver.set_feedback_path([&](const net::Packet& p) { feedback.push_back(p); });
  receiver.Start();
  sim_.ScheduleAfter(1ms, [&] {
    for (std::uint16_t i = 0; i < 20; ++i) receiver.OnMediaPacket(MediaPacket(i));
  });
  sim_.RunUntil(kEpoch + 60ms);
  receiver.Stop();
  ASSERT_EQ(feedback.size(), 1u);
  EXPECT_GT(feedback[0].size_bytes, 80u);
}

}  // namespace
}  // namespace athena::rtp
