// Property-based tests: invariants swept across seeds and configurations
// with parameterized gtest. These pin down the *structural* claims of the
// paper — grid quantization, 10 ms retransmission arithmetic, byte
// conservation — rather than single scenarios.
#include <chrono>
#include <tuple>

#include <gtest/gtest.h>

#include "app/session.hpp"
#include "core/analyzer.hpp"
#include "core/correlator.hpp"
#include "sim/simulator.hpp"

namespace athena {
namespace {

using namespace std::chrono_literals;
using sim::kEpoch;

// ---------- RAN timing invariants across seeds × cell configs ----------

enum class CellKind { kPaper, kNoProactive, kFdd };

class RanTimingProperty : public ::testing::TestWithParam<std::tuple<std::uint64_t, CellKind>> {
 protected:
  static ran::RanConfig Cell(CellKind kind) {
    switch (kind) {
      case CellKind::kPaper: return ran::RanConfig::PaperCell();
      case CellKind::kNoProactive: return ran::RanConfig::PaperCellNoProactive();
      case CellKind::kFdd: return ran::RanConfig::FddLikeCell();
    }
    return ran::RanConfig::PaperCell();
  }
};

TEST_P(RanTimingProperty, DeliveriesOnSlotGridAndFifo) {
  const auto [seed, kind] = GetParam();
  const auto cell = Cell(kind);

  sim::Simulator sim;
  ran::RanUplink ran{sim, cell, ran::ChannelModel{{.base_bler = 0.1}, sim::Rng{seed}},
                     ran::CrossTraffic::Idle(sim::Rng{seed + 1})};
  std::vector<std::pair<net::PacketId, sim::TimePoint>> deliveries;
  ran.set_core_sink([&](const net::Packet& p) { deliveries.emplace_back(p.id, sim.Now()); });
  ran.Start();

  sim::Rng traffic{seed + 2};
  sim::Duration t{0};
  for (net::PacketId id = 1; id <= 120; ++id) {
    t += sim::Duration{traffic.UniformInt(100, 9'000)};
    const auto bytes = static_cast<std::uint32_t>(traffic.UniformInt(100, 2'000));
    sim.ScheduleAt(kEpoch + t, [&ran, id, bytes, &sim] {
      net::Packet p;
      p.id = id;
      p.kind = net::PacketKind::kRtpVideo;
      p.size_bytes = bytes;
      p.created_at = sim.Now();
      ran.SendFromUe(p);
    });
  }
  sim.RunUntil(kEpoch + 10s);

  EXPECT_GT(deliveries.size(), 110u);  // a few may be lost to HARQ drops
  sim::TimePoint prev = kEpoch;
  for (const auto& [id, at] : deliveries) {
    // On the UL slot grid (modulo the constant gNB→core hop).
    const auto on_air = at - cell.gnb_to_core_delay;
    EXPECT_EQ(on_air.us() % cell.ul_slot_period.count(), 0);
    // FIFO at the core.
    EXPECT_GE(at, prev);
    prev = at;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndCells, RanTimingProperty,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 5u),
                       ::testing::Values(CellKind::kPaper, CellKind::kNoProactive,
                                         CellKind::kFdd)));

// ---------- Retransmission arithmetic across BLER levels ----------

class RtxArithmeticProperty : public ::testing::TestWithParam<double> {};

TEST_P(RtxArithmeticProperty, InflationIsMultipleOfRtxDelay) {
  const double bler = GetParam();
  const auto cell = ran::RanConfig::PaperCell();

  sim::Simulator sim;
  ran::RanUplink ran{sim, cell,
                     ran::ChannelModel{{.base_bler = bler, .rtx_bler_factor = 1.0},
                                       sim::Rng{7}},
                     ran::CrossTraffic::Idle(sim::Rng{8})};
  ran.set_core_sink([](const net::Packet&) {});
  ran.Start();
  for (int i = 0; i < 100; ++i) {
    sim.ScheduleAt(kEpoch + sim::Duration{i * 20'000 + 700}, [&ran, i, &sim] {
      net::Packet p;
      p.id = static_cast<net::PacketId>(i + 1);
      p.kind = net::PacketKind::kRtpVideo;
      p.size_bytes = 1000;
      p.created_at = sim.Now();
      ran.SendFromUe(p);
    });
  }
  sim.RunUntil(kEpoch + 5s);

  // Validate on telemetry: every successful chain decodes at
  // first_tx + k × rtx_delay (§3.2: inflation "by multiples of 10 ms").
  std::map<ran::TbId, sim::TimePoint> first_tx;
  std::size_t rtx_chains = 0;
  for (const auto& tb : ran.telemetry()) {
    if (tb.harq_round == 0) first_tx[tb.chain_id] = tb.slot_time;
    if (tb.crc_ok) {
      const auto inflation = tb.slot_time - first_tx.at(tb.chain_id);
      EXPECT_EQ(inflation.count() % cell.rtx_delay.count(), 0);
      EXPECT_EQ(inflation, sim::Duration{tb.harq_round * cell.rtx_delay.count()});
      if (tb.harq_round > 0) ++rtx_chains;
    }
  }
  if (bler >= 0.2) EXPECT_GT(rtx_chains, 0u);
}

INSTANTIATE_TEST_SUITE_P(BlerSweep, RtxArithmeticProperty,
                         ::testing::Values(0.0, 0.1, 0.2, 0.35, 0.5));

// ---------- Correlator exactness across seeds × BLER ----------

class CorrelatorExactnessProperty
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(CorrelatorExactnessProperty, MappingMatchesTruthAndConservesBytes) {
  const auto [seed, bler] = GetParam();
  sim::Simulator sim;
  app::SessionConfig config;
  config.seed = seed;
  config.channel.base_bler = bler;
  app::Session session{sim, config};
  session.Run(8s);

  const auto data = core::Correlator::Correlate(session.BuildCorrelatorInput());
  EXPECT_EQ(data.unmatched_tb_bytes, 0u);

  std::unordered_map<net::PacketId, std::vector<ran::TbId>> truth;
  for (const auto& t : session.ran_uplink()->truth()) {
    for (const auto& seg : t.segments) truth[seg.packet_id].push_back(t.chain_id);
  }
  for (const auto& p : data.packets) {
    if (p.tb_chains.empty()) continue;
    ASSERT_TRUE(truth.count(p.packet_id));
    EXPECT_EQ(p.tb_chains, truth.at(p.packet_id));
  }
}

INSTANTIATE_TEST_SUITE_P(SeedsAndBler, CorrelatorExactnessProperty,
                         ::testing::Combine(::testing::Values(21u, 22u, 23u),
                                            ::testing::Values(0.0, 0.15, 0.3)));

// ---------- Delay-spread quantization across seeds ----------

class SpreadQuantizationProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SpreadQuantizationProperty, FrameSpreadSitsOnUlSlotGrid) {
  sim::Simulator sim;
  app::SessionConfig config;
  config.seed = GetParam();
  app::Session session{sim, config};
  session.Run(8s);
  const auto data = core::Correlator::Correlate(session.BuildCorrelatorInput());
  EXPECT_GT(core::Analyzer::SpreadGridFraction(data, 2500us, 100us), 0.95);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpreadQuantizationProperty,
                         ::testing::Values(31u, 32u, 33u, 34u));

// ---------- Jitter buffer invariants across jitter levels ----------

class JitterBufferProperty
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(JitterBufferProperty, PlayoutMonotoneAndNoDuplicates) {
  const auto [seed, jitter_ms] = GetParam();
  sim::Simulator sim;
  media::JitterBuffer jb{sim, media::JitterBuffer::Config{}};
  std::vector<media::RenderedFrame> rendered;
  jb.set_render_callback([&](const media::RenderedFrame& f) { rendered.push_back(f); });

  sim::Rng rng{seed};
  for (int i = 0; i < 200; ++i) {
    const auto jitter = sim::Duration{rng.UniformInt(0, jitter_ms * 1000)};
    const auto at = kEpoch + sim::Duration{i * 33'000} + jitter;
    sim.ScheduleAt(at, [&jb, i, &sim] {
      net::Packet p;
      p.id = static_cast<net::PacketId>(i + 1);
      p.kind = net::PacketKind::kRtpVideo;
      p.size_bytes = 1200;
      p.rtp = net::RtpMeta{.media_ts = static_cast<std::uint32_t>(i) * 2970,
                           .marker = true,
                           .frame_id = static_cast<std::uint64_t>(i) * 2 + 1,
                           .packets_in_frame = 1,
                           .packet_index_in_frame = 0};
      (void)sim;
      jb.OnPacket(p);
    });
  }
  sim.RunAll();

  EXPECT_EQ(rendered.size(), 200u);
  std::set<std::uint64_t> seen;
  sim::TimePoint prev = kEpoch;
  for (const auto& f : rendered) {
    EXPECT_TRUE(seen.insert(f.frame_id).second) << "duplicate render";
    EXPECT_GE(f.rendered_at, prev);
    EXPECT_GE(f.rendered_at, f.completed_at - sim::Duration{1});
    prev = f.rendered_at;
  }
}

INSTANTIATE_TEST_SUITE_P(SeedsAndJitter, JitterBufferProperty,
                         ::testing::Combine(::testing::Values(41u, 42u),
                                            ::testing::Values(0, 5, 20, 60)));

// ---------- GCC convergence across bottleneck capacities ----------

class GccConvergenceProperty : public ::testing::TestWithParam<double> {};

TEST_P(GccConvergenceProperty, TracksEmulatedBottleneck) {
  const double capacity_bps = GetParam();
  sim::Simulator sim;
  app::SessionConfig config;
  config.seed = 51;
  config.access = app::SessionConfig::Access::kEmulated;
  config.emulated_capacity = net::CapacityTrace{capacity_bps};
  config.icmp_enabled = false;
  app::Session session{sim, config};
  session.Run(40s);

  const double target = session.sender().controller().target_bps();
  // After 40 s the delay-based controller sits in the vicinity of the
  // bottleneck: above half, not more than ~1.6× (transient probing).
  EXPECT_GT(target, 0.4 * capacity_bps);
  EXPECT_LT(target, 1.7 * capacity_bps);
  // And the receiver actually renders video.
  EXPECT_GT(session.qoe().video_frames_rendered(), 500u);
}

INSTANTIATE_TEST_SUITE_P(Capacities, GccConvergenceProperty,
                         ::testing::Values(7e5, 1.2e6, 2.5e6));

// ---------- Cdf quantile ordering on random data ----------

class CdfOrderProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CdfOrderProperty, QuantilesAreOrdered) {
  sim::Rng rng{GetParam()};
  stats::Cdf cdf;
  for (int i = 0; i < 1000; ++i) cdf.Add(rng.LogNormal(1.0, 1.5));
  EXPECT_LE(cdf.Min(), cdf.P(25));
  EXPECT_LE(cdf.P(25), cdf.P(50));
  EXPECT_LE(cdf.P(50), cdf.P(75));
  EXPECT_LE(cdf.P(75), cdf.P(95));
  EXPECT_LE(cdf.P(95), cdf.Max());
  // ECDF at the median is ~0.5.
  EXPECT_NEAR(cdf.FractionAtOrBelow(cdf.Median()), 0.5, 0.01);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CdfOrderProperty, ::testing::Values(61u, 62u, 63u, 64u));

}  // namespace
}  // namespace athena
