// World-scale fault tolerance: windowed world snapshots (round-trip,
// layout invariance, corruption rejection), shard-crash supervision
// (restore-to-identical-digest across seeds × kill windows × layouts),
// and cell quarantine (conservation with evacuation drops booked as
// lost).
#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "fault/world_chaos.hpp"
#include "resilience/world_checkpoint.hpp"
#include "resilience/world_supervisor.hpp"
#include "sim/check.hpp"
#include "world/engine.hpp"

namespace athena::resilience {
namespace {

using namespace std::chrono_literals;

world::WorldConfig ResilienceWorld(std::uint64_t seed = 42) {
  world::WorldConfig config;
  config.seed = seed;
  config.ues = 12;
  config.cells = 8;
  config.shards = 2;
  config.threaded = true;
  config.duration = sim::Duration{200ms};  // 200 windows at 1 ms lookahead
  config.handover_every = 4;
  config.scenario = "world-resilience";
  return config;
}

/// Runs the world to completion, capturing a snapshot at `window`.
WorldSnapshot CaptureSnapshot(world::WorldConfig config, std::uint64_t window) {
  world::WorldEngine engine(std::move(config));
  std::optional<WorldSnapshot> snapshot;
  engine.set_window_hook([&](std::uint64_t k) {
    if (k == window) snapshot = SnapshotWorld(engine, k);
  });
  (void)engine.Run();
  EXPECT_TRUE(snapshot.has_value());
  return *snapshot;
}

std::uint64_t Fnv(const std::uint8_t* data, std::size_t size) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

TEST(WorldSnapshotTest, RoundTripIsByteStable) {
  const WorldSnapshot snapshot = CaptureSnapshot(ResilienceWorld(), 100);
  EXPECT_EQ(snapshot.window, 100u);
  EXPECT_EQ(snapshot.virtual_us, 100'000);
  EXPECT_EQ(snapshot.windows_total, 200u);
  EXPECT_NE(snapshot.state_digest, 0u);
  EXPECT_FALSE(snapshot.mailbox.empty());  // a live world has mail in flight

  std::vector<std::uint8_t> bytes;
  snapshot.Serialize(bytes);
  EXPECT_EQ(bytes.size(), snapshot.SerializedBytes());

  const WorldSnapshot parsed = WorldSnapshot::Deserialize(bytes.data(), bytes.size());
  EXPECT_EQ(parsed.config_fingerprint, snapshot.config_fingerprint);
  EXPECT_EQ(parsed.seed, snapshot.seed);
  EXPECT_EQ(parsed.window, snapshot.window);
  EXPECT_EQ(parsed.virtual_us, snapshot.virtual_us);
  EXPECT_EQ(parsed.windows_total, snapshot.windows_total);
  EXPECT_EQ(parsed.state_digest, snapshot.state_digest);
  ASSERT_EQ(parsed.mailbox.size(), snapshot.mailbox.size());
  EXPECT_TRUE(parsed.mailbox == snapshot.mailbox);

  // Re-serializing the parsed snapshot reproduces the exact bytes.
  std::vector<std::uint8_t> again;
  parsed.Serialize(again);
  EXPECT_EQ(again, bytes);
}

TEST(WorldSnapshotTest, SnapshotIsLayoutInvariant) {
  world::WorldConfig wide = ResilienceWorld();
  wide.shards = 8;
  wide.threaded = true;
  world::WorldConfig narrow = ResilienceWorld();
  narrow.shards = 1;
  narrow.threaded = false;

  const WorldSnapshot a = CaptureSnapshot(wide, 80);
  const WorldSnapshot b = CaptureSnapshot(narrow, 80);

  // Nothing in a snapshot names a shard: 8 threaded shards and 1
  // sequential shard must produce byte-identical witnesses.
  EXPECT_EQ(a.config_fingerprint, b.config_fingerprint);
  EXPECT_EQ(a.state_digest, b.state_digest);
  EXPECT_TRUE(a.mailbox == b.mailbox);
  std::vector<std::uint8_t> bytes_a, bytes_b;
  a.Serialize(bytes_a);
  b.Serialize(bytes_b);
  EXPECT_EQ(bytes_a, bytes_b);
}

TEST(WorldSnapshotTest, RejectsCorruptionEverywhere) {
  const WorldSnapshot snapshot = CaptureSnapshot(ResilienceWorld(), 60);
  std::vector<std::uint8_t> bytes;
  snapshot.Serialize(bytes);

  // A flipped bit anywhere — header, payload, or checksum — is caught.
  for (const std::size_t offset :
       {std::size_t{9}, bytes.size() / 2, bytes.size() - 3}) {
    std::vector<std::uint8_t> corrupt = bytes;
    corrupt[offset] ^= 0x40;
    EXPECT_THROW((void)WorldSnapshot::Deserialize(corrupt.data(), corrupt.size()),
                 CheckpointError)
        << "corruption at offset " << offset << " was not detected";
  }

  // Truncation at any length, including mid-record and empty.
  for (const std::size_t size : {std::size_t{0}, std::size_t{7}, std::size_t{40},
                                 bytes.size() / 2, bytes.size() - 1}) {
    EXPECT_THROW((void)WorldSnapshot::Deserialize(bytes.data(), size), CheckpointError)
        << "truncation to " << size << " bytes was not detected";
  }

  // Trailing garbage shifts the checksum out of place.
  std::vector<std::uint8_t> padded = bytes;
  padded.push_back(0);
  EXPECT_THROW((void)WorldSnapshot::Deserialize(padded.data(), padded.size()),
               CheckpointError);

  // Wrong magic: a session checkpoint is not a world snapshot.
  std::vector<std::uint8_t> wrong_magic = bytes;
  wrong_magic[3] = 'C';
  EXPECT_THROW((void)WorldSnapshot::Deserialize(wrong_magic.data(), wrong_magic.size()),
               CheckpointError);

  // Unsupported version, with the checksum recomputed so only the
  // version check can reject it.
  std::vector<std::uint8_t> future = bytes;
  future[8] = static_cast<std::uint8_t>(WorldSnapshot::kVersion + 1);
  const std::uint64_t sum = Fnv(future.data(), future.size() - 8);
  for (int i = 0; i < 8; ++i) {
    future[future.size() - 8 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(sum >> (i * 8));
  }
  EXPECT_THROW((void)WorldSnapshot::Deserialize(future.data(), future.size()),
               CheckpointError);
}

TEST(WorldSnapshotTest, SupervisorRejectsForeignSnapshots) {
  const WorldSnapshot snapshot = CaptureSnapshot(ResilienceWorld(), 60);

  // Same world, different physics: the fingerprint catches it.
  world::WorldConfig slower = ResilienceWorld();
  slower.wan_delay = sim::Duration{15ms};
  WorldSupervisor wrong_config(slower, WorldSupervisorOptions{});
  EXPECT_THROW((void)wrong_config.RunFrom(snapshot, WorldFaultSpec{}), CheckpointError);

  // Fingerprint excludes layout on purpose — but the seed still gates.
  world::WorldConfig other_seed = ResilienceWorld();
  other_seed.seed = 4321;
  WorldSupervisor wrong_seed(other_seed, WorldSupervisorOptions{});
  EXPECT_THROW((void)wrong_seed.RunFrom(snapshot, WorldFaultSpec{}), CheckpointError);
}

TEST(WorldSupervisorTest, RestoreFromSnapshotFinishesIdentically) {
  const world::WorldConfig config = ResilienceWorld();
  world::WorldEngine clean_engine{config};
  const world::WorldResult clean = clean_engine.Run();

  // Resume an interrupted run from its on-disk witness: replay to the
  // boundary, verify, continue — the end state must be byte-identical.
  const WorldSnapshot snapshot = CaptureSnapshot(config, 120);
  std::vector<std::uint8_t> bytes;
  snapshot.Serialize(bytes);
  const WorldSnapshot reloaded = WorldSnapshot::Deserialize(bytes.data(), bytes.size());

  WorldSupervisor supervisor(config, WorldSupervisorOptions{});
  const WorldSupervisedOutcome resumed = supervisor.RunFrom(reloaded, WorldFaultSpec{});
  ASSERT_TRUE(resumed.completed) << resumed.last_error;
  EXPECT_EQ(resumed.restores, 1);
  EXPECT_EQ(resumed.crashes, 0);
  EXPECT_EQ(resumed.result.digest, clean.digest);
  EXPECT_EQ(resumed.result.fleet_json, clean.fleet_json);
}

// The tentpole property: a supervised run whose shard dies mid-window
// recovers to a final digest and FleetReport byte-identical to a run
// that never crashed — across seeds, kill windows (fixed and
// seed-derived), and shard layouts, threaded and sequential.
TEST(WorldSupervisorTest, CrashRestoreMatchesCleanAcrossSeedsWindowsLayouts) {
  const std::uint64_t seeds[] = {11, 77};
  const std::uint64_t kill_windows[] = {0 /* seed-derived */, 50, 150};
  const struct {
    std::size_t shards;
    bool threaded;
  } layouts[] = {{1, false}, {2, true}, {8, true}};

  for (const std::uint64_t seed : seeds) {
    world::WorldEngine clean_engine{ResilienceWorld(seed)};
    const world::WorldResult clean = clean_engine.Run();
    for (const std::uint64_t kill_window : kill_windows) {
      for (const auto& layout : layouts) {
        world::WorldConfig config = ResilienceWorld(seed);
        config.shards = layout.shards;
        config.threaded = layout.threaded;

        WorldSupervisorOptions options;
        options.checkpoint_every_windows = 32;
        WorldSupervisor supervisor(config, options);

        WorldFaultSpec faults;
        faults.crash_shard = 1;  // mod shard count at 1-shard layouts
        faults.crash_window = kill_window;
        const WorldSupervisedOutcome outcome = supervisor.Run(faults);

        const std::string where = "seed=" + std::to_string(seed) +
                                  " kill_window=" + std::to_string(kill_window) +
                                  " shards=" + std::to_string(layout.shards) +
                                  (layout.threaded ? " threaded" : " sequential");
        ASSERT_TRUE(outcome.completed) << where << ": " << outcome.last_error;
        EXPECT_GE(outcome.crashes, 1) << where;
        EXPECT_GE(outcome.restarts, 1) << where;
        EXPECT_TRUE(outcome.result.conservation_ok)
            << where << ": " << outcome.result.conservation_error;
        EXPECT_EQ(outcome.result.digest, clean.digest) << where;
        EXPECT_EQ(outcome.result.fleet_json, clean.fleet_json) << where;
      }
    }
  }
}

TEST(WorldSupervisorTest, GivesUpWhenRetryBudgetExhausted) {
  WorldSupervisorOptions options;
  options.max_restarts = 1;
  options.cell_restart_budget = 1 << 20;  // never quarantine
  WorldSupervisor supervisor(ResilienceWorld(), options);

  WorldFaultSpec faults;
  faults.crash_shard = 0;
  faults.crash_window = 40;
  faults.max_kills = 100;  // every attempt dies
  const WorldSupervisedOutcome outcome = supervisor.Run(faults);

  EXPECT_FALSE(outcome.completed);
  EXPECT_TRUE(outcome.gave_up);
  EXPECT_EQ(outcome.crashes, 2);  // initial attempt + one restart
  EXPECT_FALSE(outcome.last_error.empty());
}

TEST(WorldQuarantineTest, ConservationHoldsWithEvacuationAndStranding) {
  world::WorldConfig config = ResilienceWorld();
  config.handover_every = 0;  // isolate quarantine-driven mobility
  world::WorldConfig clean_config = config;
  // Cell 1 goes dark mid-run: its UEs have time for the 4-message dance
  // and evacuate. Cell 2 goes dark with only 40 ms left — less than one
  // handover (4 × 21 ms) — so its UEs strand with their queues frozen.
  config.quarantines.push_back(
      world::WorldConfig::QuarantineSpec{1, sim::TimePoint{sim::Duration{50ms}}});
  config.quarantines.push_back(
      world::WorldConfig::QuarantineSpec{2, sim::TimePoint{sim::Duration{160ms}}});

  world::WorldEngine clean_engine{clean_config};
  const world::WorldResult clean = clean_engine.Run();
  world::WorldEngine engine{config};
  const world::WorldResult result = engine.Run();

  ASSERT_TRUE(result.conservation_ok) << result.conservation_error;
  ASSERT_EQ(result.quarantined_cells.size(), 2u);
  EXPECT_EQ(result.quarantined_cells[0], 1u);
  EXPECT_EQ(result.quarantined_cells[1], 2u);
  // Both fates occur: cell 1's UEs moved, cell 2's could not.
  EXPECT_GT(result.evacuated, 0u);
  EXPECT_GT(result.stranded, 0u);
  // Stranded UEs' tail packets never reach the core.
  EXPECT_LT(result.delivered, clean.delivered);
  EXPECT_GE(result.lost, clean.lost);
  // Ledger identity, with evacuation drops under `lost` and stranded
  // UEs' queues under `in_flight`.
  EXPECT_EQ(result.offered,
            result.delivered + result.lost + result.in_flight);
  // The quarantined population groups are visible to operators.
  EXPECT_EQ(result.report.scenarios.count("world-resilience/cell1/quarantined"), 1u);
  EXPECT_EQ(result.report.scenarios.count("world-resilience/cell2/quarantined"), 1u);
}

TEST(WorldQuarantineTest, QuarantineIsLayoutInvariant) {
  const auto run = [](std::size_t shards, bool threaded) {
    world::WorldConfig config = ResilienceWorld();
    config.shards = shards;
    config.threaded = threaded;
    config.quarantines.push_back(
        world::WorldConfig::QuarantineSpec{2, sim::TimePoint{sim::Duration{80ms}}});
    world::WorldEngine engine{std::move(config)};
    return engine.Run();
  };
  const world::WorldResult one = run(1, false);
  const world::WorldResult two = run(2, true);
  const world::WorldResult eight = run(8, true);
  ASSERT_TRUE(one.conservation_ok) << one.conservation_error;
  EXPECT_EQ(one.digest, two.digest);
  EXPECT_EQ(one.digest, eight.digest);
  EXPECT_EQ(one.fleet_json, two.fleet_json);
  EXPECT_EQ(one.fleet_json, eight.fleet_json);
  EXPECT_EQ(one.evacuated, eight.evacuated);
  EXPECT_EQ(one.stranded, eight.stranded);
}

TEST(WorldChaosScenarioTest, ShardCrashRestoreContractHolds) {
  fault::WorldChaosConfig config;
  config.ues = 16;
  config.cells = 4;
  config.shards = 2;
  config.duration = sim::Duration{300ms};
  config.checkpoint_every = 48;
  const fault::WorldSupervisionOutcome outcome = fault::RunShardCrashRestore(config);
  EXPECT_TRUE(outcome.invariants_ok)
      << (outcome.violations.empty() ? "" : outcome.violations.front());
  EXPECT_GE(outcome.supervised.checkpoints_taken, 1u);
  EXPECT_EQ(outcome.supervised.result.digest, outcome.clean.digest);
}

TEST(WorldChaosScenarioTest, CellQuarantineContractHolds) {
  fault::WorldChaosConfig config;
  config.ues = 16;
  config.cells = 4;
  config.shards = 2;
  config.duration = sim::Duration{300ms};
  config.checkpoint_every = 48;
  const fault::WorldSupervisionOutcome outcome = fault::RunCellQuarantine(config);
  EXPECT_TRUE(outcome.invariants_ok)
      << (outcome.violations.empty() ? "" : outcome.violations.front());
  EXPECT_FALSE(outcome.supervised.quarantined_cells.empty());
  EXPECT_TRUE(outcome.supervised.result.conservation_ok);
}

}  // namespace
}  // namespace athena::resilience
