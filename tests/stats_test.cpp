#include <chrono>
#include <sstream>

#include <gtest/gtest.h>

#include "sim/check.hpp"
#include "stats/cdf.hpp"
#include "stats/histogram.hpp"
#include "stats/running_stats.hpp"
#include "stats/table.hpp"
#include "stats/timeseries.hpp"

namespace athena::stats {
namespace {

using namespace std::chrono_literals;
using sim::kEpoch;

// ---------- RunningStats ----------

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, SingleSample) {
  RunningStats s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, MeanAndVariance) {
  RunningStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic textbook dataset
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
}

TEST(RunningStatsTest, MinMaxTrack) {
  RunningStats s;
  s.Add(3.0);
  s.Add(-1.0);
  s.Add(10.0);
  EXPECT_DOUBLE_EQ(s.min(), -1.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
}

TEST(RunningStatsTest, MergeMatchesCombinedStream) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  for (int i = 0; i < 50; ++i) {
    const double v = i * 0.7 - 3;
    (i % 2 ? a : b).Add(v);
    all.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmptyIsIdentity) {
  RunningStats a;
  a.Add(1.0);
  a.Add(2.0);
  RunningStats empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(RunningStatsTest, ResetClears) {
  RunningStats s;
  s.Add(1.0);
  s.Reset();
  EXPECT_EQ(s.count(), 0u);
}

// ---------- Cdf ----------

TEST(CdfTest, QuantilesOfKnownData) {
  Cdf cdf;
  for (int i = 1; i <= 100; ++i) cdf.Add(i);
  EXPECT_DOUBLE_EQ(cdf.Min(), 1.0);
  EXPECT_DOUBLE_EQ(cdf.Max(), 100.0);
  EXPECT_NEAR(cdf.Median(), 50.5, 1e-9);
  EXPECT_NEAR(cdf.P(25), 25.75, 1e-9);
  EXPECT_NEAR(cdf.P(95), 95.05, 1e-9);
}

TEST(CdfTest, FractionAtOrBelow) {
  Cdf cdf{{1.0, 2.0, 3.0, 4.0}};
  EXPECT_DOUBLE_EQ(cdf.FractionAtOrBelow(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.FractionAtOrBelow(2.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf.FractionAtOrBelow(10.0), 1.0);
}

TEST(CdfTest, MeanMatches) {
  Cdf cdf{{1.0, 2.0, 3.0}};
  EXPECT_DOUBLE_EQ(cdf.Mean(), 2.0);
}

TEST(CdfTest, EvaluateIsMonotoneNondecreasing) {
  Cdf cdf;
  for (int i = 0; i < 500; ++i) cdf.Add((i * 37) % 101);
  const auto pts = cdf.Evaluate(40);
  ASSERT_FALSE(pts.empty());
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GE(pts[i].f, pts[i - 1].f);
    EXPECT_GE(pts[i].x, pts[i - 1].x);
  }
  EXPECT_DOUBLE_EQ(pts.back().f, 1.0);
}

TEST(CdfTest, EvaluateAtCustomGrid) {
  Cdf cdf{{1.0, 2.0, 3.0, 4.0}};
  const auto pts = cdf.EvaluateAt({0.0, 2.5, 5.0});
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_DOUBLE_EQ(pts[0].f, 0.0);
  EXPECT_DOUBLE_EQ(pts[1].f, 0.5);
  EXPECT_DOUBLE_EQ(pts[2].f, 1.0);
}

TEST(CdfTest, SortedSamplesAreSorted) {
  Cdf cdf{{3.0, 1.0, 2.0}};
  EXPECT_EQ(cdf.sorted_samples(), (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(CdfTest, AddAfterQueryResorts) {
  Cdf cdf{{3.0, 1.0}};
  EXPECT_DOUBLE_EQ(cdf.Max(), 3.0);
  cdf.Add(10.0);
  EXPECT_DOUBLE_EQ(cdf.Max(), 10.0);
}

TEST(CdfTest, SummaryMentionsCount) {
  Cdf cdf{{1.0, 2.0}};
  EXPECT_NE(cdf.Summary().find("n=2"), std::string::npos);
  EXPECT_EQ(Cdf{}.Summary(), "n=0");
}

TEST(CdfTest, StochasticDominance) {
  Cdf small;
  Cdf large;
  for (int i = 0; i < 100; ++i) {
    small.Add(i);
    large.Add(i + 50);
  }
  EXPECT_TRUE(StochasticallyBelow(small, large));
  EXPECT_FALSE(StochasticallyBelow(large, small));
}

TEST(CdfTest, StochasticDominanceSlackTolerates) {
  Cdf a{{1.0, 2.0, 3.0}};
  Cdf b{{1.5, 2.5, 2.9}};  // crosses slightly at the top
  EXPECT_FALSE(StochasticallyBelow(a, b));
  EXPECT_TRUE(StochasticallyBelow(a, b, 0.4));
}

// ---------- Histogram ----------

TEST(HistogramTest, BinsAndCounts) {
  Histogram h{0.0, 10.0, 10};
  h.Add(0.5);
  h.Add(1.5);
  h.Add(1.6);
  EXPECT_EQ(h.bin(0), 1u);
  EXPECT_EQ(h.bin(1), 2u);
  EXPECT_EQ(h.count(), 3u);
}

TEST(HistogramTest, UnderOverflow) {
  Histogram h{0.0, 10.0, 10};
  h.Add(-1.0);
  h.Add(10.0);  // hi is exclusive
  h.Add(100.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
}

TEST(HistogramTest, BinLowAndWidth) {
  Histogram h{0.0, 10.0, 10};
  EXPECT_DOUBLE_EQ(h.bin_width(), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_low(3), 3.0);
}

TEST(HistogramTest, ModeBin) {
  Histogram h{0.0, 10.0, 10};
  h.Add(5.5);
  h.Add(5.6);
  h.Add(1.0);
  EXPECT_EQ(h.ModeBin(), 5u);
}

TEST(HistogramTest, FractionOnGridDetectsQuantization) {
  Histogram h{0.0, 50.0, 100};
  // Everything on a 2.5 grid:
  for (int i = 0; i < 20; ++i) h.Add(2.5 * (i % 8));
  EXPECT_DOUBLE_EQ(h.FractionOnGrid(2.5, 0.1), 1.0);
  // Add off-grid mass:
  for (int i = 0; i < 20; ++i) h.Add(1.3);
  EXPECT_NEAR(h.FractionOnGrid(2.5, 0.1), 0.5, 1e-9);
}

TEST(HistogramTest, RenderShowsNonEmptyBins) {
  Histogram h{0.0, 10.0, 10};
  h.Add(1.5);
  const auto text = h.Render();
  EXPECT_NE(text.find('#'), std::string::npos);
  EXPECT_EQ(Histogram(0, 1, 4).Render(), "(empty histogram)\n");
}

// ---------- TimeSeries ----------

TEST(TimeSeriesTest, WindowedMeanAveragesPerWindow) {
  TimeSeries ts;
  ts.Add(kEpoch + 100ms, 1.0);
  ts.Add(kEpoch + 200ms, 3.0);
  ts.Add(kEpoch + 1100ms, 10.0);
  const auto w = ts.WindowedMean(1s);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_DOUBLE_EQ(w[0].mean, 2.0);
  EXPECT_EQ(w[0].count, 2u);
  EXPECT_DOUBLE_EQ(w[1].mean, 10.0);
}

TEST(TimeSeriesTest, WindowedRateConvertsToPerSecond) {
  TimeSeries ts;
  ts.Add(kEpoch + 100ms, 500.0);   // bytes
  ts.Add(kEpoch + 900ms, 500.0);
  const auto w = ts.WindowedRatePerSecond(1s);
  ASSERT_EQ(w.size(), 1u);
  EXPECT_DOUBLE_EQ(w[0].mean, 1000.0);  // 1000 bytes over 1 s
}

TEST(TimeSeriesTest, EmptyWindowsAreSkipped) {
  TimeSeries ts;
  ts.Add(kEpoch, 1.0);
  ts.Add(kEpoch + 5s, 1.0);
  const auto w = ts.WindowedMean(1s);
  EXPECT_EQ(w.size(), 2u);  // windows 1..4 are empty and absent
}

TEST(TimeSeriesTest, UnsortedInputIsHandled) {
  TimeSeries ts;
  ts.Add(kEpoch + 900ms, 3.0);
  ts.Add(kEpoch + 100ms, 1.0);
  const auto w = ts.WindowedMean(1s);
  ASSERT_EQ(w.size(), 1u);
  EXPECT_DOUBLE_EQ(w[0].mean, 2.0);
}

TEST(TimeSeriesTest, SliceSelectsHalfOpenRange) {
  TimeSeries ts;
  ts.Add(kEpoch + 1s, 1.0);
  ts.Add(kEpoch + 2s, 2.0);
  ts.Add(kEpoch + 3s, 3.0);
  const auto sliced = ts.Slice(kEpoch + 2s, kEpoch + 3s);
  ASSERT_EQ(sliced.size(), 1u);
  EXPECT_DOUBLE_EQ(sliced.samples()[0].value, 2.0);
}

TEST(TimeSeriesTest, ValuesExtract) {
  TimeSeries ts;
  ts.Add(kEpoch, 1.0);
  ts.Add(kEpoch + 1ms, 2.0);
  EXPECT_EQ(ts.Values(), (std::vector<double>{1.0, 2.0}));
}

// ---------- Table ----------

TEST(TableTest, PrintAlignsColumnsAndCsvIsParsable) {
  Table t{{"name", "value"}};
  t.AddRow({"alpha", "1"});
  t.AddNumericRow({2.5, 3.25}, 2);
  EXPECT_EQ(t.rows(), 2u);

  std::ostringstream text;
  t.Print(text);
  EXPECT_NE(text.str().find("alpha"), std::string::npos);
  EXPECT_NE(text.str().find("name"), std::string::npos);

  std::ostringstream csv;
  t.PrintCsv(csv);
  EXPECT_NE(csv.str().find("name,value"), std::string::npos);
  EXPECT_NE(csv.str().find("2.50,3.25"), std::string::npos);
}

TEST(TableTest, ShortRowsArePadded) {
  Table t{{"a", "b", "c"}};
  t.AddRow({"only-one"});
  std::ostringstream csv;
  t.PrintCsv(csv);
  EXPECT_NE(csv.str().find("only-one,,"), std::string::npos);
}

TEST(TableTest, FmtFormatsPrecision) {
  EXPECT_EQ(Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Fmt(2.0, 0), "2");
}

TEST(TableTest, BannerContainsTitle) {
  std::ostringstream os;
  PrintBanner(os, "Figure 5");
  EXPECT_NE(os.str().find("Figure 5"), std::string::npos);
}

// ---------- release-mode precondition guards ----------

TEST(CdfCheckDeathTest, QuantileOfEmptyCdfAbortsWithDiagnostic) {
  // The guard must be armed in release builds too (ATHENA_CHECK, not
  // assert): quantile of an empty CDF would index samples_[-0u].
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const Cdf empty;
  EXPECT_DEATH((void)empty.Quantile(0.5), "ATHENA_CHECK failed");
}

TEST(CdfCheckDeathTest, ScopedThrowConvertsTheAbortIntoAnException) {
  const Cdf empty;
  sim::ScopedCheckThrow guard;
  EXPECT_THROW((void)empty.Quantile(0.5), sim::CheckViolation);
}

}  // namespace
}  // namespace athena::stats
