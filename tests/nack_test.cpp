// Tests for RFC 4585-style NACK generation and retransmission recovery.
#include <chrono>

#include <gtest/gtest.h>

#include "app/session.hpp"
#include "rtp/nack.hpp"
#include "sim/simulator.hpp"

namespace athena::rtp {
namespace {

using namespace std::chrono_literals;
using sim::kEpoch;

net::Packet MediaPacket(std::uint32_t ssrc, std::uint16_t seq) {
  net::Packet p;
  p.id = seq + 1;
  p.kind = net::PacketKind::kRtpVideo;
  p.size_bytes = 1200;
  p.rtp = net::RtpMeta{.ssrc = ssrc, .seq = seq};
  return p;
}

class NackGeneratorTest : public ::testing::Test {
 protected:
  NackGeneratorTest() : nack_(sim_, {}, ids_) {
    nack_.set_feedback_path([this](const net::Packet& p) { sent_.push_back(p); });
  }

  sim::Simulator sim_;
  net::PacketIdGenerator ids_;
  NackGenerator nack_;
  std::vector<net::Packet> sent_;
};

TEST_F(NackGeneratorTest, InOrderStreamProducesNoNacks) {
  nack_.Start();
  for (std::uint16_t i = 0; i < 50; ++i) {
    sim_.ScheduleAfter(sim::Duration{i * 10'000},
                       [this, i] { nack_.OnMediaPacket(MediaPacket(1, i)); });
  }
  sim_.RunUntil(kEpoch + 1s);
  nack_.Stop();
  EXPECT_TRUE(sent_.empty());
  EXPECT_EQ(nack_.gaps_detected(), 0u);
}

TEST_F(NackGeneratorTest, GapIsNackedAfterHold) {
  nack_.Start();
  sim_.ScheduleAfter(1ms, [this] { nack_.OnMediaPacket(MediaPacket(1, 0)); });
  // seq 1 missing.
  sim_.ScheduleAfter(2ms, [this] { nack_.OnMediaPacket(MediaPacket(1, 2)); });
  sim_.RunUntil(kEpoch + 100ms);
  nack_.Stop();
  ASSERT_GE(sent_.size(), 1u);
  ASSERT_TRUE(sent_[0].nack.has_value());
  EXPECT_EQ(sent_[0].nack->ssrc, 1u);
  EXPECT_EQ(sent_[0].nack->seqs, std::vector<std::uint16_t>{1});
  EXPECT_EQ(nack_.gaps_detected(), 1u);
}

TEST_F(NackGeneratorTest, RecoveryClearsTheMiss) {
  nack_.Start();
  sim_.ScheduleAfter(1ms, [this] { nack_.OnMediaPacket(MediaPacket(1, 0)); });
  sim_.ScheduleAfter(2ms, [this] { nack_.OnMediaPacket(MediaPacket(1, 2)); });
  // The retransmission arrives before the first retry interval expires.
  sim_.ScheduleAfter(40ms, [this] { nack_.OnMediaPacket(MediaPacket(1, 1)); });
  sim_.RunUntil(kEpoch + 2s);
  nack_.Stop();
  EXPECT_EQ(nack_.recovered(), 1u);
  // Only the initial NACK round went out, no endless retries.
  EXPECT_LE(sent_.size(), 1u);
}

TEST_F(NackGeneratorTest, GivesUpAfterMaxRetries) {
  nack_.Start();
  sim_.ScheduleAfter(1ms, [this] { nack_.OnMediaPacket(MediaPacket(1, 0)); });
  sim_.ScheduleAfter(2ms, [this] { nack_.OnMediaPacket(MediaPacket(1, 2)); });
  sim_.RunUntil(kEpoch + 3s);  // nothing ever fills the hole
  nack_.Stop();
  EXPECT_EQ(nack_.abandoned(), 1u);
  EXPECT_EQ(sent_.size(), 4u);  // max_retries rounds
}

TEST_F(NackGeneratorTest, SsrcsAreIndependent) {
  nack_.Start();
  sim_.ScheduleAfter(1ms, [this] { nack_.OnMediaPacket(MediaPacket(1, 0)); });
  sim_.ScheduleAfter(2ms, [this] { nack_.OnMediaPacket(MediaPacket(2, 0)); });
  sim_.ScheduleAfter(3ms, [this] { nack_.OnMediaPacket(MediaPacket(1, 2)); });
  sim_.ScheduleAfter(4ms, [this] { nack_.OnMediaPacket(MediaPacket(2, 1)); });  // in order
  sim_.RunUntil(kEpoch + 100ms);
  nack_.Stop();
  ASSERT_GE(sent_.size(), 1u);
  for (const auto& p : sent_) {
    EXPECT_EQ(p.nack->ssrc, 1u);  // only SSRC 1 has a gap
  }
}

TEST_F(NackGeneratorTest, SequenceWrapHandled) {
  nack_.Start();
  sim_.ScheduleAfter(1ms, [this] { nack_.OnMediaPacket(MediaPacket(1, 65'534)); });
  sim_.ScheduleAfter(2ms, [this] { nack_.OnMediaPacket(MediaPacket(1, 1)); });  // skips 65535, 0
  sim_.RunUntil(kEpoch + 100ms);
  nack_.Stop();
  EXPECT_EQ(nack_.gaps_detected(), 2u);
  ASSERT_GE(sent_.size(), 1u);
  EXPECT_EQ(sent_[0].nack->seqs, (std::vector<std::uint16_t>{0, 65'535}));
}

// ---------- RtxCache ----------

TEST(RtxCacheTest, FindAfterInsert) {
  RtxCache cache{4};
  cache.Insert(MediaPacket(1, 10));
  ASSERT_NE(cache.Find(1, 10), nullptr);
  EXPECT_EQ(cache.Find(1, 10)->rtp->seq, 10);
  EXPECT_EQ(cache.Find(1, 11), nullptr);
  EXPECT_EQ(cache.Find(2, 10), nullptr);
}

TEST(RtxCacheTest, FifoEviction) {
  RtxCache cache{3};
  for (std::uint16_t i = 0; i < 5; ++i) cache.Insert(MediaPacket(1, i));
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.Find(1, 0), nullptr);  // evicted
  EXPECT_EQ(cache.Find(1, 1), nullptr);  // evicted
  EXPECT_NE(cache.Find(1, 4), nullptr);
}

// ---------- end-to-end recovery ----------

TEST(NackEndToEndTest, RanLossesAreRecoveredByRetransmission) {
  // Heavy HARQ dropping: without NACK these packets (and their frames)
  // are gone; with NACK the sender repairs them within ~an RTT.
  auto run = [](bool nack_on) {
    sim::Simulator sim;
    app::SessionConfig config;
    config.seed = 91;
    config.channel.base_bler = 0.6;      // frequent chain drops
    config.channel.rtx_bler_factor = 1.0;
    config.cell.max_harq_rounds = 2;
    config.sender.nack_enabled = nack_on;
    config.receiver.nack_enabled = nack_on;
    app::Session session{sim, config};
    session.Run(20s);
    struct Out {
      double delivery;
      std::uint64_t rtx;
    };
    return Out{session.qoe().VideoDeliveryRatio(), session.sender().retransmissions()};
  };

  const auto without = run(false);
  const auto with = run(true);
  EXPECT_LT(without.delivery, 0.9);  // the RAN genuinely loses frames here
  EXPECT_GT(with.delivery, without.delivery + 0.05);
  EXPECT_GT(with.rtx, 100u);
}

TEST(NackEndToEndTest, CleanNetworkSendsNoNacks) {
  sim::Simulator sim;
  app::SessionConfig config;
  config.seed = 92;
  config.channel.base_bler = 0.0;
  app::Session session{sim, config};
  session.Run(10s);
  EXPECT_EQ(session.receiver().nack_generator().nacks_sent(), 0u);
  EXPECT_EQ(session.sender().retransmissions(), 0u);
}

}  // namespace
}  // namespace athena::rtp
