// Tests for the Wi-Fi flavour of the Athena correlator.
#include <chrono>

#include <gtest/gtest.h>

#include "app/session.hpp"
#include "core/wifi_correlator.hpp"
#include "sim/simulator.hpp"

namespace athena::core {
namespace {

using namespace std::chrono_literals;
using sim::kEpoch;

net::CaptureRecord Sent(net::PacketId id, sim::TimePoint ts, std::uint32_t size = 1200) {
  net::CaptureRecord r;
  r.packet_id = id;
  r.local_ts = ts;
  r.kind = net::PacketKind::kRtpVideo;
  r.size_bytes = size;
  r.rtp = net::RtpMeta{.frame_id = id * 2 + 1};
  return r;
}

net::WifiAirtimeRecord Attempt(net::PacketId id, std::uint8_t attempt, sim::TimePoint start,
                               sim::Duration access, bool collided = false) {
  return net::WifiAirtimeRecord{
      .packet_id = id,
      .attempt = attempt,
      .contend_start = start,
      .access_wait = access,
      .tx_duration = 200us,
      .collided = collided,
  };
}

TEST(WifiCorrelatorTest, CleanPacketDecomposition) {
  WifiCorrelatorInput input;
  input.sender = {Sent(1, kEpoch + 1ms)};
  input.egress = {{.packet_id = 1, .local_ts = kEpoch + 1ms + 900us}};
  input.telemetry = {Attempt(1, 1, kEpoch + 1ms, 700us)};
  const auto data = WifiCorrelator::Correlate(input);
  ASSERT_EQ(data.packets.size(), 1u);
  const auto& p = data.packets[0];
  EXPECT_TRUE(p.delivered);
  EXPECT_EQ(p.attempts, 1);
  EXPECT_EQ(p.hol_wait, 0us);
  EXPECT_EQ(p.contention_wait, 700us);
  EXPECT_EQ(p.retry_overhead, 0us);
  EXPECT_EQ(p.primary_cause, WifiCause::kContention);
}

TEST(WifiCorrelatorTest, HolWaitMeasured) {
  WifiCorrelatorInput input;
  input.sender = {Sent(1, kEpoch + 1ms)};
  input.egress = {{.packet_id = 1, .local_ts = kEpoch + 6ms}};
  // The station only started contending for this packet 4 ms after send
  // (a previous packet held the queue).
  input.telemetry = {Attempt(1, 1, kEpoch + 5ms, 100us)};
  const auto data = WifiCorrelator::Correlate(input);
  const auto& p = data.packets[0];
  EXPECT_EQ(p.hol_wait, 4ms);
  EXPECT_EQ(p.primary_cause, WifiCause::kHolQueueing);
}

TEST(WifiCorrelatorTest, CollisionRetryAttribution) {
  WifiCorrelatorInput input;
  input.sender = {Sent(1, kEpoch + 1ms)};
  input.egress = {{.packet_id = 1, .local_ts = kEpoch + 9ms}};
  input.telemetry = {
      Attempt(1, 1, kEpoch + 1ms, 300us, /*collided=*/true),
      Attempt(1, 2, kEpoch + 4ms, 300us),
  };
  const auto data = WifiCorrelator::Correlate(input);
  const auto& p = data.packets[0];
  EXPECT_EQ(p.attempts, 2);
  EXPECT_EQ(p.primary_cause, WifiCause::kCollisionRetry);
  EXPECT_GT(p.retry_overhead, 3ms);  // the retry round-trip dominates
}

TEST(WifiCorrelatorTest, UndeliveredPacketStillAttributed) {
  WifiCorrelatorInput input;
  input.sender = {Sent(1, kEpoch + 1ms)};
  input.telemetry = {Attempt(1, 1, kEpoch + 1ms, 300us, true)};
  const auto data = WifiCorrelator::Correlate(input);
  const auto& p = data.packets[0];
  EXPECT_FALSE(p.delivered);
  EXPECT_EQ(p.attempts, 1);
}

TEST(WifiCorrelatorTest, UnmatchedTelemetryCounted) {
  WifiCorrelatorInput input;
  input.telemetry = {Attempt(99, 1, kEpoch, 100us)};
  const auto data = WifiCorrelator::Correlate(input);
  EXPECT_EQ(data.unmatched_telemetry, 1u);
}

TEST(WifiCorrelatorTest, CauseNames) {
  EXPECT_STREQ(ToString(WifiCause::kCollisionRetry), "collision-retry");
  EXPECT_STREQ(ToString(WifiCause::kHolQueueing), "hol-queueing");
}

TEST(WifiCorrelatorTest, EndToEndSessionAttribution) {
  sim::Simulator sim;
  app::SessionConfig config;
  config.seed = 98;
  config.access = app::SessionConfig::Access::kWifiLike;
  config.wifi.channel_load = 0.5;
  config.wifi.collision_probability = 0.15;
  app::Session session{sim, config};
  session.Run(20s);

  const auto data = WifiCorrelator::Correlate(session.BuildWifiCorrelatorInput());
  ASSERT_GT(data.packets.size(), 2000u);

  std::size_t delivered = 0;
  std::size_t with_attempts = 0;
  std::map<WifiCause, std::size_t> causes;
  for (const auto& p : data.packets) {
    delivered += p.delivered ? 1 : 0;
    with_attempts += p.attempts > 0 ? 1 : 0;
    ++causes[p.primary_cause];
    if (p.delivered && p.attempts > 0) {
      // The decomposition never exceeds the total delay.
      EXPECT_LE(p.hol_wait + p.retry_overhead, p.total_delay + sim::Duration{1});
    }
  }
  // Nearly every captured packet matches telemetry (a few in flight at
  // shutdown) and the contention/collision causes both appear.
  EXPECT_GT(with_attempts, data.packets.size() - 50);
  EXPECT_GT(causes[WifiCause::kContention], 0u);
  EXPECT_GT(causes[WifiCause::kCollisionRetry], 0u);
  EXPECT_GT(delivered, data.packets.size() * 9 / 10);
}

}  // namespace
}  // namespace athena::core
