// Property sweeps over the extension components: NACK recovery, L4S
// marking, the downlink model, the Wi-Fi correlator decomposition, and
// the trace-replay cycle — invariants that must hold across seeds and
// parameter ranges.
#include <chrono>
#include <tuple>

#include <gtest/gtest.h>

#include "app/session.hpp"
#include "app/two_party.hpp"
#include "core/analyzer.hpp"
#include "core/wifi_correlator.hpp"
#include "net/trace_link.hpp"
#include "sim/simulator.hpp"

namespace athena {
namespace {

using namespace std::chrono_literals;
using sim::kEpoch;

// ---------- NACK never hurts delivery, across seeds × loss levels ----------

class NackRecoveryProperty
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(NackRecoveryProperty, DeliveryRatioNeverWorseWithNack) {
  const auto [seed, bler] = GetParam();
  auto run = [&](bool nack) {
    sim::Simulator sim;
    app::SessionConfig config;
    config.seed = seed;
    config.channel.base_bler = bler;
    config.channel.rtx_bler_factor = 1.0;
    config.cell.max_harq_rounds = 2;
    config.sender.nack_enabled = nack;
    config.receiver.nack_enabled = nack;
    app::Session session{sim, config};
    session.Run(10s);
    return session.qoe().VideoDeliveryRatio();
  };
  EXPECT_GE(run(true) + 0.02, run(false));
}

INSTANTIATE_TEST_SUITE_P(SeedsAndLoss, NackRecoveryProperty,
                         ::testing::Combine(::testing::Values(201u, 202u),
                                            ::testing::Values(0.0, 0.3, 0.6)));

// ---------- L4S on clean cells never brakes, across seeds ----------

class L4sCalmProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(L4sCalmProperty, NoBackoffWithoutCongestion) {
  sim::Simulator sim;
  app::SessionConfig config;
  config.seed = GetParam();
  config.controller = app::SessionConfig::Controller::kL4s;
  config.channel.base_bler = 0.0;
  app::Session session{sim, config};
  session.Run(15s);
  const auto& l4s =
      dynamic_cast<app::L4sRateController&>(session.sender().controller()).l4s();
  EXPECT_EQ(l4s.backoffs(), 0u);
  EXPECT_EQ(session.ran_uplink()->counters().ecn_marked, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, L4sCalmProperty, ::testing::Values(211u, 212u, 213u));

// ---------- Downlink stays below uplink delay across seeds ----------

class DirectionAsymmetryProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DirectionAsymmetryProperty, DownlinkMedianBelowUplinkMedian) {
  sim::Simulator sim;
  app::TwoPartyConfig config;
  config.seed = GetParam();
  config.channel.base_bler = 0.08;
  app::TwoPartySession session{sim, config};
  session.Run(15s);
  const auto up = core::Correlator::Correlate(session.BuildUplinkCorrelatorInput());
  const auto down = core::Correlator::Correlate(session.BuildDownlinkCorrelatorInput());
  stats::Cdf up_owd{core::Analyzer::UplinkOwdSeries(up).Values()};
  stats::Cdf down_owd{core::Analyzer::UplinkOwdSeries(down).Values()};
  ASSERT_FALSE(up_owd.empty());
  ASSERT_FALSE(down_owd.empty());
  EXPECT_LT(down_owd.Median(), up_owd.Median());
  // The downlink never wastes a granted byte.
  EXPECT_DOUBLE_EQ(session.downlink().counters().GrantUtilization(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DirectionAsymmetryProperty,
                         ::testing::Values(221u, 222u, 223u));

// ---------- Wi-Fi decomposition bounds, across loads ----------

class WifiDecompositionProperty
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(WifiDecompositionProperty, ComponentsNeverExceedTotal) {
  const auto [seed, load] = GetParam();
  sim::Simulator sim;
  app::SessionConfig config;
  config.seed = seed;
  config.access = app::SessionConfig::Access::kWifiLike;
  config.wifi.channel_load = load;
  app::Session session{sim, config};
  session.Run(10s);
  const auto data = core::WifiCorrelator::Correlate(session.BuildWifiCorrelatorInput());
  ASSERT_GT(data.packets.size(), 500u);
  for (const auto& p : data.packets) {
    if (!p.delivered || p.attempts == 0) continue;
    EXPECT_GE(p.total_delay.count(), 0);
    EXPECT_LE(p.hol_wait + p.retry_overhead, p.total_delay + sim::Duration{1});
    EXPECT_GE(p.attempts, 1);
  }
}

INSTANTIATE_TEST_SUITE_P(SeedsAndLoad, WifiDecompositionProperty,
                         ::testing::Combine(::testing::Values(231u, 232u),
                                            ::testing::Values(0.1, 0.5, 0.8)));

// ---------- Trace replay: delays within the recorded envelope ----------

class TraceReplayProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TraceReplayProperty, ReplayedDelaysStayInRecordedRange) {
  sim::Simulator sim;
  app::SessionConfig config;
  config.seed = GetParam();
  config.channel.base_bler = 0.1;
  app::Session session{sim, config};
  session.Run(8s);
  const auto data = core::Correlator::Correlate(session.BuildCorrelatorInput());
  const auto trace = core::Analyzer::BuildDelayTrace(data);
  ASSERT_FALSE(trace.empty());

  sim::Duration lo = trace.samples().front().delay;
  sim::Duration hi = lo;
  for (const auto& s : trace.samples()) {
    lo = std::min(lo, s.delay);
    hi = std::max(hi, s.delay);
  }
  sim::Rng rng{GetParam()};
  for (int i = 0; i < 500; ++i) {
    const auto elapsed = sim::Duration{rng.UniformInt(0, 20'000'000)};
    const auto d = trace.DelayAt(elapsed);
    EXPECT_GE(d, lo);
    EXPECT_LE(d, hi);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceReplayProperty, ::testing::Values(241u, 242u));

// ---------- E-model sanity across its whole input plane ----------

class EModelPlaneProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EModelPlaneProperty, MosAlwaysInValidBand) {
  sim::Rng rng{GetParam()};
  media::EModel model;
  for (int i = 0; i < 2000; ++i) {
    const double delay = rng.Uniform(0.0, 3000.0);
    const double loss = rng.Uniform(0.0, 1.0);
    const double mos = model.Mos(delay, loss);
    EXPECT_GE(mos, 1.0);
    EXPECT_LE(mos, 4.5);
    // Monotone in each argument (spot-check against a perturbation).
    EXPECT_LE(model.Mos(delay + 50.0, loss), mos + 1e-9);
    EXPECT_LE(model.Mos(delay, std::min(1.0, loss + 0.05)), mos + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EModelPlaneProperty, ::testing::Values(251u, 252u));

}  // namespace
}  // namespace athena
