// Observability subsystem tests: Chrome trace JSON well-formedness and
// balanced spans, metric ↔ ground-truth agreement on a deterministic run,
// null-sink inertness (obs off changes nothing), registry mechanics, and
// the kernel's profiling hooks.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <variant>
#include <vector>

#include "app/session.hpp"
#include "core/correlator.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace athena;
using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// A minimal JSON parser — just enough to validate the trace export without
// pulling in a dependency. Parses the full value grammar; throws on error.
// ---------------------------------------------------------------------------
struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray, JsonObject> v;

  [[nodiscard]] bool is_object() const { return std::holds_alternative<JsonObject>(v); }
  [[nodiscard]] bool is_array() const { return std::holds_alternative<JsonArray>(v); }
  [[nodiscard]] const JsonObject& object() const { return std::get<JsonObject>(v); }
  [[nodiscard]] const JsonArray& array() const { return std::get<JsonArray>(v); }
  [[nodiscard]] const std::string& str() const { return std::get<std::string>(v); }
  [[nodiscard]] double num() const { return std::get<double>(v); }

  [[nodiscard]] const JsonValue* Find(const std::string& key) const {
    const auto& o = object();
    const auto it = o.find(key);
    return it == o.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue Parse() {
    JsonValue v = ParseValue();
    SkipWs();
    if (pos_ != text_.size()) throw std::runtime_error("trailing garbage");
    return v;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char Peek() {
    SkipWs();
    if (pos_ >= text_.size()) throw std::runtime_error("unexpected end");
    return text_[pos_];
  }

  void Expect(char c) {
    if (Peek() != c) {
      throw std::runtime_error(std::string("expected '") + c + "' at " +
                               std::to_string(pos_));
    }
    ++pos_;
  }

  JsonValue ParseValue() {
    switch (Peek()) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': return JsonValue{ParseString()};
      case 't': Literal("true"); return JsonValue{true};
      case 'f': Literal("false"); return JsonValue{false};
      case 'n': Literal("null"); return JsonValue{nullptr};
      default: return ParseNumber();
    }
  }

  void Literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) throw std::runtime_error("bad literal");
    pos_ += lit.size();
  }

  JsonValue ParseObject() {
    Expect('{');
    JsonObject o;
    if (Peek() == '}') {
      ++pos_;
      return JsonValue{std::move(o)};
    }
    while (true) {
      std::string key = ParseString();
      Expect(':');
      o.emplace(std::move(key), ParseValue());
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect('}');
      return JsonValue{std::move(o)};
    }
  }

  JsonValue ParseArray() {
    Expect('[');
    JsonArray a;
    if (Peek() == ']') {
      ++pos_;
      return JsonValue{std::move(a)};
    }
    while (true) {
      a.push_back(ParseValue());
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect(']');
      return JsonValue{std::move(a)};
    }
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) throw std::runtime_error("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) throw std::runtime_error("bad escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u':
            if (pos_ + 4 > text_.size()) throw std::runtime_error("bad \\u");
            out += '?';  // escaped control char; identity not needed here
            pos_ += 4;
            break;
          default: throw std::runtime_error("bad escape char");
        }
      } else {
        out += c;
      }
    }
  }

  JsonValue ParseNumber() {
    SkipWs();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '-' ||
            text_[pos_] == '+' || text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E')) {
      ++pos_;
    }
    if (start == pos_) throw std::runtime_error("bad number");
    return JsonValue{std::stod(std::string(text_.substr(start, pos_ - start)))};
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Shared fixture: one deterministic session second, traced end to end.
// ---------------------------------------------------------------------------
struct TracedRun {
  std::unique_ptr<sim::Simulator> sim;
  std::unique_ptr<obs::ObsSession> observability;
  std::unique_ptr<app::Session> session;
  core::CrossLayerDataset data;

  explicit TracedRun(sim::Duration span = sim::Duration{2'000'000},
                     obs::ObsSession::Options options = {}) {
    sim = std::make_unique<sim::Simulator>();
    observability = std::make_unique<obs::ObsSession>(*sim, options);
    app::SessionConfig config;
    config.seed = 7;
    config.channel.base_bler = 0.08;  // some HARQ activity
    session = std::make_unique<app::Session>(*sim, config);
    session->Run(span);
    data = core::Correlator::Correlate(session->BuildCorrelatorInput());
  }
};

TEST(TraceJson, IsValidChromeTraceWithAllLayers) {
  TracedRun run;

  std::ostringstream os;
  run.observability->recorder().WriteJson(os);
  const std::string text = os.str();

  const JsonValue doc = JsonParser{text}.Parse();
  ASSERT_TRUE(doc.is_object());
  const JsonValue* unit = doc.Find("displayTimeUnit");
  ASSERT_NE(unit, nullptr);
  EXPECT_EQ(unit->str(), "ms");
  const JsonValue* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_GT(events->array().size(), 100u);

  std::set<std::string> cats;
  bool saw_process_name = false;
  double prev_ts = -1.0;
  for (const JsonValue& ev : events->array()) {
    ASSERT_TRUE(ev.is_object());
    const JsonValue* ph = ev.Find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->str() == "M") {
      if (ev.Find("name")->str() == "process_name") saw_process_name = true;
      continue;
    }
    // Every non-metadata event carries a track and a timestamp; the
    // exporter promises ascending ts.
    const JsonValue* cat = ev.Find("cat");
    ASSERT_NE(cat, nullptr);
    cats.insert(cat->str());
    const JsonValue* ts = ev.Find("ts");
    ASSERT_NE(ts, nullptr);
    EXPECT_GE(ts->num(), prev_ts);
    prev_ts = ts->num();
  }
  EXPECT_TRUE(saw_process_name);

  // The acceptance bar: spans/events from at least 5 distinct layers.
  EXPECT_GE(cats.size(), 5u) << "layers seen: " << cats.size();
  for (const char* expected : {"sim", "net", "ran", "cc", "app", "media", "core"}) {
    EXPECT_TRUE(cats.count(expected) == 1) << "missing track: " << expected;
  }
}

TEST(TraceJson, AsyncSpansAreBalanced) {
  TracedRun run;

  std::ostringstream os;
  run.observability->recorder().WriteJson(os);
  const JsonValue doc = JsonParser{os.str()}.Parse();

  // Chrome matches async begin/end by (cat, id, name); every begin must
  // have exactly one end and none may be left dangling.
  std::map<std::string, int> open;
  std::size_t pairs = 0;
  for (const JsonValue& ev : doc.Find("traceEvents")->array()) {
    const std::string& ph = ev.Find("ph")->str();
    if (ph != "b" && ph != "e") continue;
    const std::string key = ev.Find("cat")->str() + "/" + ev.Find("id")->str() + "/" +
                            ev.Find("name")->str();
    if (ph == "b") {
      ++open[key];
      ++pairs;
    } else {
      // The exporter sorts by ts with the begin stably first, so an end
      // can never precede its begin.
      ASSERT_GT(open[key], 0) << "end before begin for " << key;
      --open[key];
    }
  }
  EXPECT_GT(pairs, 0u);
  for (const auto& [key, count] : open) {
    EXPECT_EQ(count, 0) << "unbalanced async span " << key;
  }
}

TEST(Metrics, AgreeWithGroundTruth) {
  TracedRun run;
  obs::MetricsRegistry& m = run.observability->registry();

  // Kernel gauge vs the simulator's own counter (set by the bridge at the
  // end of each Run* call; nothing runs after the last one).
  EXPECT_EQ(m.GaugeValue("sim.events_executed"),
            static_cast<double>(run.sim->events_executed()));

  // Correlator counters vs the dataset it returned.
  EXPECT_EQ(m.CounterValue("core.packets_correlated"), run.data.packets.size());
  EXPECT_EQ(m.CounterValue("core.frames_correlated"), run.data.frames.size());

  // RAN counter vs the uplink's ground-truth counter.
  ASSERT_NE(run.session->ran_uplink(), nullptr);
  EXPECT_EQ(m.CounterValue("ran.packets_delivered"),
            run.session->ran_uplink()->counters().packets_delivered);

  // Capture tap counter vs the actual capture logs.
  const std::uint64_t captured =
      run.session->sender_capture().count() + run.session->core_capture().count() +
      run.session->sfu_in_capture().count() + run.session->sfu_out_capture().count() +
      run.session->receiver_capture().count();
  EXPECT_EQ(m.CounterValue("net.captured"), captured);

  // Sanity: the app and media layers published too.
  EXPECT_GT(m.CounterValue("app.media_packets_sent"), 0u);
  EXPECT_GT(m.CounterValue("media.frames_rendered"), 0u);
}

TEST(Metrics, PeriodicSnapshotsOnVirtualTimeGrid) {
  TracedRun run{sim::Duration{1'000'000},
                obs::ObsSession::Options{.metrics_period = sim::Duration{100'000}}};
  obs::MetricsRegistry& m = run.observability->registry();
  EXPECT_GT(m.sample_count(), 0u);

  std::ostringstream csv;
  m.WriteCsv(csv);
  std::istringstream lines{csv.str()};
  std::string header;
  ASSERT_TRUE(std::getline(lines, header));
  EXPECT_EQ(header, "t_us,t_ms,metric,value");
  std::size_t rows = 0;
  for (std::string line; std::getline(lines, line);) {
    EXPECT_EQ(std::count(line.begin(), line.end(), ','), 3) << line;
    ++rows;
  }
  EXPECT_EQ(rows, m.sample_count());
}

TEST(Obs, DisabledObservabilityChangesNothing) {
  // Reference run: no sink, no registry, no hooks.
  auto RunOnce = [](bool with_obs) {
    sim::Simulator sim;
    std::unique_ptr<obs::ObsSession> observability;
    if (with_obs) {
      observability = std::make_unique<obs::ObsSession>(sim, obs::ObsSession::Options{});
    }
    app::SessionConfig config;
    config.seed = 11;
    config.channel.base_bler = 0.08;
    app::Session session{sim, config};
    session.Run(1s);
    struct Result {
      std::uint64_t events;
      std::vector<net::CaptureRecord> core_records;
    };
    return Result{sim.events_executed(),
                  std::vector<net::CaptureRecord>(session.core_capture().records())};
  };

  const auto plain = RunOnce(false);
  const auto traced = RunOnce(true);

  // The instrumented run must be byte-identical in behaviour: same event
  // count (hooks observe, never schedule) and the same packets at the
  // same local timestamps at the core tap.
  EXPECT_EQ(plain.events, traced.events);
  ASSERT_EQ(plain.core_records.size(), traced.core_records.size());
  for (std::size_t i = 0; i < plain.core_records.size(); ++i) {
    EXPECT_EQ(plain.core_records[i].packet_id, traced.core_records[i].packet_id);
    EXPECT_EQ(plain.core_records[i].local_ts, traced.core_records[i].local_ts);
    EXPECT_EQ(plain.core_records[i].size_bytes, traced.core_records[i].size_bytes);
  }

  // And with no sink installed, emitting is a no-op.
  ASSERT_FALSE(obs::trace_enabled());
  ASSERT_FALSE(obs::metrics_enabled());
  obs::TraceInstant(obs::Layer::kOther, "ignored", sim::kEpoch);
  obs::CountInc("ignored");
}

TEST(Obs, RegistryMechanics) {
  obs::MetricsRegistry m;
  m.Counter("a") += 3;
  m.Counter("a") += 2;
  m.Gauge("g") = 1.5;
  m.Stats("s").Add(1.0);
  m.Stats("s").Add(3.0);
  auto& h = m.Histogram("h", 0.0, 10.0, 5);
  h.Add(2.5);

  EXPECT_TRUE(m.HasCounter("a"));
  EXPECT_FALSE(m.HasCounter("b"));
  EXPECT_EQ(m.CounterValue("a"), 5u);
  EXPECT_EQ(m.CounterValue("b"), 0u);
  EXPECT_DOUBLE_EQ(m.GaugeValue("g"), 1.5);

  m.Snapshot(sim::kEpoch + sim::Duration{1000});
  EXPECT_EQ(m.sample_count(), 2u);  // one row per counter + gauge

  std::ostringstream js;
  m.WriteJson(js);
  const JsonValue doc = JsonParser{js.str()}.Parse();
  ASSERT_TRUE(doc.is_object());
  EXPECT_DOUBLE_EQ(doc.Find("counters")->Find("a")->num(), 5.0);
  EXPECT_DOUBLE_EQ(doc.Find("gauges")->Find("g")->num(), 1.5);
  EXPECT_DOUBLE_EQ(doc.Find("stats")->Find("s")->Find("mean")->num(), 2.0);
  EXPECT_DOUBLE_EQ(doc.Find("histograms")->Find("h")->Find("count")->num(), 1.0);
}

TEST(Obs, SimulatorProfilingAndQueueDepth) {
  sim::Simulator sim;
  EXPECT_EQ(sim.queue_depth(), 0u);
  sim.set_profiling(true);
  constexpr int kEvents = 1000;
  for (int i = 0; i < kEvents; ++i) {
    sim.ScheduleAfter(sim::Duration{i}, [] {});
  }
  EXPECT_EQ(sim.queue_depth(), static_cast<std::size_t>(kEvents));
  sim.RunAll();
  EXPECT_EQ(sim.queue_depth(), 0u);

  const sim::SimProfile& p = sim.profile();
  EXPECT_EQ(p.events, static_cast<std::uint64_t>(kEvents));
  EXPECT_EQ(p.queue_high_water, static_cast<std::size_t>(kEvents));
  EXPECT_GT(p.run_wall_seconds, 0.0);
  EXPECT_GT(p.events_per_second(), 0.0);

  sim.ResetProfile();
  EXPECT_EQ(sim.profile().events, 0u);
}

TEST(Obs, SimHooksObserveEveryEvent) {
  struct CountingHooks final : sim::SimHooks {
    std::uint64_t executed = 0;
    std::uint64_t runs = 0;
    std::uint64_t events_reported = 0;
    void OnEventExecuted(sim::TimePoint, std::size_t) override { ++executed; }
    void OnRunCompleted(sim::TimePoint, sim::TimePoint, std::uint64_t events) override {
      ++runs;
      events_reported += events;
    }
  };

  sim::Simulator sim;
  CountingHooks hooks;
  sim.AddHooks(&hooks);
  for (int i = 0; i < 100; ++i) {
    sim.ScheduleAfter(sim::Duration{i * 10}, [] {});
  }
  sim.RunAll();
  EXPECT_EQ(hooks.executed, 100u);
  EXPECT_EQ(hooks.runs, 1u);
  EXPECT_EQ(hooks.events_reported, 100u);

  sim.ScheduleAfter(sim::Duration{1}, [] {});
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(hooks.executed, 101u);
  EXPECT_TRUE(sim.RemoveHooks(&hooks));
  EXPECT_FALSE(sim.RemoveHooks(&hooks));  // already gone
}

TEST(Obs, SimHooksFanOutToEveryObserver) {
  struct CountingHooks final : sim::SimHooks {
    std::uint64_t executed = 0;
    std::uint64_t runs = 0;
    void OnEventExecuted(sim::TimePoint, std::size_t) override { ++executed; }
    void OnRunCompleted(sim::TimePoint, sim::TimePoint, std::uint64_t) override {
      ++runs;
    }
  };

  sim::Simulator sim;
  CountingHooks first;
  CountingHooks second;
  sim.AddHooks(&first);
  sim.AddHooks(&second);
  sim.AddHooks(&second);  // duplicate registration is a no-op
  EXPECT_EQ(sim.hooks().size(), 2u);

  for (int i = 0; i < 50; ++i) {
    sim.ScheduleAfter(sim::Duration{i * 10}, [] {});
  }
  sim.RunAll();
  EXPECT_EQ(first.executed, 50u);
  EXPECT_EQ(second.executed, 50u);
  EXPECT_EQ(first.runs, 1u);
  EXPECT_EQ(second.runs, 1u);

  // Removing one observer must not disturb the other.
  EXPECT_TRUE(sim.RemoveHooks(&first));
  sim.ScheduleAfter(sim::Duration{1}, [] {});
  sim.RunAll();
  EXPECT_EQ(first.executed, 50u);
  EXPECT_EQ(second.executed, 51u);
  EXPECT_TRUE(sim.RemoveHooks(&second));
}

TEST(Obs, ProfilingSamplesCallbacks) {
  sim::Simulator sim;
  sim.set_profiling(true);
  sim.set_profile_sample_every(4);
  for (int i = 0; i < 100; ++i) sim.ScheduleAfter(sim::Duration{i}, [] {});
  sim.RunAll();
  const sim::SimProfile& p = sim.profile();
  EXPECT_EQ(p.events, 100u);
  EXPECT_EQ(p.callbacks_sampled, 25u);  // every 4th of 100
  // mean_callback_ns averages over sampled callbacks, not all events.
  if (p.callback_ns_total > 0) {
    EXPECT_GT(p.mean_callback_ns(), 0.0);
  }
}

TEST(TraceNames, SameLiteralInternsToSameId) {
  const obs::TraceName a{"test.interning.alpha"};
  const obs::TraceName b{"test.interning.alpha"};
  const obs::TraceName c{"test.interning.beta"};
  EXPECT_EQ(a.id, b.id);
  EXPECT_NE(a.id, c.id);
  EXPECT_NE(a.id, obs::kEmptyNameId);
}

TEST(TraceNames, NameTextRoundTrips) {
  const obs::TraceName name{"test.interning.roundtrip"};
  EXPECT_EQ(obs::TraceNameRegistry::Instance().NameOf(name.id),
            "test.interning.roundtrip");
  obs::TraceEvent e;
  e.name = name.id;
  EXPECT_EQ(e.name_text(), "test.interning.roundtrip");
}

TEST(TraceNames, PreInternedConstantsAreDistinct) {
  std::set<obs::NameId> ids{
      obs::names::kSimQueueDepth.id, obs::names::kSimRun.id,
      obs::names::kLinkDrop.id,      obs::names::kLinkTx.id,
      obs::names::kPktHop.id,        obs::names::kHarqChain.id,
      obs::names::kRanRlcBytes.id,   obs::names::kRanTransit.id,
      obs::names::kTbRtx.id,         obs::names::kTbTx.id,
      obs::names::kCcOveruse.id,     obs::names::kFrameEncoded.id,
  };
  EXPECT_EQ(ids.size(), 12u);
  EXPECT_EQ(ids.count(obs::kEmptyNameId), 0u);
}

TEST(TraceRecorder, ChunkedStorageSurvivesBoundaries) {
  // 5000 events crosses the 2048-event chunk boundary twice; order, count,
  // and layer accounting must be unaffected.
  obs::TraceRecorder recorder;
  constexpr std::size_t kN = 5000;
  for (std::size_t i = 0; i < kN; ++i) {
    obs::TraceEvent e;
    e.phase = obs::TraceEvent::Phase::kInstant;
    e.layer = i % 2 == 0 ? obs::Layer::kNet : obs::Layer::kRan;
    e.name = obs::names::kPktHop.id;
    e.ts = sim::TimePoint{} + sim::Duration{static_cast<std::int64_t>(i)};
    e.id = i;
    recorder.Emit(e);
  }
  EXPECT_EQ(recorder.size(), kN);
  EXPECT_EQ(recorder.CountLayer(obs::Layer::kNet), kN / 2);
  EXPECT_EQ(recorder.CountLayer(obs::Layer::kRan), kN / 2);

  std::uint64_t expected_id = 0;
  recorder.ForEach([&](const obs::TraceEvent& e) { EXPECT_EQ(e.id, expected_id++); });
  EXPECT_EQ(expected_id, kN);

  std::ostringstream os;
  recorder.WriteJson(os);
  EXPECT_NE(os.str().find("\"traceEvents\""), std::string::npos);

  recorder.Clear();
  EXPECT_EQ(recorder.size(), 0u);
  obs::TraceEvent again;
  again.layer = obs::Layer::kCc;
  recorder.Emit(again);
  EXPECT_EQ(recorder.size(), 1u);
  EXPECT_EQ(recorder.CountLayer(obs::Layer::kCc), 1u);
}

}  // namespace
