#include <chrono>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "ran/channel.hpp"
#include "ran/config.hpp"
#include "ran/cross_traffic.hpp"
#include "ran/grant_policy.hpp"
#include "ran/uplink.hpp"
#include "sim/simulator.hpp"

namespace athena::ran {
namespace {

using namespace std::chrono_literals;
using sim::kEpoch;

// ---------- RanConfig ----------

TEST(RanConfigTest, SlotCapacityMath) {
  RanConfig c;
  c.cell_ul_capacity_bps = 32e6;
  c.ul_slot_period = 2500us;
  // 32 Mbps × 2.5 ms / 8 = 10 kB per UL slot.
  EXPECT_EQ(c.SlotCapacityBytes(), 10'000u);
}

TEST(RanConfigTest, PaperCellMatchesSection3) {
  const auto c = RanConfig::PaperCell();
  EXPECT_EQ(c.ul_slot_period, 2500us);            // UL slot every 2.5 ms
  EXPECT_EQ(c.bsr_scheduling_delay, 10ms);        // §3.1
  EXPECT_EQ(c.rtx_delay, 10ms);                   // §3.2
  EXPECT_GT(c.proactive_grant_bytes, 0u);
}

TEST(RanConfigTest, NoProactivePreset) {
  EXPECT_EQ(RanConfig::PaperCellNoProactive().proactive_grant_bytes, 0u);
}

TEST(RanConfigTest, FddLikeHasPerSlotUplink) {
  const auto c = RanConfig::FddLikeCell();
  EXPECT_EQ(c.ul_slot_period, c.slot_duration);
}

// ---------- ChannelModel ----------

TEST(ChannelModelTest, PerfectNeverFails) {
  auto ch = ChannelModel::Perfect(sim::Rng{1});
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(ch.SampleCrcOk(0));
}

TEST(ChannelModelTest, BlerFrequency) {
  ChannelModel ch{{.base_bler = 0.2}, sim::Rng{1}};
  int fails = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) fails += ch.SampleCrcOk(0) ? 0 : 1;
  EXPECT_NEAR(static_cast<double>(fails) / n, 0.2, 0.02);
}

TEST(ChannelModelTest, RtxRoundsAreMoreRobust) {
  ChannelModel ch{{.base_bler = 0.4, .rtx_bler_factor = 0.5}, sim::Rng{1}};
  EXPECT_DOUBLE_EQ(ch.CurrentBler(0), 0.4);
  EXPECT_DOUBLE_EQ(ch.CurrentBler(1), 0.2);
  EXPECT_DOUBLE_EQ(ch.CurrentBler(2), 0.1);
}

TEST(ChannelModelTest, GilbertElliottTransitions) {
  ChannelModel ch{{.base_bler = 0.01,
                   .bad_state_bler = 0.9,
                   .p_good_to_bad = 0.5,
                   .p_bad_to_good = 0.5},
                  sim::Rng{1}};
  bool saw_bad = false;
  bool saw_good = false;
  for (int i = 0; i < 200; ++i) {
    ch.Tick();
    (ch.in_bad_state() ? saw_bad : saw_good) = true;
  }
  EXPECT_TRUE(saw_bad);
  EXPECT_TRUE(saw_good);
}

TEST(ChannelModelTest, DisabledBurstStateStaysGood) {
  ChannelModel ch{{.base_bler = 0.1}, sim::Rng{1}};
  for (int i = 0; i < 100; ++i) ch.Tick();
  EXPECT_FALSE(ch.in_bad_state());
}

TEST(ChannelModelTest, HandoversRecurNearTheConfiguredInterval) {
  ChannelModel::Config config;
  config.handover_interval = std::chrono::seconds{2};
  config.handover_duration = 100ms;
  ChannelModel ch{config, sim::Rng{1}};
  // 20 simulated seconds of 2.5 ms ticks → ~10 handovers (±25% jitter).
  std::int64_t in_handover_ticks = 0;
  for (int i = 0; i < 8000; ++i) {
    ch.Tick(2500us);
    in_handover_ticks += ch.in_handover() ? 1 : 0;
  }
  EXPECT_GE(ch.handovers(), 7u);
  EXPECT_LE(ch.handovers(), 13u);
  // Each handover holds ~40 ticks (100 ms / 2.5 ms).
  EXPECT_NEAR(static_cast<double>(in_handover_ticks),
              static_cast<double>(ch.handovers()) * 40.0, 45.0);
}

TEST(ChannelModelTest, HandoverBlocksDecoding) {
  ChannelModel::Config config;
  config.base_bler = 0.0;
  config.handover_interval = std::chrono::milliseconds{10};
  config.handover_duration = std::chrono::seconds{100};  // effectively forever
  ChannelModel ch{config, sim::Rng{1}};
  for (int i = 0; i < 100; ++i) ch.Tick(2500us);  // enter the handover
  ASSERT_TRUE(ch.in_handover());
  EXPECT_GT(ch.CurrentBler(0), 0.9);
}

TEST(ChannelModelTest, NoHandoversByDefault) {
  ChannelModel ch{{.base_bler = 0.1}, sim::Rng{1}};
  for (int i = 0; i < 10'000; ++i) ch.Tick();
  EXPECT_EQ(ch.handovers(), 0u);
}

// ---------- CrossTraffic ----------

TEST(CrossTrafficTest, IdleHasNoDemand) {
  auto cross = CrossTraffic::Idle(sim::Rng{1});
  EXPECT_EQ(cross.DemandBytes(kEpoch + 1s, 2500us), 0u);
}

TEST(CrossTrafficTest, DemandFollowsTrace) {
  CrossTraffic cross{{net::CapacityTrace{16e6}, 0.0}, sim::Rng{1}};
  // 16 Mbps × 2.5 ms / 8 = 5000 bytes per slot.
  EXPECT_EQ(cross.DemandBytes(kEpoch, 2500us), 5000u);
}

TEST(CrossTrafficTest, BurstinessPreservesMean) {
  CrossTraffic cross{{net::CapacityTrace{16e6}, 0.4}, sim::Rng{1}};
  double total = 0.0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) total += cross.DemandBytes(kEpoch, 2500us);
  EXPECT_NEAR(total / n, 5000.0, 150.0);
}

// ---------- BsrGrantPolicy ----------

TEST(BsrGrantPolicyTest, ProactiveWhenNothingPending) {
  BsrGrantPolicy policy{RanConfig::PaperCell()};
  const auto d = policy.OnUplinkSlot({kEpoch + 2500us, 100'000});
  EXPECT_EQ(d.grant, GrantType::kProactive);
  EXPECT_EQ(d.tbs_bytes, RanConfig::PaperCell().proactive_grant_bytes);
}

TEST(BsrGrantPolicyTest, ProactiveClippedByCapacity) {
  BsrGrantPolicy policy{RanConfig::PaperCell()};
  const auto d = policy.OnUplinkSlot({kEpoch + 2500us, 1000});
  EXPECT_EQ(d.tbs_bytes, 1000u);
}

TEST(BsrGrantPolicyTest, RequestedGrantMaturesAfterSchedulingDelay) {
  const auto cell = RanConfig::PaperCell();
  BsrGrantPolicy policy{cell};
  policy.OnBsrDecoded(kEpoch + 2500us, 8000);
  // Before maturity: still proactive.
  EXPECT_EQ(policy.OnUplinkSlot({kEpoch + 5000us, 100'000}).grant, GrantType::kProactive);
  EXPECT_EQ(policy.OnUplinkSlot({kEpoch + 10'000us, 100'000}).grant, GrantType::kProactive);
  // 2.5 ms + 10 ms = 12.5 ms, already slot-aligned.
  const auto d = policy.OnUplinkSlot({kEpoch + 12'500us, 100'000});
  EXPECT_EQ(d.grant, GrantType::kRequested);
  EXPECT_EQ(d.tbs_bytes, 8000u);
}

TEST(BsrGrantPolicyTest, OutstandingPreventsDuplicateGrants) {
  BsrGrantPolicy policy{RanConfig::PaperCell()};
  policy.OnBsrDecoded(kEpoch, 8000);
  policy.OnBsrDecoded(kEpoch + 2500us, 6000);  // covered by the first grant
  EXPECT_EQ(policy.outstanding_requested_bytes(), 8000u);
  policy.OnBsrDecoded(kEpoch + 5000us, 9000);  // 1000 beyond coverage
  EXPECT_EQ(policy.outstanding_requested_bytes(), 9000u);
}

TEST(BsrGrantPolicyTest, CapacityClippingCarriesOver) {
  BsrGrantPolicy policy{RanConfig::PaperCell()};
  policy.OnBsrDecoded(kEpoch, 8000);
  const auto first = policy.OnUplinkSlot({kEpoch + 10'000us, 3000});
  EXPECT_EQ(first.grant, GrantType::kRequested);
  EXPECT_EQ(first.tbs_bytes, 3000u);
  const auto second = policy.OnUplinkSlot({kEpoch + 12'500us, 100'000});
  EXPECT_EQ(second.grant, GrantType::kRequested);
  EXPECT_EQ(second.tbs_bytes, 5000u);  // the clipped remainder
}

TEST(BsrGrantPolicyTest, MaturityAlignsToSlotGrid) {
  BsrGrantPolicy policy{RanConfig::PaperCell()};
  // BSR decoded off-grid: 3.1 ms + 10 ms = 13.1 ms → aligned up to 15 ms.
  policy.OnBsrDecoded(kEpoch + 3100us, 4000);
  EXPECT_EQ(policy.OnUplinkSlot({kEpoch + 12'500us, 100'000}).grant, GrantType::kProactive);
  EXPECT_EQ(policy.OnUplinkSlot({kEpoch + 15'000us, 100'000}).grant, GrantType::kRequested);
}

// ---------- RanUplink (integration of UE + scheduler + HARQ) ----------

class RanUplinkTest : public ::testing::Test {
 protected:
  struct Delivery {
    net::Packet pkt;
    sim::TimePoint at;
  };

  void Build(RanConfig config, ChannelModel::Config channel = {.base_bler = 0.0},
             double cross_bps = 0.0) {
    config_ = config;
    ran_ = std::make_unique<RanUplink>(
        sim_, config, ChannelModel{channel, sim::Rng{5}},
        CrossTraffic{{net::CapacityTrace{cross_bps}, 0.0}, sim::Rng{6}});
    ran_->set_core_sink([this](const net::Packet& p) {
      deliveries_.push_back({p, sim_.Now()});
    });
    ran_->Start();
  }

  void SendAt(sim::Duration when, net::PacketId id, std::uint32_t bytes) {
    sim_.ScheduleAt(kEpoch + when, [this, id, bytes] {
      net::Packet p;
      p.id = id;
      p.kind = net::PacketKind::kRtpVideo;
      p.size_bytes = bytes;
      p.created_at = sim_.Now();
      ran_->SendFromUe(p);
    });
  }

  const Delivery* Find(net::PacketId id) const {
    for (const auto& d : deliveries_) {
      if (d.pkt.id == id) return &d;
    }
    return nullptr;
  }

  sim::Simulator sim_;
  RanConfig config_;
  std::unique_ptr<RanUplink> ran_;
  std::vector<Delivery> deliveries_;
};

TEST_F(RanUplinkTest, SinglePacketRidesNextProactiveSlot) {
  Build(RanConfig::PaperCell());
  SendAt(1ms, 1, 1200);  // next eligible slot: 2.5 ms
  sim_.RunUntil(kEpoch + 100ms);
  const auto* d = Find(1);
  ASSERT_NE(d, nullptr);
  // Delivered at the slot + gNB→core transfer.
  EXPECT_EQ(d->at, kEpoch + 2500us + config_.gnb_to_core_delay);
}

TEST_F(RanUplinkTest, UeProcessingDelayPushesToNextSlot) {
  Build(RanConfig::PaperCell());
  SendAt(2300us, 1, 1200);  // only 200 µs before the 2.5 ms slot (< 500 µs proc)
  sim_.RunUntil(kEpoch + 100ms);
  const auto* d = Find(1);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->at, kEpoch + 5000us + config_.gnb_to_core_delay);
}

TEST_F(RanUplinkTest, DeliveriesQuantizedToSlotGrid) {
  Build(RanConfig::PaperCell());
  for (int i = 0; i < 40; ++i) {
    SendAt(sim::Duration{i * 7'300}, static_cast<net::PacketId>(i + 1), 900);
  }
  sim_.RunUntil(kEpoch + 2s);
  ASSERT_EQ(deliveries_.size(), 40u);
  for (const auto& d : deliveries_) {
    const auto on_air = d.at - config_.gnb_to_core_delay;
    EXPECT_EQ(on_air.us() % config_.ul_slot_period.count(), 0)
        << "delivery not on the UL slot grid";
  }
}

TEST_F(RanUplinkTest, FrameBurstTricklesThenBsrGrantFlushes) {
  Build(RanConfig::PaperCell());
  // A 9-packet video frame burst (10.8 kB) at t = 1 ms; proactive TBs are
  // 2500 B, so ~2 packets leave per slot until the BSR grant matures.
  for (int i = 0; i < 9; ++i) SendAt(1ms, static_cast<net::PacketId>(i + 1), 1200);
  sim_.RunUntil(kEpoch + 200ms);
  ASSERT_EQ(deliveries_.size(), 9u);

  // First packets at the first slot, last ones only after the BSR grant:
  const auto first = deliveries_.front().at - config_.gnb_to_core_delay;
  const auto last = deliveries_.back().at - config_.gnb_to_core_delay;
  EXPECT_EQ(first, kEpoch + 2500us);
  // BSR sent at 2.5 ms matures at 12.5 ms.
  EXPECT_EQ(last, kEpoch + 12'500us);

  // The frame-level delay spread is a multiple of the slot period (§3.1).
  const auto spread = last - first;
  EXPECT_EQ(spread.count() % config_.ul_slot_period.count(), 0);
  EXPECT_EQ(spread, 10ms);
}

TEST_F(RanUplinkTest, OverGrantingWastesRequestedBytes) {
  Build(RanConfig::PaperCell());
  for (int i = 0; i < 9; ++i) SendAt(1ms, static_cast<net::PacketId>(i + 1), 1200);
  sim_.RunUntil(kEpoch + 200ms);
  // Proactive TBs drained most of the buffer during the scheduling delay,
  // so the requested grant is (mostly) wasted — the §3.1 pathology.
  EXPECT_GT(ran_->counters().wasted_requested_bytes, 0u);
}

TEST_F(RanUplinkTest, WithoutProactiveEverythingWaitsForBsr) {
  Build(RanConfig::PaperCellNoProactive());
  SendAt(1ms, 1, 1200);
  sim_.RunUntil(kEpoch + 200ms);
  const auto* d = Find(1);
  ASSERT_NE(d, nullptr);
  // SR at 2.5 ms (no PUSCH to ride) → grant at 12.5 ms.
  EXPECT_EQ(d->at, kEpoch + 12'500us + config_.gnb_to_core_delay);
}

TEST_F(RanUplinkTest, HarqRetransmissionAddsExactlyOneRtxDelay) {
  // First transmission always fails, first retransmission always succeeds.
  Build(RanConfig::PaperCell(), {.base_bler = 1.0, .rtx_bler_factor = 0.0});
  SendAt(1ms, 1, 1200);
  sim_.RunUntil(kEpoch + 200ms);
  const auto* d = Find(1);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->at, kEpoch + 2500us + config_.rtx_delay + config_.gnb_to_core_delay);
  EXPECT_GE(ran_->counters().tb_rtx, 1u);
}

TEST_F(RanUplinkTest, RepeatedFailuresInflateByRtxMultiples) {
  // Fail twice, succeed on the third round: bler 1.0 with factor 1.0 for
  // round 1, then 0 — emulate via factor so round2 bler = 1*1*0... use a
  // channel failing rounds 0 and 1 only.
  ChannelModel::Config ch;
  ch.base_bler = 1.0;
  ch.rtx_bler_factor = 0.0;  // round 1 succeeds...
  // To force two failures we instead allow max rounds and check multiples
  // over many packets with a 50% channel.
  Build(RanConfig::PaperCell(), {.base_bler = 0.5, .rtx_bler_factor = 1.0});
  for (int i = 0; i < 60; ++i) {
    SendAt(sim::Duration{i * 7'500}, static_cast<net::PacketId>(i + 1), 800);
  }
  sim_.RunUntil(kEpoch + 3s);
  // Every delivery sits on the slot grid offset by k × 10 ms (k ≥ 0).
  for (const auto& d : deliveries_) {
    const auto on_air = (d.at - config_.gnb_to_core_delay).us();
    EXPECT_EQ(on_air % 2500, 0);
  }
  EXPECT_GT(ran_->counters().tb_rtx, 0u);
}

TEST_F(RanUplinkTest, ChainDropLosesPacket) {
  Build(RanConfig::PaperCell(), {.base_bler = 1.0, .rtx_bler_factor = 1.0});
  SendAt(1ms, 1, 1200);
  sim_.RunUntil(kEpoch + 500ms);
  EXPECT_EQ(Find(1), nullptr);
  EXPECT_EQ(ran_->counters().packets_lost, 1u);
  EXPECT_GT(ran_->counters().tb_dropped_chains, 0u);
}

TEST_F(RanUplinkTest, EmptyTbsAreRetransmittedToo) {
  // §3.2: the base station mandates retransmission of empty TBs as well.
  Build(RanConfig::PaperCell(), {.base_bler = 0.5, .rtx_bler_factor = 1.0});
  sim_.RunUntil(kEpoch + 1s);  // no traffic at all
  EXPECT_GT(ran_->counters().empty_tb_transmissions, 0u);
  EXPECT_GT(ran_->counters().empty_tb_rtx, 0u);
}

TEST_F(RanUplinkTest, FifoOrderPreservedAtCore) {
  Build(RanConfig::PaperCell(), {.base_bler = 0.3, .rtx_bler_factor = 0.0});
  for (int i = 0; i < 50; ++i) {
    SendAt(sim::Duration{i * 3'000}, static_cast<net::PacketId>(i + 1), 1000);
  }
  sim_.RunUntil(kEpoch + 3s);
  ASSERT_EQ(deliveries_.size(), 50u);
  // HARQ can reorder around a retransmission, but *within* a TB chain and
  // for packets sharing TBs order holds. Check at least nondecreasing
  // delivery times and full delivery.
  for (std::size_t i = 1; i < deliveries_.size(); ++i) {
    EXPECT_GE(deliveries_[i].at, deliveries_[i - 1].at);
  }
}

TEST_F(RanUplinkTest, TelemetryByteConservation) {
  Build(RanConfig::PaperCell());
  for (int i = 0; i < 20; ++i) {
    SendAt(sim::Duration{i * 5'000}, static_cast<net::PacketId>(i + 1), 1100);
  }
  sim_.RunUntil(kEpoch + 1s);
  // Sum of telemetry used bytes equals total offered bytes.
  std::uint64_t used = 0;
  for (const auto& tb : ran_->telemetry()) {
    if (tb.harq_round == 0) used += tb.used_bytes;
  }
  EXPECT_EQ(used, 20u * 1100u);
  // Ground truth segments agree per chain.
  std::uint64_t truth_bytes = 0;
  for (const auto& t : ran_->truth()) {
    for (const auto& s : t.segments) truth_bytes += s.bytes;
  }
  EXPECT_EQ(truth_bytes, used);
}

TEST_F(RanUplinkTest, TelemetryRecordsGrantTypes) {
  Build(RanConfig::PaperCell());
  for (int i = 0; i < 9; ++i) SendAt(1ms, static_cast<net::PacketId>(i + 1), 1200);
  sim_.RunUntil(kEpoch + 100ms);
  bool saw_proactive = false;
  bool saw_requested = false;
  for (const auto& tb : ran_->telemetry()) {
    saw_proactive |= tb.grant == GrantType::kProactive;
    saw_requested |= tb.grant == GrantType::kRequested;
  }
  EXPECT_TRUE(saw_proactive);
  EXPECT_TRUE(saw_requested);
}

TEST_F(RanUplinkTest, CrossTrafficShrinksAvailableCapacity) {
  // Cell 25 Mbps, cross traffic 24 Mbps → ~312 B/slot for our UE.
  RanConfig cell = RanConfig::PaperCell();
  cell.cell_ul_capacity_bps = 25e6;
  Build(cell, {.base_bler = 0.0}, 24e6);
  for (int i = 0; i < 8; ++i) SendAt(1ms, static_cast<net::PacketId>(i + 1), 1200);
  sim_.RunUntil(kEpoch + 2s);
  ASSERT_EQ(deliveries_.size(), 8u);
  const auto last = deliveries_.back().at;
  // With full capacity this flushes by ~13.5 ms; under contention it takes
  // far longer.
  EXPECT_GT(last, kEpoch + 40ms);
}

TEST_F(RanUplinkTest, FddDeliversSinglePacketsFaster) {
  Build(RanConfig::FddLikeCell());
  SendAt(1ms, 1, 400);
  sim_.RunUntil(kEpoch + 100ms);
  const auto* d = Find(1);
  ASSERT_NE(d, nullptr);
  // Next 0.5 ms slot respecting the 0.5 ms processing delay: 1.5 ms.
  EXPECT_LE(d->at, kEpoch + 2ms + config_.gnb_to_core_delay);
}

TEST_F(RanUplinkTest, ObservedCapacityTraceReflectsGrantedTbs) {
  Build(RanConfig::PaperCell());
  sim_.RunUntil(kEpoch + 2s);  // proactive grants only
  const auto trace = ran_->ObservedCapacityTrace(1s);
  ASSERT_FALSE(trace.empty());
  // 2500 B per 2.5 ms = 8 Mbps of granted capacity.
  EXPECT_NEAR(trace.At(kEpoch + 500ms), 8e6, 0.1e6);
}

TEST_F(RanUplinkTest, BufferDrainsToZero) {
  Build(RanConfig::PaperCell());
  for (int i = 0; i < 9; ++i) SendAt(1ms, static_cast<net::PacketId>(i + 1), 1200);
  sim_.RunUntil(kEpoch + 100ms);
  EXPECT_EQ(ran_->buffer_bytes(), 0u);
  EXPECT_EQ(ran_->counters().packets_delivered, 9u);
}

TEST_F(RanUplinkTest, HandoverQueuesInsteadOfLosing) {
  ran::RanConfig cell = ran::RanConfig::PaperCell();
  ChannelModel::Config channel;
  channel.base_bler = 0.0;
  channel.handover_interval = std::chrono::milliseconds{200};
  channel.handover_duration = std::chrono::milliseconds{150};
  Build(cell, channel);
  for (int i = 0; i < 100; ++i) {
    SendAt(sim::Duration{i * 10'000}, static_cast<net::PacketId>(i + 1), 800);
  }
  sim_.RunUntil(kEpoch + 5s);
  // Every packet arrives (handover parks, never drops)...
  EXPECT_EQ(deliveries_.size(), 100u);
  EXPECT_EQ(ran_->counters().packets_lost, 0u);
  // ...but some carried the outage in their delay.
  sim::Duration worst{0};
  for (std::size_t i = 0; i < deliveries_.size(); ++i) {
    const auto sent = kEpoch + sim::Duration{static_cast<std::int64_t>(i) * 10'000};
    worst = std::max(worst, deliveries_[i].at - sent);
  }
  EXPECT_GT(worst, 100ms);
}

TEST_F(RanUplinkTest, GrantUtilizationLowWhenIdle) {
  Build(RanConfig::PaperCell());
  SendAt(1ms, 1, 1200);
  sim_.RunUntil(kEpoch + 1s);
  // One packet against a second of proactive grants: utilization ≈ 0.
  EXPECT_LT(ran_->counters().GrantUtilization(), 0.01);
}

}  // namespace
}  // namespace athena::ran
