// Fault-injection layer tests: per-model behaviour, determinism of the
// (plan, seed) → impaired-stream mapping, the live interposer, the
// release-mode precondition checks, the telemetry_gap detector, and the
// chaos harness invariants.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "fault/chaos.hpp"
#include "fault/fault.hpp"
#include "obs/live/detectors.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"

namespace athena {
namespace {

using namespace std::chrono_literals;
using fault::FaultInjector;
using fault::FaultPlan;
using fault::Stream;
using sim::kEpoch;

/// A busy, regular telemetry stream: one round-0 TB per 2.5 ms slot.
std::vector<ran::TbRecord> MakeTelemetry(std::size_t n) {
  std::vector<ran::TbRecord> records;
  records.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ran::TbRecord tb;
    tb.tb_id = i + 1;
    tb.chain_id = i + 1;
    tb.slot_time = kEpoch + i * 2500us;
    tb.tbs_bytes = 1500;
    tb.used_bytes = 1200;
    records.push_back(tb);
  }
  return records;
}

std::uint64_t DigestOf(const std::vector<ran::TbRecord>& records) {
  fault::InputDigest digest;
  digest.Mix(records);
  return digest.value();
}

TEST(FaultInjectorTest, InactivePlanIsPassThrough) {
  auto records = MakeTelemetry(100);
  const auto before = DigestOf(records);
  FaultInjector injector{FaultPlan{}, 7};
  injector.Apply(Stream::kTelemetry, records);
  EXPECT_EQ(DigestOf(records), before);
  EXPECT_EQ(injector.stats().For(Stream::kTelemetry).seen, 100u);
  EXPECT_EQ(injector.stats().total_faults(), 0u);
}

TEST(FaultInjectorTest, SamePlanAndSeedIsByteIdentical) {
  FaultPlan plan;
  auto& spec = plan.For(Stream::kTelemetry);
  spec.drop = 0.2;
  spec.duplicate = 0.1;
  spec.reorder = 0.15;
  spec.delay = 0.1;
  spec.delay_min = 1ms;
  spec.delay_max = 10ms;
  spec.corrupt = 0.05;

  auto a = MakeTelemetry(500);
  auto b = MakeTelemetry(500);
  FaultInjector ia{plan, 1234};
  FaultInjector ib{plan, 1234};
  ia.Apply(Stream::kTelemetry, a);
  ib.Apply(Stream::kTelemetry, b);
  EXPECT_EQ(DigestOf(a), DigestOf(b));
  EXPECT_EQ(ia.stats().total_faults(), ib.stats().total_faults());

  // A different seed produces a different impairment of the same stream.
  auto c = MakeTelemetry(500);
  FaultInjector ic{plan, 1235};
  ic.Apply(Stream::kTelemetry, c);
  EXPECT_NE(DigestOf(a), DigestOf(c));
}

TEST(FaultInjectorTest, StreamsDrawFromIndependentSubStreams) {
  // Impairing the telemetry must not perturb the capture stream's draws:
  // applying them in either order yields the same capture output.
  FaultPlan plan;
  plan.For(Stream::kTelemetry).drop = 0.5;
  plan.For(Stream::kCoreCapture).drop = 0.5;

  std::vector<net::CaptureRecord> cap1, cap2;
  for (std::size_t i = 0; i < 300; ++i) {
    net::CaptureRecord r;
    r.packet_id = i + 1;
    r.local_ts = kEpoch + i * 1ms;
    r.size_bytes = 1200;
    cap1.push_back(r);
    cap2.push_back(r);
  }
  auto tele = MakeTelemetry(300);

  FaultInjector first{plan, 99};
  first.Apply(Stream::kTelemetry, tele);   // telemetry first
  first.Apply(Stream::kCoreCapture, cap1);

  FaultInjector second{plan, 99};
  second.Apply(Stream::kCoreCapture, cap2);  // capture first
  fault::InputDigest d1, d2;
  d1.Mix(cap1);
  d2.Mix(cap2);
  EXPECT_EQ(d1.value(), d2.value());
}

TEST(FaultInjectorTest, DropRateMatchesProbability) {
  FaultPlan plan;
  plan.For(Stream::kTelemetry).drop = 0.3;
  auto records = MakeTelemetry(10'000);
  FaultInjector injector{plan, 5};
  injector.Apply(Stream::kTelemetry, records);
  const auto& st = injector.stats().For(Stream::kTelemetry);
  EXPECT_NEAR(static_cast<double>(st.dropped) / 10'000.0, 0.3, 0.03);
  EXPECT_EQ(records.size(), 10'000u - st.dropped);
}

TEST(FaultInjectorTest, OutageRemovesOnlyTheWindow) {
  FaultPlan plan;
  plan.For(Stream::kTelemetry).outage_begin = kEpoch + 100ms;
  plan.For(Stream::kTelemetry).outage_end = kEpoch + 200ms;
  auto records = MakeTelemetry(200);  // 0 .. 497.5ms
  FaultInjector injector{plan, 5};
  injector.Apply(Stream::kTelemetry, records);
  for (const auto& tb : records) {
    EXPECT_TRUE(tb.slot_time < kEpoch + 100ms || tb.slot_time >= kEpoch + 200ms);
  }
  EXPECT_EQ(injector.stats().For(Stream::kTelemetry).outage_dropped, 40u);
}

TEST(FaultInjectorTest, TruncationCutsTheTailOfTheSpan) {
  FaultPlan plan;
  plan.For(Stream::kTelemetry).truncate_after_fraction = 0.5;
  auto records = MakeTelemetry(200);
  FaultInjector injector{plan, 5};
  injector.Apply(Stream::kTelemetry, records);
  ASSERT_FALSE(records.empty());
  const sim::TimePoint cutoff = kEpoch + (199 * 2500us).count() / 2 * 1us;
  for (const auto& tb : records) EXPECT_LE(tb.slot_time, cutoff);
  EXPECT_GT(injector.stats().For(Stream::kTelemetry).truncated, 90u);
}

TEST(FaultInjectorTest, ReorderDisplacementIsBounded) {
  FaultPlan plan;
  plan.For(Stream::kTelemetry).reorder = 1.0;
  plan.For(Stream::kTelemetry).reorder_depth = 4;
  auto records = MakeTelemetry(300);
  FaultInjector injector{plan, 11};
  injector.Apply(Stream::kTelemetry, records);
  ASSERT_EQ(records.size(), 300u);  // reordering never loses records

  // Every record may land at most reorder_depth positions late and, by
  // displacement symmetry, reorder_depth early.
  for (std::size_t pos = 0; pos < records.size(); ++pos) {
    const auto original = static_cast<std::int64_t>(records[pos].tb_id) - 1;
    const auto delta = std::llabs(static_cast<std::int64_t>(pos) - original);
    EXPECT_LE(delta, 4 + 4) << "tb " << records[pos].tb_id << " at " << pos;
  }
}

TEST(FaultInjectorTest, ClockStepShiftsRecordsAtAndAfterTheStep) {
  FaultPlan plan;
  plan.For(Stream::kTelemetry).clock_step = 15ms;
  plan.For(Stream::kTelemetry).clock_step_at = kEpoch + 250ms;
  auto records = MakeTelemetry(200);
  FaultInjector injector{plan, 5};
  injector.Apply(Stream::kTelemetry, records);
  for (const auto& tb : records) {
    const auto original = kEpoch + (tb.tb_id - 1) * 2500us;
    if (original >= kEpoch + 250ms) {
      EXPECT_EQ(tb.slot_time, original + 15ms);
    } else {
      EXPECT_EQ(tb.slot_time, original);
    }
  }
  EXPECT_GT(injector.stats().For(Stream::kTelemetry).clock_stepped, 0u);
}

TEST(FaultInjectorTest, CorruptedRecordsStayConsumable) {
  FaultPlan plan;
  plan.For(Stream::kTelemetry).corrupt = 1.0;
  auto records = MakeTelemetry(500);
  FaultInjector injector{plan, 21};
  injector.Apply(Stream::kTelemetry, records);
  ASSERT_EQ(records.size(), 500u);
  EXPECT_EQ(injector.stats().For(Stream::kTelemetry).corrupted, 500u);
  for (const auto& tb : records) {
    EXPECT_LE(tb.used_bytes, tb.tbs_bytes);  // wrong values, never invalid ones
  }
}

TEST(FaultInjectorTest, WrapDropsDuplicatesAndDelaysDeterministically) {
  auto run_once = [](std::uint64_t seed) {
    sim::Simulator sim;
    FaultPlan plan;
    auto& spec = plan.For(Stream::kPackets);
    spec.drop = 0.3;
    spec.duplicate = 0.2;
    spec.delay = 0.2;
    spec.delay_min = 1ms;
    spec.delay_max = 5ms;
    FaultInjector injector{plan, seed};

    std::vector<std::uint64_t> delivered;
    net::PacketHandler wrapped = injector.Wrap(
        sim, [&](const net::Packet& p) { delivered.push_back(p.id); });
    for (std::uint64_t i = 0; i < 200; ++i) {
      sim.ScheduleAt(kEpoch + i * 1ms, [&, i] {
        net::Packet p;
        p.id = i + 1;
        p.size_bytes = 1200;
        wrapped(p);
      });
    }
    sim.RunFor(1s);
    return delivered;
  };

  const auto a = run_once(77);
  const auto b = run_once(77);
  EXPECT_EQ(a, b);  // same seed → identical impaired delivery sequence
  EXPECT_LT(a.size(), 200u + 60u);
  EXPECT_GT(a.size(), 100u);  // drops happened, but far from everything

  const auto c = run_once(78);
  EXPECT_NE(a, c);
}

// --- release-mode precondition checks (satellite: no assert-only guards) ---

TEST(EventQueueCheckDeathTest, PopOnEmptyQueueAbortsWithDiagnostic) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  sim::EventQueue queue;
  EXPECT_DEATH(queue.PopNext(), "ATHENA_CHECK failed");
  EXPECT_DEATH((void)queue.next_time(), "ATHENA_CHECK failed");
}

TEST(EventQueueCheckDeathTest, EmptyCallbackIsRejected) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  sim::EventQueue queue;
  EXPECT_DEATH(queue.Schedule(kEpoch, sim::EventQueue::Callback{}),
               "ATHENA_CHECK failed");
}

// --- the telemetry_gap detector (degradation contract, live side) ---

obs::live::TbObservation Tb(sim::TimePoint t, std::uint32_t used) {
  obs::live::TbObservation tb;
  tb.slot_time = t;
  tb.tbs_bytes = 1500;
  tb.used_bytes = used;
  return tb;
}

obs::live::Delivery Deliver(sim::TimePoint t, std::uint32_t bytes) {
  obs::live::Delivery d;
  d.packet_id = static_cast<std::uint64_t>(t.us());
  d.enqueued_at = t;
  d.delivered_at = t;
  d.bytes = bytes;
  return d;
}

TEST(TelemetryGapDetectorTest, QuietOnAHealthyFeed) {
  obs::live::DetectorBank bank;
  // TBs and deliveries interleaved, bytes conserved.
  for (int i = 0; i < 2000; ++i) {
    const sim::TimePoint t = kEpoch + i * 2500us;
    bank.OnTb(Tb(t, 1200));
    bank.OnDelivery(Deliver(t + 500us, 1200));
  }
  EXPECT_EQ(bank.anomaly_count(obs::live::AnomalyKind::kTelemetryGap), 0u);
}

TEST(TelemetryGapDetectorTest, FiresWhenTheFeedGoesSilentUnderTraffic) {
  obs::live::DetectorBank bank;
  for (int i = 0; i < 200; ++i) {
    const sim::TimePoint t = kEpoch + i * 2500us;
    bank.OnTb(Tb(t, 1200));
    bank.OnDelivery(Deliver(t + 500us, 1200));
  }
  // The sniffer dies; the RAN keeps delivering.
  const sim::TimePoint silence = kEpoch + 200 * 2500us;
  for (int i = 0; i < 200; ++i) {
    bank.OnDelivery(Deliver(silence + i * 2500us, 1200));
  }
  EXPECT_GE(bank.anomaly_count(obs::live::AnomalyKind::kTelemetryGap), 1u);
}

TEST(TelemetryGapDetectorTest, FiresOnAByteConservationDeficit) {
  obs::live::DetectorBank bank;
  // No long silence — the feed ticks every slot — but the observed TBs
  // only account for half the delivered bytes (random record loss).
  for (int i = 0; i < 2000; ++i) {
    const sim::TimePoint t = kEpoch + i * 2500us;
    bank.OnTb(Tb(t, 600));
    bank.OnDelivery(Deliver(t + 500us, 1200));
  }
  EXPECT_GE(bank.anomaly_count(obs::live::AnomalyKind::kTelemetryGap), 1u);
}

// --- chaos harness invariants ---

TEST(ChaosTest, CatalogHasTheContractedBreadth) {
  const auto scenarios = fault::BuiltinScenarios();
  EXPECT_GE(scenarios.size(), 8u);
  EXPECT_NE(fault::FindScenario(scenarios, "clean_baseline"), nullptr);
  EXPECT_EQ(fault::FindScenario(scenarios, "no_such_scenario"), nullptr);
}

TEST(ChaosTest, CleanBaselineStaysPristine) {
  const auto scenarios = fault::BuiltinScenarios();
  const auto* clean = fault::FindScenario(scenarios, "clean_baseline");
  ASSERT_NE(clean, nullptr);
  const fault::ChaosOutcome o = fault::RunChaosScenario(*clean, 42);
  EXPECT_TRUE(o.ok()) << o.failure;
  EXPECT_FALSE(o.health_degraded);
  EXPECT_EQ(o.faults_injected, 0u);
  EXPECT_EQ(o.telemetry_gap_anomalies, 0u);
  EXPECT_GT(o.packets_correlated, 0u);
}

TEST(ChaosTest, LossyScenarioReportsDegradationLoudly) {
  const auto scenarios = fault::BuiltinScenarios();
  const auto* drop = fault::FindScenario(scenarios, "telemetry_drop");
  ASSERT_NE(drop, nullptr);
  const fault::ChaosOutcome o = fault::RunChaosScenario(*drop, 42);
  EXPECT_TRUE(o.ok()) << o.failure;
  EXPECT_TRUE(o.health_degraded);
  EXPECT_GE(o.telemetry_gap_anomalies, 1u);
  EXPECT_LT(o.mean_match_confidence, 0.95);
  EXPECT_GT(o.faults_injected, 0u);
}

TEST(ChaosTest, MatrixIsIdenticalForAnyJobCount) {
  auto scenarios = fault::BuiltinScenarios();
  scenarios.resize(3);  // clean + two lossy plans keeps this test quick
  const auto serial = fault::RunChaosMatrix(scenarios, 42, 2, 1);
  const auto parallel = fault::RunChaosMatrix(scenarios, 42, 2, 4);
  ASSERT_EQ(serial.outcomes.size(), parallel.outcomes.size());
  for (std::size_t i = 0; i < serial.outcomes.size(); ++i) {
    EXPECT_EQ(serial.outcomes[i].digest, parallel.outcomes[i].digest) << i;
    EXPECT_EQ(serial.outcomes[i].scenario, parallel.outcomes[i].scenario);
    EXPECT_EQ(serial.outcomes[i].ok(), parallel.outcomes[i].ok());
  }
}

}  // namespace
}  // namespace athena
