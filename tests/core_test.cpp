#include <chrono>

#include <gtest/gtest.h>

#include "app/session.hpp"
#include "core/analyzer.hpp"
#include "core/clock_sync.hpp"
#include "core/correlator.hpp"
#include "core/overuse_audit.hpp"
#include "core/report.hpp"
#include "fault/fault.hpp"
#include "sim/simulator.hpp"

#include <sstream>

namespace athena::core {
namespace {

using namespace std::chrono_literals;
using sim::kEpoch;

// ---------- ClockSync ----------

TEST(ClockSyncTest, ExchangeOffsetRecoveredOnSymmetricPath) {
  // B runs 3 ms ahead of A; path delay 10 ms each way.
  std::vector<ClockSync::ExchangeSample> samples;
  for (int i = 0; i < 9; ++i) {
    const auto t0 = kEpoch + sim::Duration{i * 100'000};
    samples.push_back({.t0 = t0,
                       .t1 = t0 + 10ms + 3ms,
                       .t2 = t0 + 11ms + 3ms,
                       .t3 = t0 + 21ms});
  }
  const auto offset = ClockSync::OffsetFromExchanges(samples);
  ASSERT_TRUE(offset.has_value());
  EXPECT_EQ(*offset, 3ms);
}

TEST(ClockSyncTest, ExchangeMedianRejectsOutliers) {
  std::vector<ClockSync::ExchangeSample> samples;
  for (int i = 0; i < 10; ++i) {
    const auto t0 = kEpoch + sim::Duration{i * 100'000};
    // One wildly asymmetric sample (slow forward, normal return).
    const auto fwd = (i == 3) ? 80ms : 10ms;
    const auto t1 = t0 + fwd + 3ms;   // B stamps with +3 ms offset
    const auto t2 = t1 + 1ms;         // B's turnaround
    const auto t3 = t2 - 3ms + 10ms;  // back on A's clock after 10 ms
    samples.push_back({.t0 = t0, .t1 = t1, .t2 = t2, .t3 = t3});
  }
  const auto offset = ClockSync::OffsetFromExchanges(samples);
  ASSERT_TRUE(offset.has_value());
  EXPECT_EQ(*offset, 3ms);
}

TEST(ClockSyncTest, EmptyExchangesGiveNothing) {
  EXPECT_FALSE(ClockSync::OffsetFromExchanges({}).has_value());
}

TEST(ClockSyncTest, MinOwdOffset) {
  // True min path delay 2 ms; B's clock is −5 ms relative to A's.
  std::vector<ClockSync::OwdPair> pairs;
  for (int i = 0; i < 50; ++i) {
    const auto a = kEpoch + sim::Duration{i * 10'000};
    const auto path = 2ms + sim::Duration{(i % 7) * 1500};  // ≥ 2 ms
    pairs.push_back({a, a + path - 5ms});
  }
  const auto offset = ClockSync::OffsetFromMinOwd(pairs, 2ms);
  ASSERT_TRUE(offset.has_value());
  EXPECT_EQ(*offset, -5ms);
}

TEST(ClockSyncTest, JoinCapturesMatchesByPacketId) {
  net::CaptureRecord a1{.packet_id = 1, .local_ts = kEpoch + 1ms};
  net::CaptureRecord a2{.packet_id = 2, .local_ts = kEpoch + 2ms};
  net::CaptureRecord b1{.packet_id = 1, .local_ts = kEpoch + 11ms};
  const auto pairs = ClockSync::JoinCaptures({a1, a2}, {b1});
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].a_ts, kEpoch + 1ms);
  EXPECT_EQ(pairs[0].b_ts, kEpoch + 11ms);
}

// ---------- Correlator on synthetic inputs ----------

class CorrelatorSyntheticTest : public ::testing::Test {
 protected:
  net::CaptureRecord SenderRecord(net::PacketId id, sim::TimePoint ts, std::uint32_t size,
                                  std::uint64_t frame_id = 0,
                                  net::PacketKind kind = net::PacketKind::kRtpVideo) {
    net::CaptureRecord r;
    r.packet_id = id;
    r.local_ts = ts;
    r.true_ts = ts;
    r.kind = kind;
    r.size_bytes = size;
    r.rtp = net::RtpMeta{.layer = net::SvcLayer::kBase,
                         .frame_id = frame_id,
                         .packets_in_frame = 1,
                         .packet_index_in_frame = 0};
    return r;
  }

  ran::TbRecord Tb(ran::TbId id, sim::TimePoint slot, std::uint32_t tbs, std::uint32_t used,
                   bool crc_ok = true, std::uint8_t round = 0, ran::TbId chain = 0) {
    return ran::TbRecord{.tb_id = id,
                         .chain_id = chain ? chain : id,
                         .slot_time = slot,
                         .grant = ran::GrantType::kProactive,
                         .tbs_bytes = tbs,
                         .used_bytes = used,
                         .harq_round = round,
                         .crc_ok = crc_ok};
  }
};

TEST_F(CorrelatorSyntheticTest, SinglePacketSingleTb) {
  CorrelatorInput input;
  input.sender = {SenderRecord(1, kEpoch + 1ms, 1000)};
  input.core = {{.packet_id = 1, .local_ts = kEpoch + 3500us}};
  input.telemetry = {Tb(1, kEpoch + 2500us, 2500, 1000)};
  const auto data = Correlator::Correlate(input);
  ASSERT_EQ(data.packets.size(), 1u);
  const auto& p = data.packets[0];
  EXPECT_EQ(p.tb_chains, std::vector<ran::TbId>{1});
  EXPECT_EQ(p.sched_wait, 1500us);
  EXPECT_EQ(p.transmission_spread, 0us);
  EXPECT_EQ(p.rtx_inflation, 0us);
  EXPECT_TRUE(p.reached_core);
  EXPECT_EQ(p.uplink_owd, 2500us);
  EXPECT_EQ(data.unmatched_tb_bytes, 0u);
  EXPECT_EQ(data.unmatched_packet_bytes, 0u);
}

TEST_F(CorrelatorSyntheticTest, PacketSpanningTwoTbs) {
  CorrelatorInput input;
  input.sender = {SenderRecord(1, kEpoch + 1ms, 3000, 11)};
  input.core = {{.packet_id = 1, .local_ts = kEpoch + 6ms}};
  input.telemetry = {Tb(1, kEpoch + 2500us, 2500, 2500), Tb(2, kEpoch + 5000us, 2500, 500)};
  const auto data = Correlator::Correlate(input);
  ASSERT_EQ(data.packets.size(), 1u);
  const auto& p = data.packets[0];
  EXPECT_EQ(p.tb_chains, (std::vector<ran::TbId>{1, 2}));
  EXPECT_EQ(p.transmission_spread, 2500us);  // trickled across one extra slot
}

TEST_F(CorrelatorSyntheticTest, RtxInflationMeasured) {
  CorrelatorInput input;
  input.sender = {SenderRecord(1, kEpoch + 1ms, 1000)};
  input.core = {{.packet_id = 1, .local_ts = kEpoch + 13'500us}};
  // First transmission fails, retransmission at +10 ms succeeds.
  input.telemetry = {Tb(1, kEpoch + 2500us, 2500, 1000, /*crc_ok=*/false),
                     Tb(2, kEpoch + 12'500us, 2500, 1000, true, /*round=*/1, /*chain=*/1)};
  input.cell = ran::RanConfig::PaperCell();
  const auto data = Correlator::Correlate(input);
  ASSERT_EQ(data.packets.size(), 1u);
  const auto& p = data.packets[0];
  EXPECT_EQ(p.rtx_inflation, 10ms);
  EXPECT_EQ(p.max_harq_rounds, 1);
  EXPECT_EQ(p.primary_cause, RootCause::kRetransmission);
}

TEST_F(CorrelatorSyntheticTest, FifoAssignmentAcrossPackets) {
  CorrelatorInput input;
  input.sender = {SenderRecord(1, kEpoch + 1ms, 1500, 1),
                  SenderRecord(2, kEpoch + 1ms, 1500, 1)};
  input.telemetry = {Tb(1, kEpoch + 2500us, 2500, 2500),  // pkt1 + 1000 of pkt2
                     Tb(2, kEpoch + 5000us, 2500, 500)};  // rest of pkt2
  const auto data = Correlator::Correlate(input);
  ASSERT_EQ(data.packets.size(), 2u);
  EXPECT_EQ(data.packets[0].tb_chains, std::vector<ran::TbId>{1});
  EXPECT_EQ(data.packets[1].tb_chains, (std::vector<ran::TbId>{1, 2}));
}

TEST_F(CorrelatorSyntheticTest, ClockOffsetIsApplied) {
  CorrelatorInput input;
  input.sender = {SenderRecord(1, kEpoch + 3ms, 1000)};  // sender clock +2 ms
  input.sender_offset = -2ms;
  input.core = {{.packet_id = 1, .local_ts = kEpoch + 3500us}};
  input.telemetry = {Tb(1, kEpoch + 2500us, 2500, 1000)};
  const auto data = Correlator::Correlate(input);
  EXPECT_EQ(data.packets[0].sent_at, kEpoch + 1ms);
  EXPECT_EQ(data.packets[0].uplink_owd, 2500us);
}

TEST_F(CorrelatorSyntheticTest, UnmatchedTbBytesWhenTelemetryExceedsCaptures) {
  CorrelatorInput input;
  input.sender = {SenderRecord(1, kEpoch + 1ms, 500)};
  input.telemetry = {Tb(1, kEpoch + 2500us, 2500, 1500)};  // 1000 phantom bytes
  const auto data = Correlator::Correlate(input);
  EXPECT_EQ(data.unmatched_tb_bytes, 1000u);
}

TEST_F(CorrelatorSyntheticTest, UnmatchedPacketBytesWhenTelemetryTruncated) {
  CorrelatorInput input;
  input.sender = {SenderRecord(1, kEpoch + 1ms, 500)};
  const auto data = Correlator::Correlate(input);
  EXPECT_EQ(data.unmatched_packet_bytes, 500u);
  EXPECT_TRUE(data.packets[0].tb_chains.empty());
}

TEST_F(CorrelatorSyntheticTest, FrameAggregation) {
  CorrelatorInput input;
  auto p1 = SenderRecord(1, kEpoch + 1ms, 1000, 5);
  auto p2 = SenderRecord(2, kEpoch + 1100us, 1000, 5);
  p1.rtp->packets_in_frame = 2;
  p1.rtp->packet_index_in_frame = 0;
  p2.rtp->packets_in_frame = 2;
  p2.rtp->packet_index_in_frame = 1;
  input.sender = {p1, p2};
  input.core = {{.packet_id = 1, .local_ts = kEpoch + 3500us},
                {.packet_id = 2, .local_ts = kEpoch + 6000us}};
  input.telemetry = {Tb(1, kEpoch + 2500us, 2500, 1000), Tb(2, kEpoch + 5000us, 2500, 1000)};
  const auto data = Correlator::Correlate(input);
  ASSERT_EQ(data.frames.size(), 1u);
  const auto& f = data.frames[0];
  EXPECT_TRUE(f.complete_at_core);
  EXPECT_EQ(f.packets, 2u);
  EXPECT_EQ(f.SenderSpread(), 100us);
  EXPECT_EQ(f.CoreSpread(), 2500us);
  EXPECT_EQ(f.FrameDelay(), 5ms);
}

TEST_F(CorrelatorSyntheticTest, IncompleteFrameFlagged) {
  CorrelatorInput input;
  auto p1 = SenderRecord(1, kEpoch + 1ms, 1000, 5);
  p1.rtp->packets_in_frame = 2;
  input.sender = {p1};
  input.core = {{.packet_id = 1, .local_ts = kEpoch + 3500us}};
  input.telemetry = {Tb(1, kEpoch + 2500us, 2500, 1000)};
  const auto data = Correlator::Correlate(input);
  ASSERT_EQ(data.frames.size(), 1u);
  EXPECT_FALSE(data.frames[0].complete_at_core);
}

TEST_F(CorrelatorSyntheticTest, FindHelpers) {
  CorrelatorInput input;
  input.sender = {SenderRecord(7, kEpoch + 1ms, 1000, 42)};
  input.telemetry = {Tb(1, kEpoch + 2500us, 2500, 1000)};
  const auto data = Correlator::Correlate(input);
  EXPECT_NE(data.FindPacket(7), nullptr);
  EXPECT_EQ(data.FindPacket(8), nullptr);
  EXPECT_NE(data.FindFrame(42), nullptr);
  EXPECT_EQ(data.FindFrame(43), nullptr);
}

TEST_F(CorrelatorSyntheticTest, RootCauseNames) {
  EXPECT_STREQ(ToString(RootCause::kBsrWait), "bsr-wait");
  EXPECT_STREQ(ToString(RootCause::kRetransmission), "retransmission");
}

// ---------- Correlator against ground truth (full session) ----------

class CorrelatorEndToEndTest : public ::testing::Test {
 protected:
  void Run(app::SessionConfig config, sim::Duration span = 10s) {
    session_ = std::make_unique<app::Session>(sim_, std::move(config));
    session_->Run(span);
    dataset_ = Correlator::Correlate(session_->BuildCorrelatorInput());
  }

  sim::Simulator sim_;
  std::unique_ptr<app::Session> session_;
  CrossLayerDataset dataset_;
};

TEST_F(CorrelatorEndToEndTest, ByteConservationHolds) {
  app::SessionConfig config;
  config.channel.base_bler = 0.08;
  Run(config);
  EXPECT_EQ(dataset_.unmatched_tb_bytes, 0u);
  // Packets still in flight at shutdown may be unmatched; nothing else.
  EXPECT_LT(dataset_.unmatched_packet_bytes, 20'000u);
}

TEST_F(CorrelatorEndToEndTest, UplinkOwdMatchesGroundTruthWithin1ms) {
  app::SessionConfig config;
  config.sender_clock_offset = 1500us;  // must be estimated away
  Run(config);
  const auto& sender_records = session_->sender_capture().records();
  const auto& core_records = session_->core_capture().records();
  std::unordered_map<net::PacketId, sim::TimePoint> true_send;
  for (const auto& r : sender_records) true_send[r.packet_id] = r.true_ts;
  std::unordered_map<net::PacketId, sim::TimePoint> true_core;
  for (const auto& r : core_records) true_core[r.packet_id] = r.true_ts;

  std::size_t checked = 0;
  for (const auto& p : dataset_.packets) {
    if (!p.reached_core) continue;
    const auto true_owd = true_core[p.packet_id] - true_send[p.packet_id];
    EXPECT_NEAR(sim::ToMs(p.uplink_owd), sim::ToMs(true_owd), 1.0);
    ++checked;
  }
  EXPECT_GT(checked, 500u);
}

TEST_F(CorrelatorEndToEndTest, TbMappingMatchesSimulatorTruth) {
  app::SessionConfig config;
  config.channel.base_bler = 0.1;
  Run(config);
  // Build packet → chain-set from the simulator's ground truth.
  std::unordered_map<net::PacketId, std::vector<ran::TbId>> truth;
  for (const auto& t : session_->ran_uplink()->truth()) {
    for (const auto& seg : t.segments) truth[seg.packet_id].push_back(t.chain_id);
  }
  std::size_t checked = 0;
  for (const auto& p : dataset_.packets) {
    if (p.tb_chains.empty()) continue;
    ASSERT_TRUE(truth.count(p.packet_id)) << "packet not in ground truth";
    EXPECT_EQ(p.tb_chains, truth[p.packet_id]) << "packet " << p.packet_id;
    ++checked;
  }
  EXPECT_GT(checked, 1000u);
}

TEST_F(CorrelatorEndToEndTest, RetransmittedPacketsClassified) {
  app::SessionConfig config;
  config.channel.base_bler = 0.3;
  Run(config);
  const auto breakdown = Analyzer::RootCauseBreakdown(dataset_);
  EXPECT_GT(breakdown.count(RootCause::kRetransmission), 0u);
  EXPECT_GT(breakdown.at(RootCause::kRetransmission), 0u);
}

// Regression: duplicated and out-of-order input records must be repaired
// (deduped, re-sorted), counted in StreamHealth, and must not change the
// correlation result relative to the clean feed.
TEST_F(CorrelatorEndToEndTest, DuplicateAndReorderedRecordsAreRepairedAndCounted) {
  Run(app::SessionConfig{});
  auto input = session_->BuildCorrelatorInput();

  fault::FaultPlan plan;
  for (auto stream : {fault::Stream::kTelemetry, fault::Stream::kSenderCapture}) {
    auto& spec = plan.For(stream);
    spec.duplicate = 0.2;
    spec.reorder = 0.25;
    spec.reorder_depth = 8;
  }
  fault::FaultInjector injector{plan, 77};
  injector.Apply(fault::Stream::kTelemetry, input.telemetry);
  injector.Apply(fault::Stream::kSenderCapture, input.sender);

  const auto impaired = Correlator::Correlate(input);

  // Duplicates and reorderings carry the same information as the clean
  // feed: the correlator must recover the identical per-packet dataset.
  ASSERT_EQ(impaired.packets.size(), dataset_.packets.size());
  for (std::size_t i = 0; i < impaired.packets.size(); ++i) {
    EXPECT_EQ(impaired.packets[i].packet_id, dataset_.packets[i].packet_id);
    EXPECT_EQ(impaired.packets[i].tb_chains, dataset_.packets[i].tb_chains);
  }
  EXPECT_EQ(impaired.unmatched_tb_bytes, dataset_.unmatched_tb_bytes);

  // ...but it must never hide that repairs happened.
  EXPECT_FALSE(dataset_.health.degraded());
  EXPECT_TRUE(impaired.health.degraded());
  EXPECT_GT(impaired.health.telemetry.duplicates_dropped, 0u);
  EXPECT_GT(impaired.health.telemetry.out_of_order, 0u);
  EXPECT_GT(impaired.health.sender.duplicates_dropped, 0u);
  EXPECT_GT(impaired.health.sender.out_of_order, 0u);
  EXPECT_EQ(impaired.health.telemetry.state, StreamHealth::State::kDegraded);
}

// ---------- Analyzer ----------

TEST_F(CorrelatorEndToEndTest, AnalyzerSeriesAndCdfsPopulated) {
  app::SessionConfig config;
  Run(config);

  const auto owd = Analyzer::UplinkOwdSeries(dataset_);
  EXPECT_GT(owd.size(), 1000u);

  const auto video = Analyzer::RanDelayCdf(dataset_, false);
  const auto audio = Analyzer::RanDelayCdf(dataset_, true);
  EXPECT_FALSE(video.empty());
  EXPECT_FALSE(audio.empty());
  // §2 Fig. 4: audio is less delayed than video at the median.
  EXPECT_LE(audio.Median(), video.Median() + 0.5);

  const auto spread = Analyzer::DelaySpreadCdf(dataset_, Analyzer::SpreadAt::kCore);
  EXPECT_FALSE(spread.empty());
  // §2 Fig. 5: spread quantized in UL-slot increments.
  EXPECT_GT(Analyzer::SpreadGridFraction(dataset_, 2500us, 100us), 0.95);

  const auto frame_delay = Analyzer::FrameDelayCdf(dataset_);
  EXPECT_FALSE(frame_delay.empty());

  const auto decomp = Analyzer::MeanDecomposition(dataset_);
  EXPECT_GT(decomp.packets, 0u);
  EXPECT_NEAR(decomp.total_ms,
              decomp.sched_wait_ms + decomp.spread_ms + decomp.rtx_ms + decomp.remainder_ms,
              1e-6);
}

// ---------- OveruseAudit ----------

class OveruseAuditTest : public ::testing::Test {
 protected:
  static cc::GoogCc::Snapshot Overusing(sim::TimePoint t) {
    cc::GoogCc::Snapshot s;
    s.t = t;
    s.state = cc::BandwidthUsage::kOverusing;
    return s;
  }
  static cc::GoogCc::Snapshot Normal(sim::TimePoint t) {
    cc::GoogCc::Snapshot s;
    s.t = t;
    s.state = cc::BandwidthUsage::kNormal;
    return s;
  }

  static CrossLayerRecord MediaPacket(sim::TimePoint sent, RootCause cause) {
    CrossLayerRecord r;
    r.kind = net::PacketKind::kRtpVideo;
    r.sent_at = sent;
    r.primary_cause = cause;
    return r;
  }
};

TEST_F(OveruseAuditTest, RtxDominatedWindowIsPhantom) {
  CrossLayerDataset data;
  for (int i = 0; i < 20; ++i) {
    data.packets.push_back(
        MediaPacket(kEpoch + 500ms + sim::Duration{i * 10'000}, RootCause::kRetransmission));
  }
  const std::vector<cc::GoogCc::Snapshot> history = {
      Normal(kEpoch + 600ms), Overusing(kEpoch + 800ms)};
  const auto audit = OveruseAudit::Audit(history, data, 500ms, sim::Duration{0});
  ASSERT_EQ(audit.events.size(), 1u);
  EXPECT_TRUE(audit.events[0].phantom);
  EXPECT_EQ(audit.events[0].dominant_cause, RootCause::kRetransmission);
  EXPECT_DOUBLE_EQ(audit.PhantomFraction(), 1.0);
}

TEST_F(OveruseAuditTest, ContentionDominatedWindowIsGenuine) {
  CrossLayerDataset data;
  for (int i = 0; i < 20; ++i) {
    data.packets.push_back(MediaPacket(kEpoch + 500ms + sim::Duration{i * 10'000},
                                       RootCause::kCapacityContention));
  }
  const std::vector<cc::GoogCc::Snapshot> history = {Overusing(kEpoch + 800ms)};
  const auto audit = OveruseAudit::Audit(history, data, 500ms, sim::Duration{0});
  ASSERT_EQ(audit.events.size(), 1u);
  EXPECT_FALSE(audit.events[0].phantom);
  EXPECT_EQ(audit.genuine_events, 1u);
}

TEST_F(OveruseAuditTest, OnlyTransitionsCount) {
  CrossLayerDataset data;
  data.packets.push_back(MediaPacket(kEpoch + 700ms, RootCause::kBsrWait));
  const std::vector<cc::GoogCc::Snapshot> history = {
      Overusing(kEpoch + 800ms), Overusing(kEpoch + 810ms), Overusing(kEpoch + 820ms),
      Normal(kEpoch + 900ms), Overusing(kEpoch + 950ms)};
  const auto audit = OveruseAudit::Audit(history, data, 500ms, sim::Duration{0});
  EXPECT_EQ(audit.events.size(), 2u);  // one per entry into the state
}

TEST_F(OveruseAuditTest, SlotAlignmentAloneExplainsNothing) {
  CrossLayerDataset data;
  for (int i = 0; i < 20; ++i) {
    data.packets.push_back(
        MediaPacket(kEpoch + 500ms + sim::Duration{i * 10'000}, RootCause::kSlotAlignment));
  }
  const std::vector<cc::GoogCc::Snapshot> history = {Overusing(kEpoch + 800ms)};
  const auto audit = OveruseAudit::Audit(history, data, 500ms, sim::Duration{0});
  ASSERT_EQ(audit.events.size(), 1u);
  EXPECT_EQ(audit.events[0].dominant_cause, RootCause::kNone);
  EXPECT_FALSE(audit.events[0].phantom);
}

TEST_F(OveruseAuditTest, IdleCellSessionAuditsAllPhantom) {
  sim::Simulator sim;
  app::SessionConfig config;
  config.seed = 97;
  config.channel = ran::ChannelModel::FadingRadio();
  app::Session session{sim, config};
  session.Run(60s);
  const auto data = Correlator::Correlate(session.BuildCorrelatorInput());
  const auto& gcc = dynamic_cast<app::GccController&>(session.sender().controller()).gcc();
  const auto audit = OveruseAudit::Audit(gcc.history(), data);
  if (!audit.events.empty()) {
    EXPECT_DOUBLE_EQ(audit.PhantomFraction(), 1.0)
        << "an idle cell cannot produce genuine overuse";
  }
}

TEST_F(CorrelatorEndToEndTest, ReportRendersAllSections) {
  app::SessionConfig config;
  Run(config);
  std::ostringstream os;
  Report::Render(os, Report::Inputs{
                         .dataset = &dataset_,
                         .qoe = &session_->qoe(),
                         .ran_counters = &session_->ran_uplink()->counters(),
                         .controller_target_bps = 1.2e6,
                     });
  const auto text = os.str();
  EXPECT_NE(text.find("RAN delay, video"), std::string::npos);
  EXPECT_NE(text.find("delay decomposition"), std::string::npos);
  EXPECT_NE(text.find("root causes"), std::string::npos);
  EXPECT_NE(text.find("scheduler efficiency"), std::string::npos);
  EXPECT_NE(text.find("receiver QoE"), std::string::npos);
  EXPECT_NE(text.find("controller target"), std::string::npos);
}

TEST(ReportTest, MissingInputsAreSkippedGracefully) {
  std::ostringstream os;
  Report::Render(os, Report::Inputs{});
  EXPECT_NE(os.str().find("(no dataset)"), std::string::npos);

  CrossLayerDataset empty;
  std::ostringstream os2;
  Report::Render(os2, Report::Inputs{.dataset = &empty,
                                     .qoe = nullptr,
                                     .ran_counters = nullptr,
                                     .controller_target_bps = std::nullopt});
  EXPECT_NE(os2.str().find("correlated packets: 0"), std::string::npos);
  EXPECT_EQ(os2.str().find("scheduler efficiency"), std::string::npos);
}

TEST_F(CorrelatorEndToEndTest, PerLayerFrameDelays) {
  app::SessionConfig config;
  Run(config);
  const auto base = Analyzer::FrameDelayCdfByLayer(dataset_, net::SvcLayer::kBase);
  const auto enh = Analyzer::FrameDelayCdfByLayer(dataset_, net::SvcLayer::kHighFpsEnhancement);
  ASSERT_GT(base.size(), 50u);
  ASSERT_GT(enh.size(), 50u);
  // The RLC queue is layer-blind (FIFO), so the two ladders see the same
  // delay distribution within noise — an Athena-verifiable property that
  // §5.2's importance-aware scheduling would deliberately break.
  EXPECT_NEAR(base.Median(), enh.Median(), 3.0);
}

TEST_F(CorrelatorEndToEndTest, WanOwdIsLowAndStable) {
  app::SessionConfig config;
  Run(config);
  const auto wan = Analyzer::WanOwdSeries(dataset_);
  ASSERT_GT(wan.size(), 100u);
  stats::Cdf cdf{wan.Values()};
  // WAN + SFU: ~2 × 10 ms + small processing; p95 − p5 stays tight
  // (the paper: WAN and downlink "provide low and stable delay").
  EXPECT_LT(cdf.P(95) - cdf.P(5), 15.0);
}

}  // namespace
}  // namespace athena::core
