// Tests for the fleet observability layer (src/obs/fleet/): session
// summaries, order-insensitive population aggregation, the SLO engine's
// error-budget math, report JSON round-trips, the regression gate, and
// the cross-job byte-identity contract over the chaos matrix.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "fault/chaos.hpp"
#include "obs/fleet/aggregate.hpp"
#include "obs/fleet/report.hpp"
#include "obs/fleet/slo.hpp"
#include "obs/fleet/summary.hpp"
#include "obs/pipeline/rollup.hpp"

namespace athena::obs::fleet {
namespace {

SessionSummary MakeSummary(const std::string& scenario, std::uint64_t seed,
                           double owd_ms, double audio_gap) {
  SessionSummary s;
  s.scenario = scenario;
  s.seed = seed;
  s.valid = true;
  for (int i = 0; i < 10; ++i) {
    s.metric(FleetMetric::kUplinkOwdMs).Add(owd_ms + static_cast<double>(i));
  }
  s.metric(FleetMetric::kAudioGapFraction).Add(audio_gap);
  return s;
}

std::string ReportBytes(const FleetAggregator& aggregator, const SloEngine& slos) {
  std::ostringstream os;
  WriteJson(BuildReport(aggregator, slos), os);
  return os.str();
}

// --- metric catalog ---

TEST(FleetMetricTest, NamesRoundTrip) {
  for (std::size_t i = 0; i < kFleetMetricCount; ++i) {
    const auto m = static_cast<FleetMetric>(i);
    const auto back = MetricFromName(ToString(m));
    ASSERT_TRUE(back.has_value()) << ToString(m);
    EXPECT_EQ(*back, m);
  }
  EXPECT_FALSE(MetricFromName("no_such_metric").has_value());
}

// --- quantile sketch rank queries (SLO primitive) ---

TEST(QuantileSketchTest, CountAtOrBelowIsMonotoneAndApproximate) {
  pipeline::QuantileSketch sketch;
  for (int i = 1; i <= 1000; ++i) sketch.Add(static_cast<double>(i));

  EXPECT_DOUBLE_EQ(sketch.CountAtOrBelow(-1.0), 0.0);
  double prev = 0.0;
  for (const double x : {0.5, 10.0, 100.0, 500.0, 2000.0}) {
    const double n = sketch.CountAtOrBelow(x);
    EXPECT_GE(n, prev) << "x=" << x;
    prev = n;
  }
  // ~19% relative-error sketch: the rank at x=500 must land near 500.
  EXPECT_NEAR(sketch.CountAtOrBelow(500.0), 500.0, 120.0);
  EXPECT_DOUBLE_EQ(sketch.CountAtOrBelow(2000.0), 1000.0);
}

// --- aggregation ---

TEST(FleetAggregatorTest, FoldIsOrderInsensitiveAndMergeExact) {
  std::vector<SessionSummary> sessions;
  for (std::uint64_t i = 0; i < 8; ++i) {
    sessions.push_back(MakeSummary(i % 2 == 0 ? "clean" : "hostile", i,
                                   5.0 + static_cast<double>(i), 0.01));
  }

  FleetAggregator forward;
  for (const auto& s : sessions) forward.Fold(s);

  FleetAggregator reversed;
  for (auto it = sessions.rbegin(); it != sessions.rend(); ++it) reversed.Fold(*it);

  FleetAggregator left, right, merged;
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    (i < sessions.size() / 2 ? left : right).Fold(sessions[i]);
  }
  merged.Merge(left);
  merged.Merge(right);

  const SloEngine no_slos{std::vector<SloSpec>{}};
  const std::string a = ReportBytes(forward, no_slos);
  EXPECT_EQ(a, ReportBytes(reversed, no_slos));
  EXPECT_EQ(a, ReportBytes(merged, no_slos));
  EXPECT_EQ(forward.sessions(), 8u);
  EXPECT_EQ(forward.scenarios().size(), 2u);
}

TEST(FleetAggregatorTest, InvalidSessionsAreCountedNotFolded) {
  FleetAggregator aggregator;
  SessionSummary invalid;
  invalid.scenario = "s";
  aggregator.Fold(invalid);
  EXPECT_EQ(aggregator.fleet().sessions, 1u);
  EXPECT_EQ(aggregator.fleet().invalid_sessions, 1u);
  EXPECT_EQ(aggregator.fleet().metric(FleetMetric::kUplinkOwdMs).count, 0u);
}

TEST(FleetAggregatorTest, PrevalenceCountsSessionsNotEvents) {
  FleetAggregator aggregator;
  auto with_gap = MakeSummary("s", 1, 5.0, 0.0);
  with_gap.anomalies[static_cast<std::size_t>(live::AnomalyKind::kTelemetryGap)] = 7;
  aggregator.Fold(with_gap);
  aggregator.Fold(MakeSummary("s", 2, 5.0, 0.0));
  EXPECT_DOUBLE_EQ(
      aggregator.fleet().PrevalenceFraction(live::AnomalyKind::kTelemetryGap), 0.5);
  EXPECT_EQ(aggregator.fleet().anomalies_total, 7u);
}

// --- SLO spec parsing ---

TEST(SloSpecTest, ParsesTheDocumentedFormat) {
  const auto spec =
      ParseSloLine("owd_p95: sample uplink_owd_ms <= 20 @ 0.95 window 32");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->name, "owd_p95");
  EXPECT_EQ(spec->metric, FleetMetric::kUplinkOwdMs);
  EXPECT_EQ(spec->granularity, Granularity::kSample);
  EXPECT_DOUBLE_EQ(spec->threshold, 20.0);
  EXPECT_DOUBLE_EQ(spec->target, 0.95);
  EXPECT_EQ(spec->window, 32u);
}

TEST(SloSpecTest, CommentsAndBlanksAreSkippedMalformedThrows) {
  EXPECT_FALSE(ParseSloLine("").has_value());
  EXPECT_FALSE(ParseSloLine("   # just a comment").has_value());
  EXPECT_THROW((void)ParseSloLine("name sample uplink_owd_ms <= 1 @ 0.9"),
               std::runtime_error);  // missing ':'
  EXPECT_THROW((void)ParseSloLine("n: sample no_such_metric <= 1 @ 0.9"),
               std::runtime_error);
  EXPECT_THROW((void)ParseSloLine("n: sample uplink_owd_ms <= 1 @ 1.5"),
               std::runtime_error);  // target out of (0,1)
  EXPECT_THROW((void)ParseSloLine("n: sample frame_late_fraction <= 1 @ 0.9"),
               std::runtime_error);  // session-scalar metric, sample granularity
  // Session granularity over a sample metric is legal: judges the mean.
  EXPECT_TRUE(ParseSloLine("n: session uplink_owd_ms <= 1 @ 0.9").has_value());
}

TEST(SloSpecTest, DefaultCatalogParses) {
  const auto slos = DefaultSlos();
  EXPECT_GE(slos.size(), 4u);
}

// --- SLO engine math ---

TEST(SloEngineTest, ComplianceBudgetAndBurnRate) {
  // One session-granularity SLO, target 0.9, window 4: after 10 sessions
  // of which 2 violate, compliance = 0.8 and the budget is overspent 2x.
  SloSpec spec;
  spec.name = "gap";
  spec.metric = FleetMetric::kAudioGapFraction;
  spec.granularity = Granularity::kSession;
  spec.threshold = 0.05;
  spec.target = 0.9;
  spec.window = 4;
  SloEngine engine{{spec}};

  for (int i = 0; i < 8; ++i) engine.Observe(MakeSummary("s", i, 5.0, 0.01));
  for (int i = 8; i < 10; ++i) engine.Observe(MakeSummary("s", i, 5.0, 0.5));

  const auto results = engine.Results();
  ASSERT_EQ(results.size(), 1u);
  const SloResult& r = results[0];
  EXPECT_DOUBLE_EQ(r.total, 10.0);
  EXPECT_DOUBLE_EQ(r.good, 8.0);
  EXPECT_DOUBLE_EQ(r.compliance, 0.8);
  EXPECT_FALSE(r.ok());
  // budget_remaining = 1 − (1−0.8)/(1−0.9) = −1 (overspent 2x).
  EXPECT_DOUBLE_EQ(r.budget_remaining, -1.0);
  // Window holds the last 4 sessions: 2 good, 2 bad → burn = 0.5/0.1 = 5.
  EXPECT_DOUBLE_EQ(r.window_compliance, 0.5);
  EXPECT_DOUBLE_EQ(r.burn_rate, 5.0);
  EXPECT_FALSE(engine.AllOk());
}

TEST(SloEngineTest, NothingObservedIsCompliant) {
  const SloEngine engine;  // built-in catalog
  for (const SloResult& r : engine.Results()) {
    EXPECT_DOUBLE_EQ(r.compliance, 1.0);
    EXPECT_DOUBLE_EQ(r.budget_remaining, 1.0);
    EXPECT_DOUBLE_EQ(r.burn_rate, 0.0);
    EXPECT_TRUE(r.ok());
  }
  EXPECT_TRUE(engine.AllOk());
}

TEST(SloEngineTest, SampleGranularityJudgesEverySample) {
  SloSpec spec;
  spec.name = "owd";
  spec.metric = FleetMetric::kUplinkOwdMs;
  spec.threshold = 100.0;  // far above every sample → all good
  spec.target = 0.5;
  SloEngine engine{{spec}};
  engine.Observe(MakeSummary("s", 1, 5.0, 0.0));
  const auto results = engine.Results();
  EXPECT_DOUBLE_EQ(results[0].total, 10.0);  // 10 samples, not 1 session
  EXPECT_DOUBLE_EQ(results[0].compliance, 1.0);
}

// --- report round-trip + gate ---

TEST(FleetReportTest, JsonRoundTripIsByteStable) {
  FleetAggregator aggregator;
  for (std::uint64_t i = 0; i < 6; ++i) {
    aggregator.Fold(MakeSummary(i % 2 == 0 ? "a" : "b", i, 4.0 + double(i), 0.02));
  }
  SloEngine engine;
  for (std::uint64_t i = 0; i < 6; ++i) {
    engine.Observe(MakeSummary(i % 2 == 0 ? "a" : "b", i, 4.0 + double(i), 0.02));
  }

  std::ostringstream first;
  WriteJson(BuildReport(aggregator, engine), first);

  std::istringstream in{first.str()};
  const FleetReport parsed = ParseReport(in);
  std::ostringstream second;
  WriteJson(parsed, second);
  EXPECT_EQ(first.str(), second.str());
  EXPECT_EQ(parsed.sessions, 6u);
  EXPECT_EQ(parsed.scenarios.size(), 2u);
  ASSERT_FALSE(parsed.slos.empty());
}

TEST(FleetReportTest, ParseRejectsMalformedJson) {
  std::istringstream truncated{R"({"sessions": 3, "fleet")"};
  EXPECT_THROW((void)ParseReport(truncated), std::runtime_error);
  std::istringstream missing{R"({"sessions": 3})"};
  EXPECT_THROW((void)ParseReport(missing), std::runtime_error);
}

TEST(FleetGateTest, ReportDominatesItself) {
  FleetAggregator aggregator;
  SloEngine engine;
  for (std::uint64_t i = 0; i < 4; ++i) {
    const auto s = MakeSummary("a", i, 5.0, 0.01);
    aggregator.Fold(s);
    engine.Observe(s);
  }
  const FleetReport report = BuildReport(aggregator, engine);
  const GateResult gate = GateAgainstBaseline(report, report);
  EXPECT_TRUE(gate.ok) << (gate.failures.empty() ? "" : gate.failures.front());
}

TEST(FleetGateTest, SeededRegressionFailsTheGate) {
  FleetAggregator base_agg, bad_agg;
  SloEngine base_slos{std::vector<SloSpec>{}}, bad_slos{std::vector<SloSpec>{}};
  for (std::uint64_t i = 0; i < 4; ++i) {
    base_agg.Fold(MakeSummary("a", i, 5.0, 0.01));
    bad_agg.Fold(MakeSummary("a", i, 50.0, 0.01));  // 10x the uplink OWD
  }
  const GateResult gate = GateAgainstBaseline(BuildReport(bad_agg, bad_slos),
                                              BuildReport(base_agg, base_slos));
  EXPECT_FALSE(gate.ok);
  ASSERT_FALSE(gate.failures.empty());
  EXPECT_NE(gate.failures.front().find("uplink_owd_ms"), std::string::npos);
}

TEST(FleetGateTest, PrevalenceAxisCanBeSkippedForOnOffComparisons) {
  // A mitigated population legitimately detects more anomalies than an
  // un-mitigated baseline (actuations change what the detectors see);
  // compare_prevalence=false keeps the QoE/delay axes as the contract.
  FleetAggregator base_agg, loud_agg;
  SloEngine base_slos{std::vector<SloSpec>{}}, loud_slos{std::vector<SloSpec>{}};
  for (std::uint64_t i = 0; i < 4; ++i) {
    base_agg.Fold(MakeSummary("a", i, 5.0, 0.01));
    auto s = MakeSummary("a", i, 5.0, 0.01);
    s.anomalies[static_cast<std::size_t>(
        obs::live::AnomalyKind::kOverGranting)] = 3;
    loud_agg.Fold(s);
  }
  const FleetReport current = BuildReport(loud_agg, loud_slos);
  const FleetReport baseline = BuildReport(base_agg, base_slos);
  const GateResult strict = GateAgainstBaseline(current, baseline);
  EXPECT_FALSE(strict.ok);
  ASSERT_FALSE(strict.failures.empty());
  EXPECT_NE(strict.failures.front().find("prevalence"), std::string::npos);
  GateOptions options;
  options.compare_prevalence = false;
  const GateResult relaxed = GateAgainstBaseline(current, baseline, options);
  EXPECT_TRUE(relaxed.ok)
      << (relaxed.failures.empty() ? "" : relaxed.failures.front());
}

TEST(FleetGateTest, SloViolationFailsTheGateEvenWithoutCdfRegression) {
  SloSpec spec;
  spec.name = "gap";
  spec.metric = FleetMetric::kAudioGapFraction;
  spec.granularity = Granularity::kSession;
  spec.threshold = 0.001;
  spec.target = 0.99;
  FleetAggregator aggregator;
  SloEngine engine{{spec}};
  const auto s = MakeSummary("a", 1, 5.0, 0.02);
  aggregator.Fold(s);
  engine.Observe(s);
  const FleetReport report = BuildReport(aggregator, engine);
  // Same aggregate as baseline, so no CDF regression — the failed SLO
  // alone must trip the gate.
  const GateResult gate = GateAgainstBaseline(report, report);
  EXPECT_FALSE(gate.ok);
  ASSERT_FALSE(gate.failures.empty());
  EXPECT_NE(gate.failures.front().find("slo gap"), std::string::npos);
}

// --- the determinism contract over real chaos runs ---

TEST(FleetMatrixTest, ReportBytesIdenticalAcrossJobCounts) {
  // Two real scenarios × two seeds per job count. The fold happens in
  // run-index order on the outcomes vector, so the report must come out
  // byte-identical at any parallelism.
  std::vector<fault::ChaosScenario> scenarios;
  const auto catalog = fault::BuiltinScenarios();
  scenarios.push_back(*fault::FindScenario(catalog, "clean_baseline"));
  scenarios.push_back(*fault::FindScenario(catalog, "telemetry_drop"));

  std::vector<std::string> reports;
  for (const unsigned jobs : {1u, 2u, 8u}) {
    const fault::ChaosMatrixResult result =
        fault::RunChaosMatrix(scenarios, 7, 2, jobs, /*summarize=*/true);
    FleetAggregator aggregator;
    SloEngine engine;
    for (const fault::ChaosOutcome& o : result.outcomes) {
      ASSERT_TRUE(o.summary.valid) << o.scenario << " seed " << o.seed;
      aggregator.Fold(o.summary);
      engine.Observe(o.summary);
    }
    reports.push_back(ReportBytes(aggregator, engine));
  }
  EXPECT_EQ(reports[0], reports[1]);
  EXPECT_EQ(reports[0], reports[2]);

  // And the summaries carry the decomposition the fleet layer exists for.
  std::istringstream in{reports[0]};
  const FleetReport report = ParseReport(in);
  EXPECT_EQ(report.sessions, 4u);
  for (const char* metric : {"uplink_owd_ms", "slot_wait_ms", "core_sfu_ms",
                             "jb_hold_ms", "mouth_to_ear_ms"}) {
    ASSERT_TRUE(report.fleet.metrics.contains(metric)) << metric;
    EXPECT_GT(report.fleet.metrics.at(metric).count, 0u) << metric;
  }
}

TEST(FleetMatrixTest, SupervisedScenarioStillProducesASummary) {
  const auto catalog = fault::BuiltinScenarios();
  const fault::ChaosScenario* kill = fault::FindScenario(catalog, "kill_restore_midrun");
  ASSERT_NE(kill, nullptr);
  const fault::ChaosOutcome outcome =
      fault::RunChaosScenario(*kill, 11, /*summarize=*/true);
  EXPECT_TRUE(outcome.ok()) << outcome.failure;
  EXPECT_TRUE(outcome.summary.valid);
  EXPECT_GT(outcome.summary.metric(FleetMetric::kUplinkOwdMs).count, 0u);
}

}  // namespace
}  // namespace athena::obs::fleet
