#include <atomic>
#include <chrono>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "app/session.hpp"
#include "obs/obs.hpp"
#include "sim/runner.hpp"
#include "sim/simulator.hpp"

namespace athena::sim {
namespace {

using namespace std::chrono_literals;

// ---------- DeriveSeed ----------

TEST(DeriveSeedTest, IsDeterministic) {
  EXPECT_EQ(DeriveSeed(42, 0), DeriveSeed(42, 0));
  EXPECT_EQ(DeriveSeed(7, 123), DeriveSeed(7, 123));
}

TEST(DeriveSeedTest, RunsGetDistinctSeeds) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) seen.insert(DeriveSeed(42, i));
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(DeriveSeedTest, BaseChangesEveryRun) {
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_NE(DeriveSeed(1, i), DeriveSeed(2, i));
  }
}

TEST(DeriveSeedTest, IndexZeroDoesNotAliasBase) {
  EXPECT_NE(DeriveSeed(42, 0), 42u);
}

// ---------- ParallelRunner ----------

TEST(ParallelRunnerTest, ZeroJobsPicksAtLeastOne) {
  ParallelRunner runner{0};
  EXPECT_GE(runner.jobs(), 1u);
}

TEST(ParallelRunnerTest, ForEachCoversEveryIndexExactlyOnce) {
  for (unsigned jobs = 1; jobs <= 8; ++jobs) {
    ParallelRunner runner{jobs};
    constexpr std::size_t kN = 100;
    std::vector<std::atomic<int>> hits(kN);
    runner.ForEach(kN, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < kN; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " with " << jobs << " jobs";
    }
  }
}

TEST(ParallelRunnerTest, ForEachZeroTasksIsNoop) {
  ParallelRunner runner{4};
  runner.ForEach(0, [](std::size_t) { FAIL() << "task ran for n=0"; });
}

TEST(ParallelRunnerTest, MapReturnsResultsInIndexOrder) {
  ParallelRunner runner{4};
  const auto out = runner.Map<std::size_t>(64, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 64u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ParallelRunnerTest, ExceptionPropagatesAfterJoin) {
  ParallelRunner runner{4};
  EXPECT_THROW(runner.ForEach(32,
                              [](std::size_t i) {
                                if (i == 17) throw std::runtime_error{"boom"};
                              }),
               std::runtime_error);
}

// ---------- sweep determinism ----------

// One observed session run, reduced to a string: the rendered trace JSON,
// the metrics CSV, and the headline sim counters. Everything a sweep
// exports, in other words.
std::string ObservedRun(std::uint64_t seed) {
  sim::Simulator simulator;
  obs::ObsSession::Options options;
  options.trace = true;
  options.metrics = true;
  options.metrics_period = sim::Duration{std::chrono::milliseconds{100}};
  options.live = true;
  obs::ObsSession obs{simulator, options};

  app::SessionConfig config;
  config.seed = seed;
  app::Session session{simulator, config};
  session.Run(std::chrono::seconds{2});

  std::ostringstream out;
  out << "events=" << simulator.events_executed()
      << " trace_events=" << obs.recorder().size() << '\n';
  obs.recorder().WriteJson(out);
  obs.registry().WriteCsv(out);
  return out.str();
}

TEST(ParallelRunnerTest, SweepIsBitIdenticalAcrossJobCounts) {
  constexpr std::size_t kRuns = 8;
  const std::function<std::string(std::size_t)> run = [](std::size_t i) {
    return ObservedRun(DeriveSeed(42, i));
  };

  const auto serial = ParallelRunner{1}.Map<std::string>(kRuns, run);
  ASSERT_EQ(serial.size(), kRuns);
  // Different derived seeds really produce different sessions.
  EXPECT_NE(serial[0], serial[1]);

  for (const unsigned jobs : {2u, 8u}) {
    const auto parallel = ParallelRunner{jobs}.Map<std::string>(kRuns, run);
    ASSERT_EQ(parallel.size(), kRuns);
    for (std::size_t i = 0; i < kRuns; ++i) {
      EXPECT_EQ(parallel[i], serial[i])
          << "run " << i << " diverged with " << jobs << " jobs";
    }
  }
}

}  // namespace
}  // namespace athena::sim
