#include <chrono>

#include <gtest/gtest.h>

#include "media/emodel.hpp"
#include "media/encoder.hpp"
#include "media/jitter_buffer.hpp"
#include "media/qoe.hpp"
#include "media/screen_capture.hpp"
#include "media/ssim_model.hpp"
#include "media/svc.hpp"
#include "rtp/packetizer.hpp"
#include "sim/simulator.hpp"

namespace athena::media {
namespace {

using namespace std::chrono_literals;
using sim::kEpoch;

// ---------- SVC ----------

TEST(SvcTest, NominalRates) {
  EXPECT_DOUBLE_EQ(NominalFps(SvcMode::kHighFps28), 28.0);
  EXPECT_DOUBLE_EQ(NominalFps(SvcMode::kLowFps14), 14.0);
}

TEST(SvcTest, FrameIntervalMatchesFps) {
  EXPECT_NEAR(sim::ToMs(FrameInterval(SvcMode::kHighFps28)), 35.7, 0.1);
  EXPECT_NEAR(sim::ToMs(FrameInterval(SvcMode::kLowFps14)), 71.4, 0.1);
}

TEST(SvcTest, EvenFramesAreBase) {
  for (std::uint64_t i = 0; i < 20; i += 2) {
    EXPECT_EQ(LayerForFrame(SvcMode::kHighFps28, i), net::SvcLayer::kBase);
    EXPECT_EQ(LayerForFrame(SvcMode::kLowFps14, i), net::SvcLayer::kBase);
  }
}

TEST(SvcTest, EnhancementLayerIdDependsOnMode) {
  // §2: when the target rate is 14 fps, Zoom uses a *different identifier*
  // for the enhancement layer.
  EXPECT_EQ(LayerForFrame(SvcMode::kHighFps28, 1), net::SvcLayer::kHighFpsEnhancement);
  EXPECT_EQ(LayerForFrame(SvcMode::kLowFps14, 1), net::SvcLayer::kLowFpsEnhancement);
}

TEST(SvcTest, BaseIsNotDiscardable) {
  EXPECT_FALSE(IsDiscardable(net::SvcLayer::kBase));
  EXPECT_TRUE(IsDiscardable(net::SvcLayer::kHighFpsEnhancement));
  EXPECT_TRUE(IsDiscardable(net::SvcLayer::kLowFpsEnhancement));
}

// ---------- SsimModel ----------

TEST(SsimModelTest, MonotoneInBitrate) {
  SsimModel model;
  double prev = 0.0;
  for (double bits = 1e3; bits < 1e6; bits *= 2) {
    const double s = model.ForFrameBits(bits);
    EXPECT_GE(s, prev);
    prev = s;
  }
}

TEST(SsimModelTest, BoundedByFloorAndCeiling) {
  SsimModel model;
  EXPECT_GE(model.ForFrameBits(1.0), model.config().floor);
  EXPECT_LE(model.ForFrameBits(1e12), model.config().ceiling);
}

TEST(SsimModelTest, PaperOperatingRange) {
  // Fig. 7d: Zoom at 640×360 lands in SSIM ≈ 0.80–0.90 for its usual
  // bitrates (several hundred kbps at ~28 fps).
  SsimModel model;
  const double ssim_800k = model.ForStream(800e3, 28.0);
  const double ssim_200k = model.ForStream(200e3, 28.0);
  EXPECT_GT(ssim_800k, 0.80);
  EXPECT_LT(ssim_800k, 0.95);
  EXPECT_GT(ssim_200k, 0.72);
  EXPECT_LT(ssim_200k, ssim_800k);
}

TEST(SsimModelTest, ZeroFpsIsFloor) {
  SsimModel model;
  EXPECT_DOUBLE_EQ(model.ForStream(1e6, 0.0), model.config().floor);
}

// ---------- EModel ----------

TEST(EModelTest, PerfectConditionsAreExcellent) {
  EModel model;
  EXPECT_GT(model.Mos(50.0, 0.0), 4.3);
  EXPECT_DOUBLE_EQ(model.DelayImpairment(80.0), 0.0);
}

TEST(EModelTest, DelayImpairmentKicksInPast100ms) {
  EModel model;
  EXPECT_DOUBLE_EQ(model.DelayImpairment(100.0), 0.0);
  EXPECT_GT(model.DelayImpairment(150.0), 0.0);
  // The conversational cliff past ~177 ms is much steeper.
  const double slope_low = model.DelayImpairment(170.0) - model.DelayImpairment(160.0);
  const double slope_high = model.DelayImpairment(300.0) - model.DelayImpairment(290.0);
  EXPECT_GT(slope_high, 3.0 * slope_low);
}

TEST(EModelTest, MosMonotoneInDelayAndLoss) {
  EModel model;
  double prev = 5.0;
  for (const double d : {20.0, 100.0, 200.0, 400.0, 800.0}) {
    const double mos = model.Mos(d, 0.0);
    EXPECT_LE(mos, prev);     // weakly monotone everywhere...
    if (d > 100.0) EXPECT_LT(mos, prev);  // ...strictly past the Id knee
    prev = mos;
  }
  prev = 5.0;
  for (const double loss : {0.0, 0.01, 0.05, 0.2, 0.5}) {
    const double mos = model.Mos(50.0, loss);
    EXPECT_LE(mos, prev);
    prev = mos;
  }
}

TEST(EModelTest, MosBounds) {
  EXPECT_DOUBLE_EQ(EModel::MosFromR(0.0), 1.0);
  EXPECT_DOUBLE_EQ(EModel::MosFromR(100.0), 4.5);
  EXPECT_NEAR(EModel::MosFromR(80.0), 4.0, 0.15);  // "good" band
}

TEST(EModelTest, LossImpairmentSaturates) {
  EModel model;
  EXPECT_LT(model.LossImpairment(1.0), 55.1);
  EXPECT_NEAR(model.LossImpairment(0.0), 0.0, 1e-9);
}

TEST(EModelTest, QoeCollectorReportsAudioMos) {
  QoeCollector qoe;
  for (int i = 0; i < 100; ++i) {
    EncodedUnit u;
    u.unit.frame_id = static_cast<std::uint64_t>(i) * 2 + 2;  // even: audio
    u.unit.is_audio = true;
    u.captured_at = sim::kEpoch + sim::Duration{i * 20'000};
    qoe.OnUnitSent(u);
    if (i % 10 == 0) continue;  // 10% sample loss
    RenderedFrame f;
    f.frame_id = u.unit.frame_id;
    f.is_audio = true;
    f.rendered_at = u.captured_at + 80ms;
    qoe.OnFrameRendered(f);
  }
  EXPECT_NEAR(qoe.AudioLossFraction(), 0.1, 1e-9);
  const double mos = qoe.AudioMos();
  EXPECT_GT(mos, 2.0);
  EXPECT_LT(mos, 4.2);  // 10% loss costs real quality
}

// ---------- VideoEncoder ----------

VideoEncoder MakeEncoder(double bitrate = 800e3, double sigma = 0.0) {
  VideoEncoder::Config c;
  c.initial_bitrate_bps = bitrate;
  c.size_sigma = sigma;
  return VideoEncoder{c, sim::Rng{11}};
}

TEST(VideoEncoderTest, FrameSizeMatchesRate) {
  auto enc = MakeEncoder(840e3, 0.0);  // 840 kbps at 28 fps = 30 kbit = 3750 B
  const auto unit = enc.EncodeNextFrame(kEpoch);
  ASSERT_TRUE(unit.has_value());
  EXPECT_NEAR(unit->unit.payload_bytes, 3750, 5);
}

TEST(VideoEncoderTest, LayersFollowSvcPattern) {
  auto enc = MakeEncoder();
  const auto a = enc.EncodeNextFrame(kEpoch);
  const auto b = enc.EncodeNextFrame(kEpoch + 35ms);
  EXPECT_EQ(a->unit.layer, net::SvcLayer::kBase);
  EXPECT_EQ(b->unit.layer, net::SvcLayer::kHighFpsEnhancement);
}

TEST(VideoEncoderTest, FrameIdsAreOddAndIncreasing) {
  auto enc = MakeEncoder();
  const auto a = enc.EncodeNextFrame(kEpoch);
  const auto b = enc.EncodeNextFrame(kEpoch);
  EXPECT_EQ(a->unit.frame_id % 2, 1u);
  EXPECT_EQ(b->unit.frame_id, a->unit.frame_id + 2);
}

TEST(VideoEncoderTest, TargetBitrateIsClamped) {
  auto enc = MakeEncoder();
  enc.set_target_bitrate(1.0);
  EXPECT_DOUBLE_EQ(enc.target_bitrate(), enc.config().min_bitrate_bps);
  enc.set_target_bitrate(1e9);
  EXPECT_DOUBLE_EQ(enc.target_bitrate(), enc.config().max_bitrate_bps);
}

TEST(VideoEncoderTest, ModeSwitchRestartsPatternOnBase) {
  auto enc = MakeEncoder();
  (void)enc.EncodeNextFrame(kEpoch);  // base
  enc.set_mode(SvcMode::kLowFps14);
  const auto first = enc.EncodeNextFrame(kEpoch);
  EXPECT_EQ(first->unit.layer, net::SvcLayer::kBase);
  const auto second = enc.EncodeNextFrame(kEpoch);
  EXPECT_EQ(second->unit.layer, net::SvcLayer::kLowFpsEnhancement);
}

TEST(VideoEncoderTest, SkipFractionOnlySkipsEnhancement) {
  auto enc = MakeEncoder();
  enc.set_enhancement_skip_fraction(1.0);
  int base = 0;
  int skipped = 0;
  for (int i = 0; i < 100; ++i) {
    const auto unit = enc.EncodeNextFrame(kEpoch);
    if (!unit) {
      ++skipped;
      continue;
    }
    EXPECT_EQ(unit->unit.layer, net::SvcLayer::kBase);
    ++base;
  }
  EXPECT_EQ(base, 50);
  EXPECT_EQ(skipped, 50);
  EXPECT_EQ(enc.frames_skipped(), 50u);
}

TEST(VideoEncoderTest, SsimTracksFrameSize) {
  auto small = MakeEncoder(200e3, 0.0);
  auto large = MakeEncoder(1500e3, 0.0);
  EXPECT_LT(small.EncodeNextFrame(kEpoch)->ssim, large.EncodeNextFrame(kEpoch)->ssim);
}

TEST(VideoEncoderTest, MeanSizeIsPreservedUnderVariation) {
  auto enc = MakeEncoder(840e3, 0.3);
  double total = 0.0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) total += enc.EncodeNextFrame(kEpoch)->unit.payload_bytes;
  EXPECT_NEAR(total / n, 3750.0, 150.0);
}

// ---------- AudioEncoder ----------

TEST(AudioEncoderTest, SampleSizeFromBitrate) {
  AudioEncoder enc;  // 64 kbps, 20 ms → 160 B
  const auto unit = enc.EncodeNextSample(kEpoch);
  EXPECT_EQ(unit.unit.payload_bytes, 160u);
  EXPECT_TRUE(unit.unit.is_audio);
}

TEST(AudioEncoderTest, SampleIdsAreEven) {
  AudioEncoder enc;
  const auto a = enc.EncodeNextSample(kEpoch);
  const auto b = enc.EncodeNextSample(kEpoch);
  EXPECT_EQ(a.unit.frame_id % 2, 0u);
  EXPECT_EQ(b.unit.frame_id, a.unit.frame_id + 2);
}

// ---------- JitterBuffer ----------

class JitterBufferTest : public ::testing::Test {
 protected:
  JitterBufferTest() : jb_(sim_, JitterBuffer::Config{}) {
    jb_.set_render_callback([this](const RenderedFrame& f) { rendered_.push_back(f); });
  }

  /// Builds the i-th packet of a frame.
  net::Packet FramePacket(std::uint64_t frame_id, std::uint32_t index, std::uint32_t count,
                          std::uint32_t media_ts) {
    net::Packet p;
    p.id = next_id_++;
    p.kind = net::PacketKind::kRtpVideo;
    p.size_bytes = 1200;
    p.rtp = net::RtpMeta{
        .media_ts = media_ts,
        .marker = index + 1 == count,
        .layer = net::SvcLayer::kBase,
        .frame_id = frame_id,
        .packets_in_frame = count,
        .packet_index_in_frame = index,
    };
    return p;
  }

  sim::Simulator sim_;
  JitterBuffer jb_;
  std::vector<RenderedFrame> rendered_;
  net::PacketId next_id_ = 1;
};

TEST_F(JitterBufferTest, RendersCompleteFrame) {
  sim_.ScheduleAfter(10ms, [&] { jb_.OnPacket(FramePacket(1, 0, 2, 0)); });
  sim_.ScheduleAfter(12ms, [&] { jb_.OnPacket(FramePacket(1, 1, 2, 0)); });
  sim_.RunAll();
  ASSERT_EQ(rendered_.size(), 1u);
  EXPECT_EQ(rendered_[0].frame_id, 1u);
  EXPECT_EQ(rendered_[0].first_packet_at, kEpoch + 10ms);
  EXPECT_EQ(rendered_[0].completed_at, kEpoch + 12ms);
  EXPECT_GE(rendered_[0].rendered_at, rendered_[0].completed_at);
}

TEST_F(JitterBufferTest, IncompleteFrameNeverRenders) {
  sim_.ScheduleAfter(10ms, [&] { jb_.OnPacket(FramePacket(1, 0, 3, 0)); });
  sim_.RunAll();
  EXPECT_TRUE(rendered_.empty());
}

TEST_F(JitterBufferTest, DuplicatesAreDropped) {
  sim_.ScheduleAfter(10ms, [&] {
    jb_.OnPacket(FramePacket(1, 0, 2, 0));
    jb_.OnPacket(FramePacket(1, 0, 2, 0));  // dup of index 0
  });
  sim_.RunAll();
  EXPECT_TRUE(rendered_.empty());
  EXPECT_EQ(jb_.duplicates_dropped(), 1u);
}

TEST_F(JitterBufferTest, PlayoutIsMonotone) {
  // Frames every 33 ms of media time (90 kHz → 2970 ticks).
  for (int i = 0; i < 20; ++i) {
    sim_.ScheduleAfter(sim::Duration{i * 33'000 + (i % 3) * 4000}, [this, i] {
      jb_.OnPacket(FramePacket(i + 1, 0, 1, static_cast<std::uint32_t>(i * 2970)));
    });
  }
  sim_.RunAll();
  ASSERT_EQ(rendered_.size(), 20u);
  for (std::size_t i = 1; i < rendered_.size(); ++i) {
    EXPECT_GE(rendered_[i].rendered_at, rendered_[i - 1].rendered_at);
  }
}

TEST_F(JitterBufferTest, LateFrameIsFlaggedAndRendersImmediately) {
  // Frame 1 anchors; frame 2 arrives far later than its media position.
  sim_.ScheduleAfter(10ms, [&] { jb_.OnPacket(FramePacket(1, 0, 1, 0)); });
  sim_.ScheduleAfter(500ms, [&] { jb_.OnPacket(FramePacket(2, 0, 1, 2970)); });
  sim_.RunAll();
  ASSERT_EQ(rendered_.size(), 2u);
  EXPECT_TRUE(rendered_[1].late);
  EXPECT_EQ(rendered_[1].rendered_at, rendered_[1].completed_at);
  EXPECT_EQ(jb_.frames_late(), 1u);
}

TEST_F(JitterBufferTest, PlayoutDelayGrowsWithJitter) {
  const auto initial = jb_.current_playout_delay();
  // Feed strongly jittered arrivals.
  for (int i = 0; i < 50; ++i) {
    const auto jitter = sim::Duration{(i % 2) * 25'000};
    sim_.ScheduleAfter(sim::Duration{i * 33'000} + jitter, [this, i] {
      jb_.OnPacket(FramePacket(i + 1, 0, 1, static_cast<std::uint32_t>(i * 2970)));
    });
  }
  sim_.RunAll();
  EXPECT_GT(jb_.current_playout_delay(), initial);
}

TEST_F(JitterBufferTest, StaleFramesAreAbandoned) {
  sim_.ScheduleAfter(1ms, [&] { jb_.OnPacket(FramePacket(1, 0, 2, 0)); });
  // Never send the second packet; trigger GC with a later packet.
  sim_.ScheduleAfter(5s, [&] { jb_.OnPacket(FramePacket(2, 0, 1, 90'000)); });
  sim_.RunAll();
  EXPECT_EQ(jb_.frames_abandoned(), 1u);
}

TEST_F(JitterBufferTest, AnchorTightensAfterTransientStart) {
  // The first few frames are delayed 200 ms (they hit an outage),
  // anchoring the playout clock far too late; everything after arrives
  // promptly. Once a full tightening window of consistently-early frames
  // passes (the first window still contains the anchor frame itself), the
  // buffer reclaims the slack.
  for (int i = 0; i < 600; ++i) {
    const auto delay = i < 5 ? 200ms : 5ms;
    sim_.ScheduleAfter(sim::Duration{i * 33'000} + delay, [this, i] {
      jb_.OnPacket(FramePacket(i + 1, 0, 1, static_cast<std::uint32_t>(i * 2970)));
    });
  }
  sim_.RunAll();
  EXPECT_GE(jb_.anchor_tightenings(), 1u);
  ASSERT_EQ(rendered_.size(), 600u);
  // Early frames carry ~195 ms of anchor slack; the tail far less.
  const auto early_slack = rendered_[10].rendered_at - rendered_[10].completed_at;
  const auto late_slack = rendered_.back().rendered_at - rendered_.back().completed_at;
  EXPECT_GT(early_slack, 150ms);
  EXPECT_LT(late_slack, sim::Duration{early_slack.count() / 2});
}

TEST_F(JitterBufferTest, TighteningDisabledKeepsSlack) {
  JitterBuffer::Config config;
  config.tighten_window_frames = 0;
  JitterBuffer jb{sim_, config};
  std::vector<RenderedFrame> rendered;
  jb.set_render_callback([&](const RenderedFrame& f) { rendered.push_back(f); });
  for (int i = 0; i < 600; ++i) {
    const auto delay = i < 5 ? 200ms : 5ms;
    sim_.ScheduleAfter(sim::Duration{i * 33'000} + delay, [&jb, this, i] {
      jb.OnPacket(FramePacket(i + 1, 0, 1, static_cast<std::uint32_t>(i * 2970)));
    });
  }
  sim_.RunAll();
  EXPECT_EQ(jb.anchor_tightenings(), 0u);
  ASSERT_EQ(rendered.size(), 600u);
  const auto late_slack = rendered.back().rendered_at - rendered.back().completed_at;
  EXPECT_GT(late_slack, 100ms);  // the slack never goes away
}

TEST_F(JitterBufferTest, IgnoresNonMediaPackets) {
  net::Packet icmp;
  icmp.id = 1;
  icmp.kind = net::PacketKind::kIcmpEcho;
  jb_.OnPacket(icmp);
  EXPECT_EQ(jb_.packets_received(), 0u);

  net::Packet no_rtp;
  no_rtp.id = 2;
  no_rtp.kind = net::PacketKind::kRtpVideo;  // media kind but header-less
  jb_.OnPacket(no_rtp);
  EXPECT_EQ(jb_.packets_received(), 0u);
}

TEST(VideoEncoderModeTest, SettingSameModeKeepsPatternPhase) {
  VideoEncoder enc{VideoEncoder::Config{}, sim::Rng{3}};
  (void)enc.EncodeNextFrame(kEpoch);  // base
  enc.set_mode(SvcMode::kHighFps28);  // no-op: same mode
  const auto next = enc.EncodeNextFrame(kEpoch);
  EXPECT_EQ(next->unit.layer, net::SvcLayer::kHighFpsEnhancement);
}

TEST(ScreenCaptureFpsTest, ObservedFpsTracksRenderRate) {
  sim::Simulator sim;
  ScreenCapture screen{sim};
  screen.Start();
  for (int i = 0; i < 70; ++i) {
    sim.ScheduleAfter(sim::Duration{i * 50'000}, [&screen, i] {
      RenderedFrame f;
      f.frame_id = static_cast<std::uint64_t>(i) + 1;
      screen.OnFrameRendered(f);
    });
  }
  sim.RunUntil(kEpoch + 3600ms);
  screen.Stop();
  EXPECT_NEAR(screen.ObservedFps(), 20.0, 1.5);  // one frame per 50 ms
}

TEST_F(JitterBufferTest, CountsPackets) {
  sim_.ScheduleAfter(1ms, [&] { jb_.OnPacket(FramePacket(1, 0, 1, 0)); });
  sim_.RunAll();
  EXPECT_EQ(jb_.packets_received(), 1u);
  EXPECT_EQ(jb_.frames_rendered(), 1u);
}

// ---------- ScreenCapture ----------

TEST(ScreenCaptureTest, ObservesDistinctFrames) {
  sim::Simulator sim;
  ScreenCapture screen{sim};
  screen.Start();
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleAfter(sim::Duration{i * 33'000}, [&screen, i] {
      RenderedFrame f;
      f.frame_id = i + 1;
      screen.OnFrameRendered(f);
    });
  }
  sim.RunUntil(kEpoch + 400ms);
  screen.Stop();
  EXPECT_EQ(screen.observations().size(), 10u);
}

TEST(ScreenCaptureTest, FrozenFrameDetection) {
  sim::Simulator sim;
  ScreenCapture screen{sim};
  screen.Start();
  RenderedFrame f1;
  f1.frame_id = 1;
  RenderedFrame f2;
  f2.frame_id = 2;
  sim.ScheduleAfter(1ms, [&] { screen.OnFrameRendered(f1); });
  sim.ScheduleAfter(300ms, [&] { screen.OnFrameRendered(f2); });  // f1 frozen ~300 ms
  sim.RunUntil(kEpoch + 400ms);
  screen.Stop();
  EXPECT_GE(screen.FrozenFrameCount(33ms), 1u);
}

TEST(ScreenCaptureTest, IgnoresAudio) {
  sim::Simulator sim;
  ScreenCapture screen{sim};
  screen.Start();
  RenderedFrame audio;
  audio.frame_id = 2;
  audio.is_audio = true;
  sim.ScheduleAfter(1ms, [&] { screen.OnFrameRendered(audio); });
  sim.RunUntil(kEpoch + 100ms);
  EXPECT_TRUE(screen.observations().empty());
}

TEST(ScreenCaptureTest, SamplesAtConfiguredRate) {
  sim::Simulator sim;
  ScreenCapture screen{sim, ScreenCapture::Config{.capture_fps = 70.0}};
  screen.Start();
  sim.RunUntil(kEpoch + 1s);
  screen.Stop();
  EXPECT_NEAR(static_cast<double>(screen.samples_taken()), 70.0, 2.0);
}

// ---------- QoeCollector ----------

class QoeTest : public ::testing::Test {
 protected:
  EncodedUnit Unit(std::uint64_t id, sim::TimePoint captured, double ssim = 0.9) {
    EncodedUnit u;
    u.unit.frame_id = id;
    u.unit.payload_bytes = 3000;
    u.captured_at = captured;
    u.ssim = ssim;
    return u;
  }

  RenderedFrame Frame(std::uint64_t id, sim::TimePoint completed, sim::TimePoint rendered) {
    RenderedFrame f;
    f.frame_id = id;
    f.completed_at = completed;
    f.rendered_at = rendered;
    return f;
  }

  QoeCollector qoe_;
};

TEST_F(QoeTest, MouthToEarFromRegistry) {
  qoe_.OnUnitSent(Unit(1, kEpoch));
  qoe_.OnFrameRendered(Frame(1, kEpoch + 80ms, kEpoch + 100ms));
  ASSERT_EQ(qoe_.MouthToEarMs().size(), 1u);
  EXPECT_DOUBLE_EQ(qoe_.MouthToEarMs().Median(), 100.0);
}

TEST_F(QoeTest, SsimOfRenderedFramesOnly) {
  qoe_.OnUnitSent(Unit(1, kEpoch, 0.8));
  qoe_.OnUnitSent(Unit(3, kEpoch, 0.99));  // never rendered
  qoe_.OnFrameRendered(Frame(1, kEpoch + 10ms, kEpoch + 20ms));
  ASSERT_EQ(qoe_.Ssim().size(), 1u);
  EXPECT_DOUBLE_EQ(qoe_.Ssim().Median(), 0.8);
}

TEST_F(QoeTest, FrameJitterComparesInterArrivalToInterCapture) {
  qoe_.OnUnitSent(Unit(1, kEpoch));
  qoe_.OnUnitSent(Unit(3, kEpoch + 33ms));
  qoe_.OnFrameRendered(Frame(1, kEpoch + 50ms, kEpoch + 60ms));
  // Arrives 43 ms after the previous completion but only 33 ms after in
  // capture time → jitter 10 ms.
  qoe_.OnFrameRendered(Frame(3, kEpoch + 93ms, kEpoch + 95ms));
  ASSERT_EQ(qoe_.FrameJitterMs().size(), 1u);
  EXPECT_NEAR(qoe_.FrameJitterMs().Median(), 10.0, 1e-9);
}

TEST_F(QoeTest, BitrateWindowsFromPackets) {
  net::Packet p;
  p.kind = net::PacketKind::kRtpVideo;
  p.size_bytes = 1250;  // ×8 = 10 kbit
  for (int i = 0; i < 100; ++i) {
    qoe_.OnPacketReceived(p, kEpoch + sim::Duration{i * 10'000});
  }
  const auto cdf = qoe_.ReceiveBitrateKbps();
  ASSERT_FALSE(cdf.empty());
  EXPECT_NEAR(cdf.Median(), 1000.0, 10.0);  // 100 pkt/s × 10 kbit = 1 Mbps
}

TEST_F(QoeTest, DeliveryRatioCountsVideoOnly) {
  qoe_.OnUnitSent(Unit(1, kEpoch));
  qoe_.OnUnitSent(Unit(3, kEpoch));
  EncodedUnit audio = Unit(2, kEpoch);
  audio.unit.is_audio = true;
  qoe_.OnUnitSent(audio);
  qoe_.OnFrameRendered(Frame(1, kEpoch + 10ms, kEpoch + 10ms));
  EXPECT_DOUBLE_EQ(qoe_.VideoDeliveryRatio(), 0.5);
}

TEST_F(QoeTest, AudioRenderContributesOnlyMouthToEar) {
  EncodedUnit audio = Unit(2, kEpoch);
  audio.unit.is_audio = true;
  qoe_.OnUnitSent(audio);
  RenderedFrame f = Frame(2, kEpoch + 30ms, kEpoch + 40ms);
  f.is_audio = true;
  qoe_.OnFrameRendered(f);
  EXPECT_EQ(qoe_.MouthToEarMs().size(), 1u);
  EXPECT_EQ(qoe_.video_frames_rendered(), 0u);
  EXPECT_TRUE(qoe_.Ssim().empty());
}

}  // namespace
}  // namespace athena::media
