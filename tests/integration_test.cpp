// Full-stack integration tests: the paper's headline findings, asserted as
// test invariants. Each test mirrors one experiment from §2 of the paper
// (scaled down in duration to stay test-suite friendly; the bench binaries
// run the full-length versions).
#include <chrono>

#include <gtest/gtest.h>

#include "app/session.hpp"
#include "core/analyzer.hpp"
#include "core/correlator.hpp"
#include "sim/simulator.hpp"

namespace athena {
namespace {

using namespace std::chrono_literals;
using sim::kEpoch;

// ---------- Fig. 3: the uplink is the jitter source ----------

TEST(PaperFindingsTest, UplinkJittersWanDoesNot) {
  sim::Simulator sim;
  app::SessionConfig config;
  config.seed = 101;
  config.channel = ran::ChannelModel::FadingRadio();
  config.cross_traffic = net::CapacityTrace{14e6};
  config.cell.cell_ul_capacity_bps = 25e6;
  app::Session session{sim, config};
  session.Run(30s);

  const auto data = core::Correlator::Correlate(session.BuildCorrelatorInput());
  stats::Cdf uplink{core::Analyzer::UplinkOwdSeries(data).Values()};
  stats::Cdf wan{core::Analyzer::WanOwdSeries(data).Values()};
  ASSERT_FALSE(uplink.empty());
  ASSERT_FALSE(wan.empty());

  // Jitter = p95 − p5. Takeaway (a)/(c) of §2: the 5G uplink is the
  // primary jitter source; the WAN is low and stable.
  const double uplink_jitter = uplink.P(95) - uplink.P(5);
  const double wan_jitter = wan.P(95) - wan.P(5);
  EXPECT_GT(uplink_jitter, 2.0 * wan_jitter);
}

TEST(PaperFindingsTest, SfuProcessingIsSecondaryJitterSource) {
  sim::Simulator sim;
  app::SessionConfig config;
  config.seed = 102;
  app::Session session{sim, config};
  session.Run(20s);

  // RTP path core→receiver passes the SFU process; ICMP is reflected in
  // the kernel. RTP one-way must carry extra (jittery) processing time.
  const auto data = core::Correlator::Correlate(session.BuildCorrelatorInput());
  stats::Cdf rtp_wan{core::Analyzer::WanOwdSeries(data).Values()};
  stats::Cdf icmp_half;
  for (const auto& r : session.icmp_prober()->results()) {
    icmp_half.Add(sim::ToMs(r.rtt) / 2.0);
  }
  ASSERT_FALSE(rtp_wan.empty());
  ASSERT_FALSE(icmp_half.empty());
  EXPECT_GT(rtp_wan.Median(), icmp_half.Median());
  // And the RTP tail is heavier (processing spikes).
  EXPECT_GT(rtp_wan.P(99) - rtp_wan.Median(), icmp_half.P(99) - icmp_half.Median());
}

// ---------- Fig. 4: audio vs video RAN delay ----------

TEST(PaperFindingsTest, AudioLessDelayedThanVideoButLongTail) {
  sim::Simulator sim;
  app::SessionConfig config;
  config.seed = 103;
  config.channel = ran::ChannelModel::FadingRadio();
  app::Session session{sim, config};
  session.Run(30s);

  const auto data = core::Correlator::Correlate(session.BuildCorrelatorInput());
  const auto audio = core::Analyzer::RanDelayCdf(data, true);
  const auto video = core::Analyzer::RanDelayCdf(data, false);
  ASSERT_GT(audio.size(), 500u);
  ASSERT_GT(video.size(), 500u);
  // Median: audio clearly lower (single small packets ride proactive TBs).
  EXPECT_LT(audio.Median(), video.Median());
  // Long tail: audio's p99/median ratio far exceeds its median behaviour
  // (delayed only when queued behind a frame or retransmitted).
  EXPECT_GT(audio.P(99), 3.0 * audio.Median());
}

// ---------- Fig. 5: delay spread introduced by the RAN ----------

TEST(PaperFindingsTest, RanSpreadsFramesSenderDoesNot) {
  sim::Simulator sim;
  app::SessionConfig config;
  config.seed = 104;
  app::Session session{sim, config};
  session.Run(20s);

  const auto data = core::Correlator::Correlate(session.BuildCorrelatorInput());
  const auto at_sender =
      core::Analyzer::DelaySpreadCdf(data, core::Analyzer::SpreadAt::kSender);
  const auto at_core = core::Analyzer::DelaySpreadCdf(data, core::Analyzer::SpreadAt::kCore);
  ASSERT_FALSE(at_sender.empty());
  ASSERT_FALSE(at_core.empty());
  // Frames leave the sender as a burst (spread ≈ 0); the RAN smears them
  // out in 2.5 ms steps.
  EXPECT_LT(at_sender.P(95), 1.0);
  EXPECT_GT(at_core.P(95), 2.4);
  EXPECT_TRUE(stats::StochasticallyBelow(at_sender, at_core, 0.02));
}

// ---------- Fig. 7: 5G degrades QoE vs emulated wire ----------

TEST(PaperFindingsTest, FiveGDegradesQoeVersusEmulatedBaseline) {
  // Run 5G first, then replay its granted capacity on a fixed-latency wire
  // (exactly the paper's baseline construction).
  sim::Simulator sim5g;
  app::SessionConfig fiveg;
  fiveg.seed = 105;
  fiveg.channel = ran::ChannelModel::FadingRadio();
  fiveg.cross_traffic = net::CapacityTrace{16e6};
  fiveg.cell.cell_ul_capacity_bps = 25e6;
  auto session5g = std::make_unique<app::Session>(sim5g, fiveg);
  session5g->Run(40s);
  const auto capacity = session5g->ran_uplink()->ObservedCapacityTrace(1s);

  sim::Simulator sim_wire;
  app::SessionConfig wire;
  wire.seed = 105;
  wire.access = app::SessionConfig::Access::kEmulated;
  wire.emulated_capacity = capacity;
  auto session_wire = std::make_unique<app::Session>(sim_wire, wire);
  session_wire->Run(40s);

  auto& qoe5g = session5g->qoe();
  auto& qoe_wire = session_wire->qoe();

  // (b) frame-level jitter: 5G worse.
  EXPECT_GT(qoe5g.FrameJitterMs().Median(), qoe_wire.FrameJitterMs().Median());
  // (c) frame rate: wire sustains at least the 5G rate at the median.
  EXPECT_GE(qoe_wire.FrameRateFps().Median() + 0.5, qoe5g.FrameRateFps().Median());
  // (d) picture quality: wire at least as good.
  EXPECT_GE(qoe_wire.Ssim().Median() + 0.005, qoe5g.Ssim().Median());
  // Mouth-to-ear tail: the wire has a higher *floor* (15 ms propagation vs
  // ~4 ms slotted uplink) but no artifacts, so the comparison that matters
  // is the tail, where 5G's retransmissions and contention spikes live.
  EXPECT_GT(qoe5g.MouthToEarMs().P(99), qoe_wire.MouthToEarMs().P(99));
}

// ---------- Fig. 8: Zoom's two adaptations ----------

TEST(PaperFindingsTest, SustainedCongestionLocks14FpsThenRecovers) {
  sim::Simulator sim;
  app::SessionConfig config;
  config.seed = 106;
  // Saturate the cell completely between t = 10 s and t = 25 s: the UE's
  // queue holds packets for seconds (the Fig. 8 high-delay episode).
  net::CapacityTrace cross;
  cross.Append(kEpoch, 0.0);
  cross.Append(kEpoch + 10s, 26e6);
  cross.Append(kEpoch + 25s, 0.0);
  config.cross_traffic = cross;
  config.cross_burstiness = 0.0;
  config.cell.cell_ul_capacity_bps = 25e6;
  app::Session session{sim, config};
  session.Run(70s);

  auto& adaptation = session.sender().adaptation();
  EXPECT_GE(adaptation.mode_downgrades(), 1u)
      << "sustained >1 s delay must trigger the 14 fps ladder";
  EXPECT_GE(adaptation.mode_recoveries(), 1u)
      << "after 30+ s of calm the 28 fps ladder returns";
}

TEST(PaperFindingsTest, JitterEpisodeSkipsFramesWithoutModeSwitch) {
  sim::Simulator sim;
  app::SessionConfig config;
  config.seed = 107;
  // On/off contention (300 ms blocks of full-cell cross traffic): delay
  // oscillates in the tens of milliseconds — high jitter, but the smoothed
  // delay never approaches 1 s, so only the transient skipping fires.
  net::CapacityTrace square;
  for (int i = 0; i < 200; ++i) {
    square.Append(kEpoch + sim::Duration{i * 300'000}, (i % 2 != 0) ? 0.0 : 25.5e6);
  }
  config.cross_traffic = square;
  config.cross_burstiness = 0.0;
  config.cell.cell_ul_capacity_bps = 25e6;
  app::Session session{sim, config};
  session.Run(30s);

  auto& enc = session.sender().video_encoder();
  EXPECT_GT(enc.frames_skipped(), 0u) << "jitter must trigger transient skipping";
  EXPECT_EQ(session.sender().adaptation().mode_downgrades(), 0u)
      << "no >1 s delay, so the ladder must not switch";
}

// ---------- cross-traffic phases raise delay (the §2 workload) ----------

TEST(PaperFindingsTest, CrossTrafficPhasesRaiseUplinkDelay) {
  sim::Simulator sim;
  app::SessionConfig config;
  config.seed = 108;
  config.cell.cell_ul_capacity_bps = 25e6;
  // Paper schedule, compressed: 0 / 14 / 16 / 18 Mbps, 10 s each.
  config.cross_traffic = net::CapacityTrace::PaperCrossTrafficSchedule(10s);
  config.cross_burstiness = 0.35;
  app::Session session{sim, config};
  session.Run(40s);

  const auto data = core::Correlator::Correlate(session.BuildCorrelatorInput());
  const auto owd = core::Analyzer::UplinkOwdSeries(data);
  stats::Cdf idle{owd.Slice(kEpoch, kEpoch + 10s).Values()};
  stats::Cdf loaded{owd.Slice(kEpoch + 30s, kEpoch + 40s).Values()};
  ASSERT_FALSE(idle.empty());
  ASSERT_FALSE(loaded.empty());
  EXPECT_GT(loaded.P(90), idle.P(90));
}

// ---------- the grant-waste findings of §3 survive end-to-end ----------

TEST(PaperFindingsTest, SchedulerWasteCountersPopulated) {
  sim::Simulator sim;
  app::SessionConfig config;
  config.seed = 109;
  config.channel.base_bler = 0.1;
  app::Session session{sim, config};
  session.Run(20s);

  const auto& counters = session.ran_uplink()->counters();
  EXPECT_GT(counters.wasted_requested_bytes, 0u);   // over-granting (§3.1)
  EXPECT_GT(counters.empty_tb_rtx, 0u);             // empty-TB rtx (§3.2)
  EXPECT_LT(counters.GrantUtilization(), 0.5);      // proactive padding dominates
  EXPECT_GT(counters.packets_delivered, 1000u);
}

}  // namespace
}  // namespace athena
