// Failure-injection and robustness tests: lossy feedback channels, clock
// drift, telemetry truncation, extreme configurations — the system must
// degrade gracefully, never crash or wedge. Input impairments go through
// fault::FaultInjector so each failure is a named, seeded, reproducible
// fault model rather than an ad-hoc mutation.
#include <chrono>

#include <gtest/gtest.h>

#include "app/session.hpp"
#include "core/analyzer.hpp"
#include "core/correlator.hpp"
#include "fault/fault.hpp"
#include "mitigation/phy_informed.hpp"
#include "sim/simulator.hpp"

namespace athena {
namespace {

using namespace std::chrono_literals;
using sim::kEpoch;

TEST(RobustnessTest, LossyFeedbackChannelStillConverges) {
  // 20% of RTCP feedback packets vanish: the controller sees gaps but the
  // call keeps working.
  sim::Simulator sim;
  app::SessionConfig config;
  config.seed = 31;
  config.wan_jitter = 500us;
  app::Session session{sim, config};
  // Splice loss into the feedback WAN by replacing the receiver's path.
  net::FixedDelayLink lossy{sim,
                           {.delay = 20ms, .loss_probability = 0.2},
                           sim::Rng{1}};
  session.receiver().set_feedback_path(lossy.AsHandler());
  lossy.set_sink(session.sender().FeedbackHandler());
  session.Run(20s);
  EXPECT_GT(session.sender().feedback_received(), 100u);
  EXPECT_GT(session.qoe().video_frames_rendered(), 400u);
}

TEST(RobustnessTest, ClockDriftDoesNotBreakCorrelation) {
  sim::Simulator sim;
  app::SessionConfig config;
  config.seed = 32;
  config.sender_clock_offset = 3ms;
  config.sender_clock_drift_ppm = 30.0;  // 30 µs/s of drift
  app::Session session{sim, config};
  session.Run(20s);
  const auto data = core::Correlator::Correlate(session.BuildCorrelatorInput());
  // Byte conservation is clock-independent.
  EXPECT_EQ(data.unmatched_tb_bytes, 0u);
  // OWDs absorb ≤ drift×duration ≈ 0.6 ms of error on top of estimation.
  const auto video = core::Analyzer::RanDelayCdf(data, false);
  EXPECT_GT(video.Median(), 0.0);
  EXPECT_LT(video.Median(), 50.0);
}

TEST(RobustnessTest, TruncatedTelemetryIsReportedNotFatal) {
  sim::Simulator sim;
  app::SessionConfig config;
  config.seed = 33;
  app::Session session{sim, config};
  session.Run(5s);
  auto input = session.BuildCorrelatorInput();
  // The sniffer dies halfway through the run.
  fault::FaultPlan plan;
  plan.For(fault::Stream::kTelemetry).truncate_after_fraction = 0.5;
  fault::FaultInjector injector{plan, config.seed};
  injector.Apply(fault::Stream::kTelemetry, input.telemetry);
  const auto data = core::Correlator::Correlate(input);
  EXPECT_GT(data.unmatched_packet_bytes, 0u);  // visible in diagnostics
  EXPECT_FALSE(data.packets.empty());          // early packets still correlated
}

TEST(RobustnessTest, BurstOutageMidCallIsFlagged) {
  // The telemetry sniffer blacks out for 400 ms mid-call: correlation
  // survives, and the hole is reported as a confirmed gap window, not
  // papered over.
  sim::Simulator sim;
  app::SessionConfig config;
  config.seed = 40;
  app::Session session{sim, config};
  session.Run(5s);
  auto input = session.BuildCorrelatorInput();
  fault::FaultPlan plan;
  plan.For(fault::Stream::kTelemetry).outage_begin = kEpoch + 2s;
  plan.For(fault::Stream::kTelemetry).outage_end = kEpoch + 2400ms;
  fault::FaultInjector injector{plan, config.seed};
  injector.Apply(fault::Stream::kTelemetry, input.telemetry);
  ASSERT_GT(injector.stats().For(fault::Stream::kTelemetry).outage_dropped, 0u);

  const auto data = core::Correlator::Correlate(input);
  EXPECT_FALSE(data.packets.empty());
  EXPECT_TRUE(data.health.degraded());
  EXPECT_GE(data.health.telemetry.gaps, 1u);
  EXPECT_GE(data.health.telemetry.longest_gap, 300ms);
  EXPECT_LT(data.health.mean_match_confidence, 1.0);
}

TEST(RobustnessTest, TelemetryTruncationAtRunEndIsFlagged) {
  // The feed dies at 40% of the call and never comes back: the tail gap
  // must drive both the gap counter and the aggregate match confidence.
  sim::Simulator sim;
  app::SessionConfig config;
  config.seed = 41;
  app::Session session{sim, config};
  session.Run(5s);
  auto input = session.BuildCorrelatorInput();
  fault::FaultPlan plan;
  plan.For(fault::Stream::kTelemetry).truncate_after_fraction = 0.4;
  fault::FaultInjector injector{plan, config.seed};
  injector.Apply(fault::Stream::kTelemetry, input.telemetry);

  const auto data = core::Correlator::Correlate(input);
  EXPECT_TRUE(data.health.degraded());
  EXPECT_GE(data.health.telemetry.gaps, 1u);
  EXPECT_GE(data.health.telemetry.longest_gap, 1s);
  EXPECT_LT(data.health.mean_match_confidence, 0.8);
}

TEST(RobustnessTest, ClockStepDuringActiveHarqRoundsIsSurvivable) {
  // An NTP step yanks the telemetry clock back 40 ms mid-run, while a
  // fading radio keeps multi-round HARQ chains in flight across the step.
  // Records land out of order; the correlator must repair, report, and
  // still produce a usable dataset.
  sim::Simulator sim;
  app::SessionConfig config;
  config.seed = 42;
  config.channel = ran::ChannelModel::FadingRadio();
  app::Session session{sim, config};
  session.Run(5s);
  auto input = session.BuildCorrelatorInput();
  fault::FaultPlan plan;
  plan.For(fault::Stream::kTelemetry).clock_step = -40ms;
  plan.For(fault::Stream::kTelemetry).clock_step_at = kEpoch + 2500ms;
  fault::FaultInjector injector{plan, config.seed};
  injector.Apply(fault::Stream::kTelemetry, input.telemetry);
  ASSERT_GT(injector.stats().For(fault::Stream::kTelemetry).clock_stepped, 0u);

  const auto data = core::Correlator::Correlate(input);
  EXPECT_FALSE(data.packets.empty());
  EXPECT_TRUE(data.health.degraded());
  EXPECT_GT(data.health.telemetry.out_of_order, 0u);
}

TEST(RobustnessTest, EmptyCorrelatorInputYieldsEmptyDataset) {
  const auto data = core::Correlator::Correlate(core::CorrelatorInput{});
  EXPECT_TRUE(data.packets.empty());
  EXPECT_TRUE(data.frames.empty());
  EXPECT_EQ(data.unmatched_tb_bytes, 0u);
}

TEST(RobustnessTest, ZeroCapacityCellDoesNotWedgeTheSimulation) {
  sim::Simulator sim;
  app::SessionConfig config;
  config.seed = 34;
  config.cell.cell_ul_capacity_bps = 25e6;
  config.cross_traffic = net::CapacityTrace{30e6};  // permanently saturated
  config.cross_burstiness = 0.0;
  config.icmp_enabled = false;
  app::Session session{sim, config};
  session.Run(10s);
  // Nothing gets through the uplink, but the simulation terminates and the
  // buffer simply holds the backlog.
  EXPECT_EQ(session.core_capture().count(), 0u);
  EXPECT_GT(session.ran_uplink()->buffer_bytes(), 0u);
}

TEST(RobustnessTest, TinyMtuPacketization) {
  // Extreme segmentation: 100-byte MTU on a normal call.
  sim::Simulator sim;
  app::SessionConfig config;
  config.seed = 35;
  config.sender.video.initial_bitrate_bps = 300e3;
  app::Session session{sim, config};
  session.Run(2s);
  EXPECT_GT(session.qoe().video_frames_rendered(), 30u);
}

TEST(RobustnessTest, PhyInformedControllerSurvivesTelemetryGap) {
  // The telemetry listener detaches mid-call: the controller must keep
  // operating (unmasked) instead of crashing or stalling.
  sim::Simulator sim;
  app::SessionConfig config;
  config.seed = 36;
  mitigation::PhyInformedController* phy = nullptr;
  config.controller_factory = [&phy] {
    auto c = std::make_unique<mitigation::PhyInformedController>();
    phy = c.get();
    return c;
  };
  app::Session session{sim, config};
  session.ran_uplink()->set_telemetry_listener(
      [&phy](const ran::TbRecord& tb) { phy->OnTbRecord(tb); });
  session.Start();
  sim.RunFor(5s);
  session.ran_uplink()->set_telemetry_listener(nullptr);  // sniffer dies
  sim.RunFor(5s);
  session.Stop();
  EXPECT_GT(session.qoe().video_frames_rendered(), 200u);
  EXPECT_GT(phy->gcc().target_bps(), 0.0);
}

TEST(RobustnessTest, BackToBackSessionsOnOneSimulator) {
  // Two sequential sessions sharing a simulator must not interfere.
  sim::Simulator sim;
  app::SessionConfig config;
  config.seed = 37;
  auto first = std::make_unique<app::Session>(sim, config);
  first->Run(3s);
  const auto first_count = first->core_capture().count();
  sim.RunFor(1s);  // drain in-flight deliveries the first session scheduled
  first.reset();   // tears down timers cleanly

  config.seed = 38;
  auto second = std::make_unique<app::Session>(sim, config);
  second->Run(3s);
  EXPECT_GT(first_count, 0u);
  EXPECT_GT(second->core_capture().count(), 0u);
}

TEST(RobustnessTest, AdaptationDisabledLeavesEncoderAlone) {
  sim::Simulator sim;
  app::SessionConfig config;
  config.seed = 39;
  config.sender.adaptation_enabled = false;
  net::CapacityTrace outage;
  outage.Append(kEpoch, 0.0);
  outage.Append(kEpoch + 2s, 26e6);
  outage.Append(kEpoch + 8s, 0.0);
  config.cross_traffic = outage;
  config.cell.cell_ul_capacity_bps = 25e6;
  app::Session session{sim, config};
  session.Run(20s);
  EXPECT_EQ(session.sender().adaptation().mode_downgrades(), 0u);
  EXPECT_EQ(session.sender().video_encoder().mode(), media::SvcMode::kHighFps28);
}

}  // namespace
}  // namespace athena
