#!/usr/bin/env bash
# Builds and runs the telemetry-pipeline baseline:
#   - bench_telemetry — multi-producer ring-ingest throughput (and the
#     single-ring SPSC ceiling), rollup fold rate + flat-memory proof
#     across a 10× virtual horizon, and ATHC columnar write/read
#     throughput with the digest round-trip check — written to
#     BENCH_telemetry.json at the repo root.
#
# Usage: bench/run_bench_telemetry.sh [build-dir] [--smoke]
#   (default build dir: ./build; --smoke uses the reduced CI sizing)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="$repo_root/build"
smoke=""
for arg in "$@"; do
  case "$arg" in
    --smoke) smoke="--smoke" ;;
    *) build_dir="$arg" ;;
  esac
done

if [ ! -d "$build_dir" ]; then
  cmake -B "$build_dir" -S "$repo_root"
fi
cmake --build "$build_dir" --target bench_telemetry -j "$(nproc)"

echo "== bench_telemetry =="
"$build_dir/bench/bench_telemetry" "$repo_root/BENCH_telemetry.json" $smoke
