// Hot-path performance baseline, written to BENCH_perf.json (path =
// argv[1], default "BENCH_perf.json"):
//
//   1. event_queue   — the shared schedule/cancel/pop workload
//      (queue_workload.hpp) on the production queue vs the pre-overhaul
//      replica (legacy_event_queue.hpp). `speedup_vs_legacy` is the
//      number the "≥2× schedule+pop throughput" acceptance bound watches.
//   2. trace_emit    — ns per enabled TraceInstant into the chunked
//      recorder. `ns_per_event` measures the production batched path
//      (TraceBatcher → TraceRecorder::EmitBatch, one virtual call and a
//      bulk chunk copy per 256 events — what the ingest pipeline and the
//      sweep runner use); `ns_per_event_direct` keeps the historical
//      per-event virtual-dispatch number for comparison.
//   3. sweep         — a 16-run derived-seed session sweep (stressed
//      fading config, 30 virtual seconds per run, so serial wall time
//      is O(seconds) and parallel scaling is measured against a real
//      workload, not scheduler noise) executed serially and then at an
//      explicit 2/4/8-job ladder (not "hardware concurrency", which
//      collapses to jobs=1 on a single-core host and measures nothing);
//      each rung records wall time, speedup vs serial, and byte-identity
//      of the exported outputs (`deterministic`). A second sweep on the
//      reused 8-job runner checks the persistent pool: the repeat must
//      not regress past 1.5x the first (no per-Run thread respawn).
//   4. overheads     — the BENCH_obs/BENCH_live overhead fractions
//      recomputed with the same 8-rep methodology, so one file carries
//      every acceptance number for this subsystem.
//
// run_bench_perf.sh wraps this up.
#include <algorithm>
#include <array>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "app/session.hpp"
#include "core/correlator.hpp"
#include "legacy_event_queue.hpp"
#include "obs/obs.hpp"
#include "queue_workload.hpp"
#include "sim/event_queue.hpp"
#include "sim/runner.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace athena;
using namespace std::chrono_literals;

double WallSeconds(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Robust per-rep cost: the median ignores reps a host hiccup landed on.
double Median(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  const std::size_t n = samples.size();
  return n == 0 ? 0.0
                : (n % 2 == 1 ? samples[n / 2]
                              : 0.5 * (samples[n / 2 - 1] + samples[n / 2]));
}

template <typename Queue>
double QueueRepSeconds(std::uint64_t* counter, int items) {
  Queue q;
  return WallSeconds([&] { bench::QueueWorkload(q, counter, items); });
}

/// Measures both queues with strictly alternating reps, so slow phases of
/// a shared/noisy host (CPU steal, frequency drift) hit both
/// implementations equally instead of biasing whichever ran second.
/// Returns {new_ops_per_sec, legacy_ops_per_sec}.
std::array<double, 2> QueueThroughputs(int reps, int items) {
  std::uint64_t counter = 0;
  // Untimed warmup: heap growth and page faults land outside the clock.
  QueueRepSeconds<sim::EventQueue>(&counter, items);
  QueueRepSeconds<bench::legacy::EventQueue>(&counter, items);
  double new_secs = 0.0;
  double legacy_secs = 0.0;
  for (int r = 0; r < reps; ++r) {
    new_secs += QueueRepSeconds<sim::EventQueue>(&counter, items);
    legacy_secs += QueueRepSeconds<bench::legacy::EventQueue>(&counter, items);
  }
  if (counter == 0) std::abort();  // keep the work observable
  const double total = static_cast<double>(reps) * items;
  return {new_secs > 0.0 ? total / new_secs : 0.0,
          legacy_secs > 0.0 ? total / legacy_secs : 0.0};
}

/// One simulated session second; `stressed` matches bench_live's fading
/// configuration, plain matches bench_obs's.
void RunSessionSecond(sim::Simulator& sim, bool stressed) {
  app::SessionConfig config;
  if (stressed) {
    config.channel = ran::ChannelModel::FadingRadio();
  } else {
    config.channel.base_bler = 0.08;
  }
  app::Session session{sim, config};
  session.Run(1s);
  const auto data = core::Correlator::Correlate(session.BuildCorrelatorInput());
  if (data.packets.empty()) std::abort();
}

/// One sweep run reduced to its exported bytes (trace JSON + metrics CSV
/// + event count) — what the determinism check compares. The stressed
/// fading config over 30 virtual seconds makes a single run tens of
/// wall-milliseconds, so a 16-run sweep is a workload parallel scaling
/// can actually be measured on.
std::string SweepRun(std::uint64_t seed, double* wall_seconds) {
  sim::Simulator sim;
  obs::ObsSession::Options options;
  options.metrics_period = sim::Duration{100'000};
  obs::ObsSession observability{sim, options};
  app::SessionConfig config;
  config.seed = seed;
  config.channel = ran::ChannelModel::FadingRadio();
  std::ostringstream out;
  const double secs = WallSeconds([&] {
    app::Session session{sim, config};
    session.Run(30s);
    out << sim.events_executed() << '\n';
    observability.recorder().WriteJson(out);
    observability.registry().WriteCsv(out);
  });
  if (wall_seconds != nullptr) *wall_seconds = secs;
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_perf.json";
  constexpr int kQueueReps = 20;
  constexpr int kQueueItems = 50'000;
  constexpr int kSessionReps = 8;
  constexpr std::size_t kSweepRuns = 16;

  // --- 1. event queue: production vs legacy ---
  const auto [new_ops, legacy_ops] = QueueThroughputs(kQueueReps, kQueueItems);
  const double speedup = legacy_ops > 0.0 ? new_ops / legacy_ops : 0.0;

  // --- 2. trace emit: batched production path + direct comparison ---
  constexpr std::size_t kEmits = 2'000'000;
  const auto emit_workload = [&] {
    for (std::size_t i = 0; i < kEmits; ++i) {
      obs::TraceInstant(obs::Layer::kNet, obs::names::kPktHop,
                        sim::kEpoch + sim::Duration{static_cast<std::int64_t>(i)},
                        {{"packet", static_cast<double>(i)}, {"bytes", 1200.0}});
    }
  };
  double emit_ns = 0.0;
  {
    obs::TraceRecorder recorder;
    obs::TraceBatcher batcher{&recorder};
    obs::ScopedTraceSink scope{&batcher};
    emit_workload();  // untimed warmup (chunk pool grows once)
    const double secs = WallSeconds(emit_workload);
    batcher.Flush();
    if (recorder.size() != 2 * kEmits) std::abort();
    emit_ns = secs * 1e9 / static_cast<double>(kEmits);
  }
  double emit_ns_direct = 0.0;
  {
    obs::TraceRecorder recorder;
    obs::ScopedTraceSink scope{&recorder};
    const double secs = WallSeconds(emit_workload);
    if (recorder.size() != kEmits) std::abort();
    emit_ns_direct = secs * 1e9 / static_cast<double>(kEmits);
  }

  // --- 3. sweep: serial vs an explicit 2/4/8-job ladder, with a
  // determinism check at every rung and per-run wall times for the
  // serial schedule (a run that takes 3× its siblings caps scaling no
  // matter the job count) ---
  std::vector<double> serial_run_secs(kSweepRuns, 0.0);
  const auto sweep_task = [](std::vector<double>* walls) {
    return std::function<std::string(std::size_t)>{[walls](std::size_t i) {
      return SweepRun(sim::DeriveSeed(42, i),
                      walls != nullptr ? &(*walls)[i] : nullptr);
    }};
  };
  SweepRun(sim::DeriveSeed(42, 0), nullptr);  // untimed warmup
  std::vector<std::string> serial_out;
  const double serial_secs = WallSeconds([&] {
    serial_out = sim::ParallelRunner{1}.Map<std::string>(
        kSweepRuns, sweep_task(&serial_run_secs));
  });

  struct SweepRung {
    std::size_t jobs = 0;
    double seconds = 0.0;
    double speedup = 0.0;  ///< serial_secs / seconds
    bool deterministic = false;
  };
  constexpr std::array<std::size_t, 3> kJobLadder{2, 4, 8};
  std::vector<SweepRung> ladder;
  bool deterministic = true;
  sim::ParallelRunner top_runner{kJobLadder.back()};
  for (const std::size_t jobs : kJobLadder) {
    // The top rung reuses `top_runner` so the pool-reuse check below
    // measures a genuinely warm pool.
    std::optional<sim::ParallelRunner> local;
    sim::ParallelRunner& runner =
        jobs == kJobLadder.back() ? top_runner : local.emplace(jobs);
    std::vector<std::string> out;
    SweepRung rung;
    rung.jobs = runner.jobs();
    rung.seconds = WallSeconds([&] {
      out = runner.Map<std::string>(kSweepRuns, sweep_task(nullptr));
    });
    rung.speedup = rung.seconds > 0.0 ? serial_secs / rung.seconds : 0.0;
    rung.deterministic = out == serial_out;
    deterministic = deterministic && rung.deterministic;
    ladder.push_back(rung);
  }

  // Persistent-pool check: a repeat sweep on the already-used runner must
  // reuse its workers. 1.5x headroom absorbs host noise; a pool that
  // respawned threads per Run (or worse, serialized) would blow past it
  // together with startup cost on every one of the 16 tasks.
  const double reuse_first = ladder.back().seconds;
  const double reuse_repeat = WallSeconds([&] {
    (void)top_runner.Map<std::string>(kSweepRuns, sweep_task(nullptr));
  });
  const double reuse_ratio = reuse_first > 0.0 ? reuse_repeat / reuse_first : 0.0;
  const bool reuse_ok = reuse_ratio <= 1.5;

  // --- 4. overhead fractions (bench_obs / bench_live methodology, but
  // with off/on reps strictly interleaved so host noise cancels) ---
  const auto rep_seconds = [&](bool stressed, bool obs_on, bool live_on) {
    sim::Simulator sim;
    std::unique_ptr<obs::ObsSession> observability;
    if (obs_on) {
      obs::ObsSession::Options options;
      if (live_on) {
        options.live = true;
      } else {
        options.metrics_period = sim::Duration{100'000};
        options.profile_sim = true;
      }
      observability = std::make_unique<obs::ObsSession>(sim, options);
    }
    return WallSeconds([&] { RunSessionSecond(sim, stressed); });
  };
  const auto overhead = [&](bool stressed, bool live_on) {
    rep_seconds(stressed, false, false);  // untimed warmup
    rep_seconds(stressed, true, live_on);
    std::vector<double> off_reps;
    std::vector<double> on_reps;
    for (int i = 0; i < kSessionReps; ++i) {
      off_reps.push_back(rep_seconds(stressed, false, false));
      on_reps.push_back(rep_seconds(stressed, true, live_on));
    }
    const double base = Median(off_reps);
    return base > 0.0 ? Median(on_reps) / base - 1.0 : 0.0;
  };
  const double obs_overhead = overhead(false, false);
  const double live_overhead = overhead(true, true);

  std::ofstream os{out_path};
  if (!os) {
    std::cerr << "cannot write " << out_path << '\n';
    return 1;
  }
  os << "{\n";
  os << "  \"event_queue\": {\n";
  os << "    \"workload_items\": " << kQueueItems << ",\n";
  os << "    \"reps\": " << kQueueReps << ",\n";
  os << "    \"ops_per_sec\": " << new_ops << ",\n";
  os << "    \"legacy_ops_per_sec\": " << legacy_ops << ",\n";
  os << "    \"speedup_vs_legacy\": " << speedup << "\n";
  os << "  },\n";
  const auto write_array = [&os](const char* key, const std::vector<double>& v) {
    os << "    \"" << key << "\": [";
    for (std::size_t i = 0; i < v.size(); ++i) os << (i ? ", " : "") << v[i];
    os << "],\n";
  };
  os << "  \"trace_emit\": {\n";
  os << "    \"emits\": " << kEmits << ",\n";
  os << "    \"ns_per_event\": " << emit_ns << ",\n";
  os << "    \"ns_per_event_direct\": " << emit_ns_direct << "\n";
  os << "  },\n";
  os << "  \"sweep\": {\n";
  os << "    \"runs\": " << kSweepRuns << ",\n";
  os << "    \"serial_seconds\": " << serial_secs << ",\n";
  write_array("run_seconds_serial", serial_run_secs);
  os << "    \"jobs_ladder\": [\n";
  for (std::size_t i = 0; i < ladder.size(); ++i) {
    const SweepRung& rung = ladder[i];
    os << "      {\"jobs\": " << rung.jobs << ", \"seconds\": " << rung.seconds
       << ", \"speedup_vs_serial\": " << rung.speedup << ", \"deterministic\": "
       << (rung.deterministic ? "true" : "false") << "}"
       << (i + 1 < ladder.size() ? "," : "") << '\n';
  }
  os << "    ],\n";
  os << "    \"pool_reuse\": {\n";
  os << "      \"first_seconds\": " << reuse_first << ",\n";
  os << "      \"repeat_seconds\": " << reuse_repeat << ",\n";
  os << "      \"ratio\": " << reuse_ratio << ",\n";
  os << "      \"ok\": " << (reuse_ok ? "true" : "false") << "\n";
  os << "    },\n";
  os << "    \"deterministic\": " << (deterministic ? "true" : "false") << "\n";
  os << "  },\n";
  os << "  \"session_overheads\": {\n";
  os << "    \"reps\": " << kSessionReps << ",\n";
  os << "    \"obs_on_overhead_fraction\": " << obs_overhead << ",\n";
  os << "    \"full_obs_live_overhead_fraction\": " << live_overhead << "\n";
  os << "  }\n";
  os << "}\n";

  std::cout << "event queue: " << new_ops / 1e6 << " M ops/s vs legacy "
            << legacy_ops / 1e6 << " M ops/s (x" << speedup << ")\n";
  std::cout << "trace emit: " << emit_ns << " ns/event batched, " << emit_ns_direct
            << " ns/event direct\n";
  std::cout << "sweep x" << kSweepRuns << ": serial " << serial_secs << " s";
  for (const SweepRung& rung : ladder) {
    std::cout << ", " << rung.jobs << " jobs " << rung.seconds << " s (x"
              << rung.speedup << ")";
  }
  std::cout << ", deterministic=" << (deterministic ? "yes" : "no") << '\n';
  std::cout << "pool reuse: repeat/first = " << reuse_ratio << " ("
            << (reuse_ok ? "ok" : "REGRESSED") << ")\n";
  std::cout << "session overheads: obs " << obs_overhead * 100.0 << "%, obs+live "
            << live_overhead * 100.0 << "%\n";
  std::cout << "wrote " << out_path << '\n';

  if (!deterministic) {
    std::cerr << "ERROR: parallel sweep diverged from serial\n";
    return 1;
  }
  if (!reuse_ok) {
    std::cerr << "ERROR: repeated sweep regressed on the reused worker pool\n";
    return 1;
  }
  return 0;
}
