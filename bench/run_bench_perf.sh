#!/usr/bin/env bash
# Builds and runs the hot-path performance baseline:
#   - bench_perf — event-queue throughput vs the pre-overhaul legacy
#     implementation (the ≥2× bound), trace-emit ns/event, serial vs
#     parallel sweep scaling + determinism, and the obs / obs+live session
#     overhead fractions — written to BENCH_perf.json at the repo root.
#
# Usage: bench/run_bench_perf.sh [build-dir]   (default: ./build)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

if [ ! -d "$build_dir" ]; then
  cmake -B "$build_dir" -S "$repo_root"
fi
cmake --build "$build_dir" --target bench_perf -j "$(nproc)"

echo "== bench_perf =="
"$build_dir/bench/bench_perf" "$repo_root/BENCH_perf.json"
