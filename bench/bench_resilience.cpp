// Long-run resilience soak: one session driven for many times the
// normal test length under checkpoint cadence and a memory budget,
// reporting peak RSS, overload-governor shed rates, and checkpoint
// size/cost (BENCH_resilience.json). The numbers this pins:
//
//   - memory stays bounded at soak length (peak RSS, bounded input bytes),
//   - checkpoints stay cheap relative to the run (serialize ms, bytes),
//   - the pipeline still correlates at the end of a long session.
//
// Usage: bench_resilience [--duration=S] [--seed=N] [--budget=BYTES]
//          [--checkpoint-every=MS] [--out=FILE]
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "resilience/checkpoint.hpp"

namespace {

using namespace athena;

/// Reads a VmHWM/VmRSS-style line (kB) from /proc/self/status; 0 when
/// unavailable (non-Linux).
std::size_t ProcStatusKb(const std::string& key) {
  std::ifstream status{"/proc/self/status"};
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind(key + ":", 0) != 0) continue;
    std::size_t value = 0;
    for (const char c : line) {
      if (c >= '0' && c <= '9') value = value * 10 + static_cast<std::size_t>(c - '0');
    }
    return value;
  }
  return 0;
}

bool ParseFlag(const std::string& arg, const char* name, std::string* value) {
  const std::string prefix = std::string("--") + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  int duration_s = 100;  // 50x the 2 s session the test suite drives
  std::uint64_t seed = 42;
  std::size_t budget_bytes = 4'000'000;
  int checkpoint_every_ms = 2000;
  std::string out_path = "BENCH_resilience.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (ParseFlag(arg, "duration", &value)) {
      duration_s = std::stoi(value);
    } else if (ParseFlag(arg, "seed", &value)) {
      seed = std::stoull(value);
    } else if (ParseFlag(arg, "budget", &value)) {
      budget_bytes = std::stoul(value);
    } else if (ParseFlag(arg, "checkpoint-every", &value)) {
      checkpoint_every_ms = std::stoi(value);
    } else if (ParseFlag(arg, "out", &value)) {
      out_path = value;
    } else {
      std::cerr << "unknown argument: " << arg << '\n';
      return 2;
    }
  }

  resilience::RunPlan plan;
  plan.config.seed = seed;
  plan.duration = std::chrono::seconds{duration_s};
  plan.checkpoint_every = std::chrono::milliseconds{checkpoint_every_ms};
  plan.budget.input_bytes = budget_bytes;

  // Checkpoint cost is measured at the source: every snapshot is
  // serialized (as the CLI's --checkpoint-out spill would) under a wall
  // clock.
  std::size_t checkpoints = 0;
  std::size_t last_bytes = 0;
  double serialize_ms_total = 0.0;
  plan.on_checkpoint = [&](const resilience::Checkpoint& c) {
    std::vector<std::uint8_t> buffer;
    const auto begin = std::chrono::steady_clock::now();
    c.Serialize(buffer);
    const auto end = std::chrono::steady_clock::now();
    serialize_ms_total +=
        std::chrono::duration<double, std::milli>(end - begin).count();
    ++checkpoints;
    last_bytes = buffer.size();
  };

  std::cout << "soak: " << duration_s << " s virtual ("
            << duration_s / 2 << "x the 2 s test session), checkpoint every "
            << checkpoint_every_ms << " ms, input budget " << budget_bytes
            << " bytes\n";

  const auto wall_begin = std::chrono::steady_clock::now();
  resilience::CheckpointingDriver driver{plan};
  const resilience::RunOutcome outcome = driver.Run();
  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall_begin)
                            .count();

  const std::size_t peak_rss_kb = ProcStatusKb("VmHWM");
  const std::size_t rss_kb = ProcStatusKb("VmRSS");
  const double mean_serialize_ms =
      checkpoints > 0 ? serialize_ms_total / static_cast<double>(checkpoints) : 0.0;
  const double shed_rate =
      static_cast<double>(outcome.shed.total()) / static_cast<double>(duration_s);

  std::cout << "wall: " << wall_s << " s, events: " << outcome.events_executed
            << ", packets correlated: " << outcome.packets_correlated << '\n'
            << "checkpoints: " << checkpoints << " (last " << last_bytes
            << " bytes, mean serialize " << mean_serialize_ms << " ms)\n"
            << "shed: " << outcome.shed.total() << " records ("
            << outcome.shed.capped() << " hard-capped, " << shed_rate
            << "/virtual-second)\n"
            << "peak RSS: " << peak_rss_kb << " kB\n";

  std::ofstream os{out_path};
  if (!os) {
    std::cerr << "cannot write " << out_path << '\n';
    return 1;
  }
  os << "{\n"
     << "  \"bench\": \"resilience_soak\",\n"
     << "  \"seed\": " << seed << ",\n"
     << "  \"virtual_seconds\": " << duration_s << ",\n"
     << "  \"soak_factor_vs_2s_session\": " << duration_s / 2 << ",\n"
     << "  \"wall_seconds\": " << wall_s << ",\n"
     << "  \"events_executed\": " << outcome.events_executed << ",\n"
     << "  \"packets_correlated\": " << outcome.packets_correlated << ",\n"
     << "  \"checkpoints_taken\": " << checkpoints << ",\n"
     << "  \"checkpoint_bytes\": " << last_bytes << ",\n"
     << "  \"checkpoint_serialize_ms_mean\": " << mean_serialize_ms << ",\n"
     << "  \"input_budget_bytes\": " << budget_bytes << ",\n"
     << "  \"shed_total\": " << outcome.shed.total() << ",\n"
     << "  \"shed_capped\": " << outcome.shed.capped() << ",\n"
     << "  \"shed_icmp\": " << outcome.shed.icmp_shed << ",\n"
     << "  \"shed_padding_tb\": " << outcome.shed.padding_tb_shed << ",\n"
     << "  \"shed_per_virtual_second\": " << shed_rate << ",\n"
     << "  \"final_digest\": \"" << std::hex << outcome.final_digest << std::dec
     << "\",\n"
     << "  \"peak_rss_kb\": " << peak_rss_kb << ",\n"
     << "  \"rss_kb\": " << rss_kb << "\n"
     << "}\n";
  std::cout << "wrote " << out_path << '\n';
  return 0;
}
