// Fig. 7 — "5G degradation: key QoE and performance metrics in 5G versus a
// wired network with equal emulated capacity."
//
// Methodology exactly as in §2: run the call over the 5G cell; compute the
// cell's capacity from the granted transport-block sizes; replay that
// capacity on a fixed-15 ms wired bottleneck (the tc baseline); compare
// four receiver-side CDFs:
//   (a) receive media bitrate   (b) frame-level jitter
//   (c) frame rate              (d) picture quality (SSIM)
#include <chrono>
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace athena;
  using namespace std::chrono_literals;

  // --- the 5G run ---
  sim::Simulator sim_5g;
  auto config = bench::PaperWorkload(7);
  auto session_5g = std::make_unique<app::Session>(sim_5g, config);
  session_5g->Run(20min);
  const auto capacity = session_5g->ran_uplink()->ObservedCapacityTrace(1s);

  // --- the emulated wired baseline (15 ms fixed latency, same capacity) ---
  sim::Simulator sim_wire;
  app::SessionConfig wire;
  wire.seed = config.seed;
  wire.access = app::SessionConfig::Access::kEmulated;
  wire.emulated_capacity = capacity;
  wire.emulated_latency = 15ms;
  auto session_wire = std::make_unique<app::Session>(sim_wire, wire);
  session_wire->Run(20min);

  auto& qoe_5g = session_5g->qoe();
  auto& qoe_wire = session_wire->qoe();

  const auto bitrate_5g = qoe_5g.ReceiveBitrateKbps();
  const auto bitrate_wire = qoe_wire.ReceiveBitrateKbps();
  bench::PrintCdfPanel("Fig. 7a — receive media bitrate (Kbps)",
                       {{"5G", &bitrate_5g}, {"emulated", &bitrate_wire}});

  bench::PrintCdfPanel("Fig. 7b — frame-level jitter (ms)",
                       {{"5G", &qoe_5g.FrameJitterMs()}, {"emulated", &qoe_wire.FrameJitterMs()}});

  const auto fps_5g = qoe_5g.FrameRateFps();
  const auto fps_wire = qoe_wire.FrameRateFps();
  bench::PrintCdfPanel("Fig. 7c — frame rate (fps)",
                       {{"5G", &fps_5g}, {"emulated", &fps_wire}});

  bench::PrintCdfPanel("Fig. 7d — picture quality (SSIM)",
                       {{"5G", &qoe_5g.Ssim()}, {"emulated", &qoe_wire.Ssim()}});

  stats::PrintBanner(std::cout, "Fig. 7 verdict (medians)");
  stats::Table verdict{{"metric", "5G", "emulated", "5G worse?"}};
  auto row = [&](const char* name, double v5g, double vwire, bool worse) {
    verdict.AddRow({name, stats::Fmt(v5g, 2), stats::Fmt(vwire, 2), worse ? "yes" : "NO"});
  };
  row("bitrate Kbps", bitrate_5g.Median(), bitrate_wire.Median(),
      bitrate_5g.Median() <= bitrate_wire.Median() + 1);
  row("frame jitter ms", qoe_5g.FrameJitterMs().Median(), qoe_wire.FrameJitterMs().Median(),
      qoe_5g.FrameJitterMs().Median() >= qoe_wire.FrameJitterMs().Median());
  row("frame rate fps", fps_5g.Median(), fps_wire.Median(),
      fps_5g.Median() <= fps_wire.Median() + 0.5);
  row("SSIM", qoe_5g.Ssim().Median(), qoe_wire.Ssim().Median(),
      qoe_5g.Ssim().Median() <= qoe_wire.Ssim().Median() + 0.005);
  row("mouth-to-ear ms", qoe_5g.MouthToEarMs().Median(), qoe_wire.MouthToEarMs().Median(),
      qoe_5g.MouthToEarMs().Median() >= qoe_wire.MouthToEarMs().Median());
  verdict.Print(std::cout);
  std::cout << "paper shape: 5G consistently delivers lower quality on all metrics\n";
  return 0;
}
