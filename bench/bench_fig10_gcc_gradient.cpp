// Fig. 10 — "GCC running at a mobile connected via a private 5G network
// detects frequent network overuse based on its filtered packet one-way
// delay gradient estimate."
//
// One video-conference session over an *idle* 5G cell (our mobile is the
// only user; the radio still fades). The bench prints the trendline
// filter's state per detector update — filtered gradient, adaptive
// threshold, detector verdict — and counts phantom overuse/underuse
// detections that GCC reports while the network is in fact idle.
#include <chrono>
#include <iostream>

#include "bench_util.hpp"
#include "core/overuse_audit.hpp"

int main() {
  using namespace athena;
  using namespace std::chrono_literals;

  sim::Simulator sim;
  auto config = bench::IdleCellWorkload(11);
  app::Session session{sim, config};
  session.Run(5min);

  auto& gcc = dynamic_cast<app::GccController&>(session.sender().controller()).gcc();
  const auto& history = gcc.history();

  stats::PrintBanner(std::cout,
                     "Fig. 10 — GCC filtered delay gradient vs adaptive threshold "
                     "(idle 5G cell; every 20th detector update shown)");
  stats::Table table{{"group", "t_s", "raw_gradient_ms", "filtered_trend", "modified_ms",
                      "threshold_ms", "state"}};
  for (std::size_t i = 0; i < history.size(); i += 20) {
    const auto& s = history[i];
    table.AddRow({std::to_string(s.group_index), stats::Fmt(s.t.seconds(), 2),
                  stats::Fmt(s.raw_gradient_ms, 3), stats::Fmt(s.trend, 5),
                  stats::Fmt(s.modified_trend_ms, 3), stats::Fmt(s.threshold_ms, 3),
                  cc::ToString(s.state)});
  }
  table.Print(std::cout);

  std::size_t over = 0;
  std::size_t under = 0;
  stats::Cdf gradient;
  stats::Cdf raw;
  for (const auto& s : history) {
    gradient.Add(s.modified_trend_ms);
    raw.Add(s.raw_gradient_ms);
    if (s.state == cc::BandwidthUsage::kOverusing) ++over;
    if (s.state == cc::BandwidthUsage::kUnderusing) ++under;
  }

  std::cout << "\ndetector updates: " << history.size() << " over "
            << stats::Fmt(sim.Now().seconds(), 0) << " s\n";
  std::cout << "raw per-group delay gradient (ms): " << raw.Summary() << '\n';
  std::cout << "modified (filtered) trend (ms):    " << gradient.Summary() << '\n';
  std::cout << "phantom detections on an IDLE cell: overuse states " << over
            << ", underuse states " << under << ", distinct overuse events "
            << gcc.overuse_events() << '\n';
  std::cout << "final target bitrate: " << stats::Fmt(gcc.target_bps() / 1e3, 0) << " kbps\n";
  std::cout << "paper shape: significant gradient fluctuation + repeated overuse "
               "misidentification while idle → "
            << (gcc.overuse_events() > 0 ? "REPRODUCED" : "NOT met") << '\n';

  // --- the Athena twist: audit every overuse event across the layers ---
  const auto data = core::Correlator::Correlate(session.BuildCorrelatorInput());
  const auto audit = core::OveruseAudit::Audit(history, data);
  std::cout << "\ncross-layer overuse audit (what the RAN was doing in each "
               "detector window):\n";
  for (const auto& e : audit.events) {
    std::cout << "  t=" << stats::Fmt(e.at.seconds(), 2) << "s  dominant cause: "
              << core::ToString(e.dominant_cause) << "  ("
              << (e.phantom ? "PHANTOM" : "genuine") << ", " << e.window_packets
              << " packets in window)\n";
  }
  std::cout << "phantom fraction: " << stats::Fmt(100.0 * audit.PhantomFraction(), 1)
            << "% of " << audit.events.size()
            << " events — on an idle cell, every overuse should be phantom\n";
  return 0;
}
