// Fig. 8 — "Zoom adaptation: Zoom reacts to both high absolute delay and
// high jitter primarily by adapting the frame rate."
//
// A 900 s call with two impairment episodes:
//   t ∈ [300, 318) s: the cell is fully occupied by cross traffic → the
//       smoothed delay exceeds one second → the sender locks the 14 fps
//       SVC ladder (base 7 fps + low-FPS enhancement) and recovers later.
//   t ∈ [600, 660) s: on/off contention → high jitter → transient
//       enhancement-frame skipping (effective rate ≈ 20 fps), no ladder
//       change.
//
// Output: per-10 s-window bitrate by SVC layer + audio, rendered frame
// rate, and the smoothed relative delay — the three panels of Fig. 8.
#include <chrono>
#include <iostream>
#include <map>

#include "bench_util.hpp"

int main() {
  using namespace athena;
  using namespace std::chrono_literals;
  using sim::kEpoch;

  sim::Simulator sim;
  auto config = bench::IdleCellWorkload(8);

  net::CapacityTrace cross;
  cross.Append(kEpoch, 0.0);
  cross.Append(kEpoch + 300s, 26e6);  // full outage episode
  cross.Append(kEpoch + 318s, 0.0);
  for (int i = 0; i < 200; ++i) {     // jitter episode: 300 ms on/off blocks
    cross.Append(kEpoch + 600s + sim::Duration{i * 300'000},
                 (i % 2 != 0) ? 0.0 : 25.5e6);
  }
  cross.Append(kEpoch + 660s, 0.0);
  config.cross_traffic = cross;
  config.cross_burstiness = 0.0;

  app::Session session{sim, config};
  session.Run(900s);

  // --- panel 1: receive bitrate per SVC layer (from the receiver pcap) ---
  std::map<net::SvcLayer, stats::TimeSeries> by_layer;
  stats::TimeSeries audio_bytes;
  for (const auto& rec : session.receiver_capture().records()) {
    if (rec.kind == net::PacketKind::kRtpAudio) {
      audio_bytes.Add(rec.true_ts, rec.size_bytes);
    } else if (rec.kind == net::PacketKind::kRtpVideo && rec.rtp) {
      by_layer[rec.rtp->layer].Add(rec.true_ts, rec.size_bytes);
    }
  }
  auto kbps = [](const stats::TimeSeries& ts, sim::TimePoint at) {
    for (const auto& w : ts.WindowedRatePerSecond(std::chrono::seconds{10})) {
      if (w.window_start <= at && at < w.window_start + std::chrono::seconds{10}) {
        return w.mean * 8.0 / 1e3;
      }
    }
    return 0.0;
  };

  // --- panel 2: rendered frame rate; panel 3: smoothed delay ---
  stats::TimeSeries fps_series;
  {
    stats::TimeSeries rendered;
    // Reconstruct rendered-frame instants from the screen observations.
    for (const auto& obs : session.receiver().screen().observations()) {
      rendered.Add(obs.first_seen, 1.0);
    }
    for (const auto& w : rendered.WindowedRatePerSecond(std::chrono::seconds{10})) {
      fps_series.Add(w.window_start, w.mean);
    }
  }
  const auto& delay_log = session.sender().adaptation().delay_log();

  stats::PrintBanner(std::cout,
                     "Fig. 8 — adaptation time series (10 s windows): bitrate by layer, "
                     "frame rate, smoothed delay");
  stats::Table table{{"t_s", "base_kbps", "low_enh_kbps", "high_enh_kbps", "audio_kbps",
                      "render_fps", "delay_ms"}};
  const auto delay_windows = delay_log.WindowedMean(std::chrono::seconds{10});
  auto delay_at = [&](sim::TimePoint at) {
    for (const auto& w : delay_windows) {
      if (w.window_start <= at && at < w.window_start + std::chrono::seconds{10}) return w.mean;
    }
    return 0.0;
  };
  auto fps_at = [&](sim::TimePoint at) {
    for (const auto& s : fps_series.samples()) {
      if (s.t <= at && at < s.t + std::chrono::seconds{10}) return s.value;
    }
    return 0.0;
  };
  for (int t = 0; t < 900; t += 10) {
    const sim::TimePoint at = kEpoch + std::chrono::seconds{t};
    table.AddNumericRow({static_cast<double>(t),
                         kbps(by_layer[net::SvcLayer::kBase], at),
                         kbps(by_layer[net::SvcLayer::kLowFpsEnhancement], at),
                         kbps(by_layer[net::SvcLayer::kHighFpsEnhancement], at),
                         kbps(audio_bytes, at), fps_at(at), delay_at(at)});
  }
  table.Print(std::cout);

  auto& adaptation = session.sender().adaptation();
  auto& encoder = session.sender().video_encoder();
  std::cout << "\nmode downgrades (→14 fps ladder): " << adaptation.mode_downgrades()
            << ", recoveries (→28 fps): " << adaptation.mode_recoveries() << '\n';
  std::cout << "enhancement frames skipped (jitter episodes): " << encoder.frames_skipped()
            << '\n';
  std::cout << "paper shape: >1 s delay → persistent 14 fps via the low-FPS-enhancement "
               "ladder; jitter → transient skipping to ~20 fps → "
            << (adaptation.mode_downgrades() >= 1 && adaptation.mode_recoveries() >= 1 &&
                        encoder.frames_skipped() > 0
                    ? "REPRODUCED"
                    : "NOT met")
            << '\n';
  return 0;
}
