// Extension bench — a bidirectional call with the mobile party behind full
// radio machinery in both directions. Same cell, same fading radio, same
// HARQ on both paths; only the scheduling differs (uplink grant cycle vs
// downlink self-scheduling). The paper's takeaway (c) — "the 5G RAN
// downlink provides low and stable delay" — emerges as a property of the
// grant mechanism, not of the radio.
#include <chrono>
#include <iostream>

#include "app/two_party.hpp"
#include "bench_util.hpp"

int main() {
  using namespace athena;
  using namespace std::chrono_literals;

  sim::Simulator sim;
  app::TwoPartyConfig config;
  config.seed = 99;
  config.channel = ran::ChannelModel::FadingRadio();
  config.cell.cell_ul_capacity_bps = 25e6;
  app::TwoPartySession session{sim, config};
  session.Run(3min);

  const auto up = core::Correlator::Correlate(session.BuildUplinkCorrelatorInput());
  const auto down = core::Correlator::Correlate(session.BuildDownlinkCorrelatorInput());

  stats::Cdf up_owd{core::Analyzer::UplinkOwdSeries(up).Values()};
  stats::Cdf down_owd{core::Analyzer::UplinkOwdSeries(down).Values()};
  bench::PrintCdfPanel("two-party call — RAN one-way delay by direction (ms)",
                       {{"uplink_A_to_core", &up_owd}, {"downlink_core_to_A", &down_owd}});

  stats::PrintBanner(std::cout, "direction comparison (same radio, different scheduler)");
  stats::Table table{{"metric", "uplink (grant cycle)", "downlink (self-scheduled)"}};
  auto row = [&](const char* name, double a, double b, int precision = 2) {
    table.AddRow({name, stats::Fmt(a, precision), stats::Fmt(b, precision)});
  };
  row("delay p50 ms", up_owd.Median(), down_owd.Median());
  row("delay p95 ms", up_owd.P(95), down_owd.P(95));
  row("jitter p95−p5 ms", up_owd.P(95) - up_owd.P(5), down_owd.P(95) - down_owd.P(5));
  row("grant utilization %", 100.0 * session.uplink().counters().GrantUtilization(),
      100.0 * session.downlink().counters().GrantUtilization(), 1);
  row("frame spread p95 ms",
      core::Analyzer::DelaySpreadCdf(up, core::Analyzer::SpreadAt::kCore).P(95),
      core::Analyzer::DelaySpreadCdf(down, core::Analyzer::SpreadAt::kCore).P(95));
  table.Print(std::cout);

  std::cout << "\nQoE at each end: B sees " << stats::Fmt(session.qoe_at_b().FrameRateFps().Median(), 1)
            << " fps / SSIM " << stats::Fmt(session.qoe_at_b().Ssim().Median(), 3)
            << "; A sees " << stats::Fmt(session.qoe_at_a().FrameRateFps().Median(), 1)
            << " fps / SSIM " << stats::Fmt(session.qoe_at_a().Ssim().Median(), 3) << '\n';
  std::cout << "paper takeaway (c): downlink low and stable while the uplink jitters → "
            << ((down_owd.P(95) - down_owd.P(5)) < (up_owd.P(95) - up_owd.P(5)) &&
                        down_owd.Median() < up_owd.Median()
                    ? "REPRODUCED"
                    : "NOT met")
            << '\n';
  return 0;
}
