// Fleet-aggregation baseline (BENCH_fleet.json): how fast SessionSummaries
// fold into the population view, what sharded Merge costs, the size and
// cost of the serialized report, and the end-to-end extraction overhead of
// running the chaos matrix with --fleet summarization on vs off.
//
// Doubles as the CI gate for the layer's structural invariants: exits
// non-zero when sharded merge is not structurally equal to a sequential
// fold, when the JSON round-trip is not byte-stable, or when a report
// fails to dominate itself at the gate.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "fault/chaos.hpp"
#include "obs/fleet/aggregate.hpp"
#include "obs/fleet/report.hpp"
#include "obs/fleet/slo.hpp"
#include "obs/fleet/summary.hpp"
#include "sim/random.hpp"
#include "sim/runner.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// A synthetic but realistically shaped summary: ~600 packet samples across
// the delay decomposition plus the session scalars, varied by seed so the
// sketches are not degenerate.
athena::obs::fleet::SessionSummary MakeSummary(std::uint64_t seed) {
  using athena::obs::fleet::FleetMetric;
  athena::sim::Rng rng{athena::sim::DeriveSeed(seed, 17)};
  athena::obs::fleet::SessionSummary s;
  s.scenario = seed % 3 == 0 ? "clean" : (seed % 3 == 1 ? "fading" : "loaded");
  s.seed = seed;
  s.valid = true;
  for (int i = 0; i < 200; ++i) {
    const double owd = 4.0 + rng.ExponentialMean(6.0);
    s.metric(FleetMetric::kUplinkOwdMs).Add(owd);
    s.metric(FleetMetric::kSlotWaitMs).Add(rng.Uniform(0.0, 0.5));
    s.metric(FleetMetric::kCoreSfuMs).Add(10.0 + rng.Uniform(0.0, 2.0));
  }
  for (int i = 0; i < 60; ++i) {
    s.metric(FleetMetric::kFrameDelayMs).Add(8.0 + rng.ExponentialMean(4.0));
    s.metric(FleetMetric::kMouthToEarMs).Add(120.0 + rng.ExponentialMean(20.0));
    s.metric(FleetMetric::kSsimDistortion).Add(rng.Uniform(0.0, 0.08));
  }
  s.metric(FleetMetric::kFrameLateFraction).Add(rng.Uniform(0.0, 0.04));
  s.metric(FleetMetric::kAudioGapFraction).Add(rng.Uniform(0.0, 0.04));
  if (seed % 5 == 0) {
    s.anomalies[static_cast<std::size_t>(
        athena::obs::live::AnomalyKind::kDelaySpreadQuantization)] = 3;
  }
  return s;
}

std::string ReportBytes(const athena::obs::fleet::FleetAggregator& aggregator,
                        const athena::obs::fleet::SloEngine& slos) {
  std::ostringstream os;
  athena::obs::fleet::WriteJson(athena::obs::fleet::BuildReport(aggregator, slos), os);
  return os.str();
}

// Merge() is exact on everything except the FP-order-sensitive `sum`: the
// production byte-identity contract folds in run-index order (no Merge on
// the --jobs path), so here we require exact counts / min / max /
// quantiles / prevalence and last-ulp-tolerant means.
bool StructurallyEqual(const athena::obs::fleet::ScenarioReport& a,
                       const athena::obs::fleet::ScenarioReport& b) {
  if (a.sessions != b.sessions || a.invalid_sessions != b.invalid_sessions ||
      a.degraded_sessions != b.degraded_sessions ||
      a.anomalies_total != b.anomalies_total || a.prevalence != b.prevalence ||
      a.metrics.size() != b.metrics.size()) {
    return false;
  }
  for (const auto& [name, m] : a.metrics) {
    const auto it = b.metrics.find(name);
    if (it == b.metrics.end()) return false;
    const auto& n = it->second;
    if (m.count != n.count || m.min != n.min || m.max != n.max ||
        m.quantiles != n.quantiles) {
      return false;
    }
    const double scale = std::max(std::abs(m.mean), std::abs(n.mean));
    if (std::abs(m.mean - n.mean) > 1e-9 * std::max(scale, 1.0)) return false;
  }
  return true;
}

bool StructurallyEqual(const athena::obs::fleet::FleetReport& a,
                       const athena::obs::fleet::FleetReport& b) {
  if (a.sessions != b.sessions || a.scenarios.size() != b.scenarios.size() ||
      !StructurallyEqual(a.fleet, b.fleet)) {
    return false;
  }
  for (const auto& [name, scenario] : a.scenarios) {
    const auto it = b.scenarios.find(name);
    if (it == b.scenarios.end() || !StructurallyEqual(scenario, it->second)) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace athena;
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_fleet.json";
  bool smoke = false;
  for (int i = 2; i < argc; ++i) smoke = smoke || std::string(argv[i]) == "--smoke";

  const std::size_t kSessions = smoke ? 5'000 : 50'000;
  const std::size_t kShards = 8;

  // --- synthesize the input population once, off the clock ---
  std::vector<obs::fleet::SessionSummary> population;
  population.reserve(kSessions);
  for (std::uint64_t i = 0; i < kSessions; ++i) population.push_back(MakeSummary(i));

  // --- fold throughput: sequential aggregation + SLO evaluation ---
  auto t0 = Clock::now();
  obs::fleet::FleetAggregator sequential;
  obs::fleet::SloEngine slos;
  for (const auto& s : population) {
    sequential.Fold(s);
    slos.Observe(s);
  }
  const double fold_secs = SecondsSince(t0);
  const double fold_rate = static_cast<double>(kSessions) / fold_secs;
  std::cout << "fold: " << fold_rate / 1e3 << " K sessions/s ("
            << kSessions << " sessions, " << fold_secs * 1e3 << " ms)\n";

  // --- sharded merge: the --jobs N shape ---
  t0 = Clock::now();
  std::vector<obs::fleet::FleetAggregator> shards(kShards);
  for (std::size_t i = 0; i < population.size(); ++i) {
    shards[i % kShards].Fold(population[i]);
  }
  obs::fleet::FleetAggregator merged;
  for (const auto& shard : shards) merged.Merge(shard);
  const double merge_secs = SecondsSince(t0);
  std::cout << "sharded fold+merge (" << kShards << " shards): "
            << static_cast<double>(kSessions) / merge_secs / 1e3 << " K sessions/s\n";

  // --- report build + serialize ---
  t0 = Clock::now();
  const std::string report_bytes = ReportBytes(sequential, slos);
  const double report_secs = SecondsSince(t0);
  std::cout << "report: " << report_bytes.size() << " bytes in "
            << report_secs * 1e3 << " ms\n";

  // --- structural invariants (the CI gate) ---
  const bool merge_identical = StructurallyEqual(
      obs::fleet::BuildReport(merged, slos), obs::fleet::BuildReport(sequential, slos));

  std::istringstream in{report_bytes};
  std::ostringstream rewritten;
  obs::fleet::WriteJson(obs::fleet::ParseReport(in), rewritten);
  const bool roundtrip_identical = rewritten.str() == report_bytes;

  std::istringstream in2{report_bytes};
  const obs::fleet::FleetReport parsed = obs::fleet::ParseReport(in2);
  const bool self_gate_ok = obs::fleet::GateAgainstBaseline(parsed, parsed).ok;

  std::cout << "merge_identical=" << (merge_identical ? "yes" : "no")
            << " roundtrip_identical=" << (roundtrip_identical ? "yes" : "no")
            << " self_gate_ok=" << (self_gate_ok ? "yes" : "no") << "\n";

  // --- end-to-end extraction overhead over a real (small) chaos matrix ---
  const auto catalog = fault::BuiltinScenarios();
  std::vector<fault::ChaosScenario> sample;
  sample.push_back(*fault::FindScenario(catalog, "clean_baseline"));
  sample.push_back(*fault::FindScenario(catalog, "telemetry_drop"));
  const std::size_t seeds = smoke ? 1 : 2;

  t0 = Clock::now();
  const auto plain = fault::RunChaosMatrix(sample, 42, seeds, 2, /*summarize=*/false);
  const double plain_secs = SecondsSince(t0);
  t0 = Clock::now();
  const auto summarized = fault::RunChaosMatrix(sample, 42, seeds, 2, /*summarize=*/true);
  const double summarize_secs = SecondsSince(t0);
  const double overhead =
      plain_secs > 0.0 ? (summarize_secs - plain_secs) / plain_secs : 0.0;
  std::cout << "chaos matrix (" << plain.outcomes.size() << " runs): plain "
            << plain_secs * 1e3 << " ms, summarized " << summarize_secs * 1e3
            << " ms (" << overhead * 100.0 << "% extraction overhead)\n";

  std::ofstream os{out_path};
  os << "{\n";
  os << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
  os << "  \"aggregation\": {\n";
  os << "    \"sessions\": " << kSessions << ",\n";
  os << "    \"fold_sessions_per_sec\": " << fold_rate << ",\n";
  os << "    \"sharded_sessions_per_sec\": "
     << static_cast<double>(kSessions) / merge_secs << ",\n";
  os << "    \"shards\": " << kShards << "\n";
  os << "  },\n";
  os << "  \"report\": {\n";
  os << "    \"bytes\": " << report_bytes.size() << ",\n";
  os << "    \"build_serialize_secs\": " << report_secs << ",\n";
  os << "    \"merge_identical\": " << (merge_identical ? "true" : "false") << ",\n";
  os << "    \"roundtrip_identical\": " << (roundtrip_identical ? "true" : "false") << ",\n";
  os << "    \"self_gate_ok\": " << (self_gate_ok ? "true" : "false") << "\n";
  os << "  },\n";
  os << "  \"extraction\": {\n";
  os << "    \"matrix_runs\": " << plain.outcomes.size() << ",\n";
  os << "    \"plain_secs\": " << plain_secs << ",\n";
  os << "    \"summarized_secs\": " << summarize_secs << ",\n";
  os << "    \"overhead_fraction\": " << overhead << "\n";
  os << "  }\n";
  os << "}\n";
  std::cout << "wrote " << out_path << "\n";

  if (!merge_identical || !roundtrip_identical || !self_gate_ok) return 1;
  if (!plain.all_ok() || !summarized.all_ok()) return 1;
  return 0;
}
