// Extension bench — the whole §5 agenda applied at once.
//
// Baseline: today's stack (BSR scheduler, plain GCC).
// Full Athena stack: the application-aware scheduler (§5.2) AND the
// PHY-informed controller (§5.3) together — the RAN knows the app, the
// app knows the RAN. Run on the paper's loaded cell; report delay and QoE
// end to end. The pieces were evaluated separately in bench_sec52/_sec53;
// this shows they compose.
#include <chrono>
#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "mitigation/app_aware_policy.hpp"
#include "mitigation/phy_informed.hpp"

namespace {

using namespace athena;
using namespace std::chrono_literals;

struct Outcome {
  double frame_delay_p50 = 0.0;
  double frame_delay_p95 = 0.0;
  std::uint64_t overuse_events = 0;
  double bitrate_kbps = 0.0;
  double m2e_p50 = 0.0;
  double audio_mos = 0.0;
};

Outcome Run(bool athena_informed) {
  sim::Simulator sim;
  auto config = bench::IdleCellWorkload(58);
  config.cross_traffic = net::CapacityTrace{14e6};
  config.cross_burstiness = 0.35;
  config.cross_modulation_sigma = 0.4;

  mitigation::AppAwareGrantPolicy* scheduler = nullptr;
  mitigation::PhyInformedController* controller = nullptr;
  if (athena_informed) {
    config.grant_policy = [&scheduler](const ran::RanConfig& cell) {
      auto p = std::make_unique<mitigation::AppAwareGrantPolicy>(cell);
      scheduler = p.get();
      return p;
    };
    config.controller_factory = [&controller] {
      auto c = std::make_unique<mitigation::PhyInformedController>();
      controller = c.get();
      return c;
    };
  }

  app::Session session{sim, config};
  std::unique_ptr<sim::PeriodicTimer> announcer;
  if (athena_informed) {
    session.ran_uplink()->set_telemetry_listener(
        [&controller](const ran::TbRecord& tb) { controller->OnTbRecord(tb); });
    announcer = std::make_unique<sim::PeriodicTimer>(sim, 100ms, [&] {
      auto& enc = session.sender().video_encoder();
      const double fps = media::NominalFps(enc.mode());
      scheduler->Announce(mitigation::StreamAnnouncement{
          .stream_id = 1,
          .next_unit_at = sim.Now(),
          .unit_interval = enc.frame_interval(),
          .unit_bytes = static_cast<std::uint32_t>(enc.target_bitrate() / fps / 8.0) +
                        3 * net::kRtpHeaderOverheadBytes,
      });
      scheduler->Announce(mitigation::StreamAnnouncement{
          .stream_id = 2,
          .next_unit_at = sim.Now(),
          .unit_interval = 20ms,
          .unit_bytes = 160 + net::kRtpHeaderOverheadBytes,
      });
    });
    announcer->Start(sim::Duration{0});
  }

  session.Run(2min);
  announcer.reset();

  const auto data = core::Correlator::Correlate(session.BuildCorrelatorInput());
  const auto frame_delay = core::Analyzer::FrameDelayCdf(data);
  Outcome out;
  out.frame_delay_p50 = frame_delay.Median();
  out.frame_delay_p95 = frame_delay.P(95);
  out.overuse_events =
      athena_informed
          ? controller->gcc().overuse_events()
          : dynamic_cast<app::GccController&>(session.sender().controller())
                .gcc()
                .overuse_events();
  out.bitrate_kbps = session.qoe().ReceiveBitrateKbps().Median();
  out.m2e_p50 = session.qoe().MouthToEarMs().Median();
  out.audio_mos = session.qoe().AudioMos();
  return out;
}

}  // namespace

int main() {
  const auto baseline = Run(false);
  const auto full = Run(true);

  stats::PrintBanner(std::cout,
                     "the full §5 stack (app-aware RAN + PHY-informed CC) vs today's stack "
                     "(loaded cell, 2 min)");
  stats::Table table{{"metric", "today (BSR + GCC)", "Athena-informed"}};
  auto row = [&](const char* name, double a, double b, int precision = 2) {
    table.AddRow({name, stats::Fmt(a, precision), stats::Fmt(b, precision)});
  };
  row("frame delay p50 ms", baseline.frame_delay_p50, full.frame_delay_p50);
  row("frame delay p95 ms", baseline.frame_delay_p95, full.frame_delay_p95);
  row("phantom overuse events", static_cast<double>(baseline.overuse_events),
      static_cast<double>(full.overuse_events), 0);
  row("receive bitrate p50 kbps", baseline.bitrate_kbps, full.bitrate_kbps, 0);
  row("mouth-to-ear p50 ms", baseline.m2e_p50, full.m2e_p50, 0);
  row("audio MOS", baseline.audio_mos, full.audio_mos);
  table.Print(std::cout);

  // On a loaded cell the scheduling win is capacity-bound; the robust
  // composition claim is: phantom reactions gone, delivered rate up,
  // frame delay no worse.
  const bool composes = full.overuse_events < baseline.overuse_events &&
                        full.bitrate_kbps > baseline.bitrate_kbps &&
                        full.frame_delay_p50 < 1.1 * baseline.frame_delay_p50;
  std::cout << "\npaper vision (\"network-aware applications and application-aware "
               "networks\"): both §5 mitigations compose → "
            << (composes ? "REPRODUCED" : "NOT met") << '\n';
  return 0;
}
