// Fig. 9b — "The link-layer retransmissions inflate the packet delay by
// 10 ms" (and by multiples of 10 ms on repeated failures; the base station
// also mandates retransmission of empty TBs).
//
// A micro-trace around a HARQ event: packets whose TB chain failed CRC and
// was retransmitted one rtx_delay later, with the failed / retransmitted
// TB schedule below.
#include <chrono>
#include <iostream>
#include <map>

#include "bench_util.hpp"

int main() {
  using namespace athena;
  using namespace std::chrono_literals;

  sim::Simulator sim;
  auto config = bench::IdleCellWorkload(10);
  config.channel.base_bler = 0.25;  // elevated interference
  config.channel.rtx_bler_factor = 0.5;
  app::Session session{sim, config};
  session.Run(20s);

  const auto data = core::Correlator::Correlate(session.BuildCorrelatorInput());

  // Find a retransmitted packet after warmup.
  const core::CrossLayerRecord* victim = nullptr;
  for (const auto& p : data.packets) {
    if (p.reached_core && p.rtx_inflation >= 10ms && p.sent_at > sim::kEpoch + 5s) {
      victim = &p;
      break;
    }
  }
  if (victim == nullptr) {
    std::cout << "no retransmitted packet found\n";
    return 1;
  }

  const double origin = (victim->sent_at - 5ms).ms();
  const double span = 40.0;

  stats::PrintBanner(std::cout, "Fig. 9b — retransmission micro-trace (window " +
                                    stats::Fmt(origin, 1) + " ms + " + stats::Fmt(span, 1) +
                                    " ms)");
  stats::Table packet_table{
      {"pkt", "kind", "send_ms", "core_ms", "owd_ms", "rtx_rounds", "rtx_inflation_ms"}};
  for (const auto& p : data.packets) {
    if (!p.reached_core) continue;
    const double send_ms = p.sent_at.ms();
    if (send_ms < origin || send_ms > origin + span) continue;
    packet_table.AddRow({std::to_string(p.packet_id),
                         p.kind == net::PacketKind::kRtpAudio ? "audio" : "video",
                         stats::Fmt(send_ms, 3), stats::Fmt(p.core_at.ms(), 3),
                         stats::Fmt(sim::ToMs(p.uplink_owd), 3),
                         std::to_string(p.max_harq_rounds),
                         stats::Fmt(sim::ToMs(p.rtx_inflation), 1)});
  }
  packet_table.Print(std::cout);

  std::cout << "\ntransport blocks in the window (chains link rounds):\n";
  stats::Table tb_table{{"slot_ms", "chain", "round", "grant", "used_kbit", "crc"}};
  for (const auto& tb : session.ran_uplink()->telemetry()) {
    const double slot_ms = tb.slot_time.ms();
    if (slot_ms < origin || slot_ms > origin + span) continue;
    tb_table.AddRow({stats::Fmt(slot_ms, 1), std::to_string(tb.chain_id),
                     std::to_string(tb.harq_round), ran::ToString(tb.grant),
                     stats::Fmt(tb.used_bytes * 8.0 / 1e3, 1), tb.crc_ok ? "ok" : "FAIL"});
  }
  tb_table.Print(std::cout);

  // Aggregate checks over the whole session. The paper's 10 ms arithmetic
  // is a per-TB-chain property: each chain decodes rounds × 10 ms after
  // its first transmission. (A packet spanning several chains composes
  // those offsets on the 2.5 ms slot grid.)
  std::size_t rtx_chains = 0;
  std::size_t chain_multiples_ok = 0;
  std::map<ran::TbId, sim::TimePoint> first_tx;
  for (const auto& tb : session.ran_uplink()->telemetry()) {
    if (tb.harq_round == 0) first_tx[tb.chain_id] = tb.slot_time;
    if (tb.crc_ok && tb.harq_round > 0) {
      ++rtx_chains;
      const double r = sim::ToMs(tb.slot_time - first_tx.at(tb.chain_id)) / 10.0;
      if (std::abs(r - std::round(r)) < 0.01) ++chain_multiples_ok;
    }
  }
  std::size_t rtx_packets = 0;
  for (const auto& p : data.packets) {
    if (p.reached_core && p.rtx_inflation.count() > 0) ++rtx_packets;
  }
  const auto& counters = session.ran_uplink()->counters();
  std::cout << "\nretransmitted chains: " << rtx_chains
            << ", decode offset ≡ 0 (mod 10 ms): " << chain_multiples_ok << " → "
            << (rtx_chains > 0 && chain_multiples_ok == rtx_chains ? "REPRODUCED" : "NOT met")
            << '\n';
  std::cout << "packets with HARQ-inflated delay: " << rtx_packets << '\n';
  std::cout << "empty-TB retransmissions (pure waste, §3.2): " << counters.empty_tb_rtx
            << " of " << counters.tb_rtx << " total retransmissions\n";
  return 0;
}
