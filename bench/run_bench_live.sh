#!/usr/bin/env bash
# Builds and runs the live-diagnosis perf baseline:
#   - bench_live — the same stressed session second with detectors off,
#     detectors on, and recorder+detectors through the fanout, written to
#     BENCH_live.json at the repo root. The binary exits non-zero if the
#     detectors perturb the simulation (event-count mismatch).
#   - a smoke run of `athena_cli --diagnose` so the end-to-end path the
#     numbers describe is exercised too.
#
# Usage: bench/run_bench_live.sh [build-dir]   (default: ./build)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

if [ ! -d "$build_dir" ]; then
  cmake -B "$build_dir" -S "$repo_root"
fi
cmake --build "$build_dir" --target bench_live athena_cli -j "$(nproc)"

echo "== bench_live (detector-path overhead) =="
"$build_dir/bench/bench_live" "$repo_root/BENCH_live.json"

echo
echo "== athena_cli --diagnose (smoke) =="
"$build_dir/examples/athena_cli" --duration=5 --fading --cross-mbps=16 --diagnose \
  | sed -n '/=== session health ===/,$p'
