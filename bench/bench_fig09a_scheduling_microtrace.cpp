// Fig. 9a — "The link-layer scheduling introduces delay spreads at frame
// level, in increments of 2.5 ms."
//
// A micro-trace zoom: one video frame burst's packets (horizontal lines
// from send to core arrival) together with the transport blocks that
// carried them (proactive trickle every 2.5 ms, then the BSR-requested TB
// ~10 ms later, typically over-granted and partly wasted).
#include <algorithm>
#include <chrono>
#include <iostream>

#include "bench_util.hpp"

namespace {

using namespace athena;

/// One text row per packet: '.' idle, '=' in flight, send/arrive markers.
void DrawPacketLine(std::ostream& os, double t0_ms, double t1_ms, double origin_ms,
                    double span_ms, const char* label) {
  const int width = 100;
  std::string line(width, ' ');
  auto col = [&](double t) {
    return std::clamp(static_cast<int>((t - origin_ms) / span_ms * width), 0, width - 1);
  };
  const int a = col(t0_ms);
  const int b = col(t1_ms);
  for (int i = a; i <= b; ++i) line[i] = '=';
  line[a] = '|';
  line[b] = '>';
  os << line << "  " << label << '\n';
}

}  // namespace

int main() {
  using namespace std::chrono_literals;

  sim::Simulator sim;
  auto config = bench::IdleCellWorkload(9);
  config.channel.base_bler = 0.0;  // isolate scheduling (Fig. 9b covers HARQ)
  config.channel.bad_state_bler = 0.0;
  app::Session session{sim, config};
  session.Run(20s);

  const auto data = core::Correlator::Correlate(session.BuildCorrelatorInput());

  // Pick a frame whose burst spans a full BSR cycle (several packets and a
  // spread beyond the proactive trickle), after the call has warmed up.
  const core::FrameRecord* frame = nullptr;
  for (const auto& f : data.frames) {
    if (!f.is_audio && f.complete_at_core && f.packets >= 4 &&
        f.CoreSpread() >= 7'500us && f.first_sent > sim::kEpoch + 5s) {
      frame = &f;
      break;
    }
  }
  if (frame == nullptr) {  // fall back to any multi-packet frame
    for (const auto& f : data.frames) {
      if (!f.is_audio && f.complete_at_core && f.packets >= 4 &&
          f.first_sent > sim::kEpoch + 5s) {
        frame = &f;
        break;
      }
    }
  }
  if (frame == nullptr) {
    std::cout << "no multi-packet frame found (bitrate too low?)\n";
    return 1;
  }

  const double origin = (frame->first_sent - 5ms).ms();
  const double span = sim::ToMs(frame->last_core - frame->first_sent) + 15.0;

  stats::PrintBanner(std::cout, "Fig. 9a — scheduling micro-trace (window " +
                                    stats::Fmt(origin, 1) + " ms + " + stats::Fmt(span, 1) +
                                    " ms)");
  std::cout << "packets (| send, > arrival at core; 1 column ≈ " << stats::Fmt(span / 100, 2)
            << " ms):\n\n";

  stats::Table packet_table{{"pkt", "kind", "send_ms", "core_ms", "owd_ms", "tb_chains"}};
  for (const auto& p : data.packets) {
    if (!p.reached_core) continue;
    const double send_ms = p.sent_at.ms();
    if (send_ms < origin || send_ms > origin + span) continue;
    std::string chains;
    for (const auto id : p.tb_chains) chains += std::to_string(id) + " ";
    DrawPacketLine(std::cout, send_ms, p.core_at.ms(), origin, span,
                   p.kind == net::PacketKind::kRtpAudio ? "audio" : "video");
    packet_table.AddRow({std::to_string(p.packet_id),
                         p.kind == net::PacketKind::kRtpAudio ? "audio" : "video",
                         stats::Fmt(send_ms, 3), stats::Fmt(p.core_at.ms(), 3),
                         stats::Fmt(sim::ToMs(p.uplink_owd), 3), chains});
  }
  std::cout << '\n';
  packet_table.Print(std::cout);

  std::cout << "\ntransport blocks in the window:\n";
  stats::Table tb_table{{"slot_ms", "grant", "tbs_kbit", "used_kbit", "utilized"}};
  for (const auto& tb : session.ran_uplink()->telemetry()) {
    const double slot_ms = tb.slot_time.ms();
    if (slot_ms < origin || slot_ms > origin + span) continue;
    tb_table.AddRow({stats::Fmt(slot_ms, 1), ran::ToString(tb.grant),
                     stats::Fmt(tb.tbs_bytes * 8.0 / 1e3, 1),
                     stats::Fmt(tb.used_bytes * 8.0 / 1e3, 1),
                     tb.used_bytes == 0 ? "UNUSED" : (tb.used_bytes < tb.tbs_bytes ? "partial"
                                                                                   : "full")});
  }
  tb_table.Print(std::cout);

  const double spread = sim::ToMs(frame->CoreSpread());
  std::cout << "\nframe delay spread at the core: " << stats::Fmt(spread, 3)
            << " ms — a multiple of 2.5 ms: "
            << (std::abs(spread / 2.5 - std::round(spread / 2.5)) < 0.05 ? "REPRODUCED"
                                                                         : "NOT met")
            << '\n';
  std::cout << "over-granting waste this session: "
            << session.ran_uplink()->counters().wasted_requested_bytes
            << " requested bytes unused\n";
  return 0;
}
