// The schedule/cancel/pop mix both event-queue implementations are
// compared on (bench_micro_perf for interactive runs, bench_perf for the
// committed BENCH_perf.json numbers). The queue is held at a steady
// ~16k-event depth (a busy kernel with in-flight packets, per-packet HARQ
// timers, and pacer/feedback timers all pending); then per item:
// schedule a callback capturing 32 bytes (a pointer plus three scalars —
// the shape of a typical `[this, pkt_id, ts, bytes]` packet event; beyond
// std::function's 16-byte inline buffer, within InlineCallback's 48),
// cancel every 4th (every PeriodicTimer tick is a cancel+reschedule, so
// real sessions cancel constantly), pop one to hold the depth.
// Templated so the production queue and the pre-overhaul replica
// (legacy_event_queue.hpp) run exactly the same code. Benchmarks only —
// nothing in src/ may include this.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace athena::bench {

inline constexpr int kQueueWorkloadDepth = 16384;

template <typename Queue>
void QueueWorkload(Queue& q, std::uint64_t* counter, int items) {
  using Handle = decltype(q.Schedule(sim::TimePoint{}, [] {}));
  std::int64_t t = 0;
  for (int i = 0; i < kQueueWorkloadDepth; ++i) {
    t += (i * 37) % 199 + 1;
    q.Schedule(sim::kEpoch + sim::Duration{t},
               [counter, i] { *counter += static_cast<std::uint64_t>(i); });
  }
  Handle last;
  for (int i = 0; i < items; ++i) {
    t += (i * 37) % 199 + 1;
    const std::uint64_t tag = static_cast<std::uint64_t>(i);
    const std::uint64_t ts = tag * 33;
    const std::uint64_t bytes = 1200 + (tag & 63);
    last = q.Schedule(sim::kEpoch + sim::Duration{t},
                      [counter, tag, ts, bytes] { *counter += tag + ts + bytes; });
    if (i % 4 == 3) q.Cancel(last);
    if (q.size() > static_cast<std::size_t>(kQueueWorkloadDepth)) q.PopNext().cb();
  }
  while (!q.empty()) q.PopNext().cb();
}

}  // namespace athena::bench
