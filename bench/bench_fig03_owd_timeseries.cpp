// Fig. 3 — "One-Way Delay in ICMP and Zoom RTP Media Traffic."
//
// Three series over a session through the Fig. 2 topology:
//   RTP 1→2      sender → mobile core (across the 5G uplink)
//   RTP 2→3*→4   core → SFU → receiver (WAN + application server)
//   ICMP 2→3→2   core ↔ SFU kernel probes every 20 ms (halved to one-way)
//
// Paper takeaways this bench reproduces: (a) the 5G uplink is the primary
// jitter source; (b) the SFU's app-layer processing is a secondary one;
// (c) the WAN itself is low and stable.
#include <chrono>
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace athena;
  using namespace std::chrono_literals;

  sim::Simulator sim;
  // Run under contention so the uplink jitter range (tens of ms, as in the
  // paper's 40–120 ms band) is visible.
  auto config = bench::PaperWorkload(3);
  config.cross_traffic = net::CapacityTrace{18e6};
  app::Session session{sim, config};
  session.Run(60s);

  const auto data = core::Correlator::Correlate(session.BuildCorrelatorInput());

  stats::PrintBanner(std::cout, "Fig. 3 — one-way delay time series (ms), 250 ms windows");
  const auto uplink = core::Analyzer::UplinkOwdSeries(data);
  const auto wan = core::Analyzer::WanOwdSeries(data);
  stats::TimeSeries icmp;
  for (const auto& r : session.icmp_prober()->results()) {
    icmp.Add(r.sent_at, sim::ToMs(r.rtt) / 2.0);
  }

  stats::Table table{{"t_s", "rtp_1to2_ms", "rtp_2to4_ms", "icmp_half_rtt_ms"}};
  const auto w_up = uplink.WindowedMean(250ms);
  const auto w_wan = wan.WindowedMean(250ms);
  const auto w_icmp = icmp.WindowedMean(250ms);
  const std::size_t rows = std::min({w_up.size(), w_wan.size(), w_icmp.size()});
  for (std::size_t i = 0; i < rows; ++i) {
    table.AddNumericRow(
        {w_up[i].window_start.seconds(), w_up[i].mean, w_wan[i].mean, w_icmp[i].mean});
  }
  table.Print(std::cout);

  stats::Cdf up_cdf{uplink.Values()};
  stats::Cdf wan_cdf{wan.Values()};
  stats::Cdf icmp_cdf{icmp.Values()};
  std::cout << "\nRTP 1→2 (5G uplink):    " << up_cdf.Summary() << '\n';
  std::cout << "RTP 2→3*→4 (WAN+SFU):   " << wan_cdf.Summary() << '\n';
  std::cout << "ICMP half-RTT (WAN):    " << icmp_cdf.Summary() << '\n';

  const double up_jitter = up_cdf.P(95) - up_cdf.P(5);
  const double wan_jitter = wan_cdf.P(95) - wan_cdf.P(5);
  const double icmp_jitter = icmp_cdf.P(95) - icmp_cdf.P(5);
  std::cout << "\njitter (p95−p5): uplink " << stats::Fmt(up_jitter, 1) << " ms"
            << " | WAN+SFU " << stats::Fmt(wan_jitter, 1) << " ms"
            << " | WAN only " << stats::Fmt(icmp_jitter, 1) << " ms\n";
  std::cout << "paper shape: uplink ≫ WAN+SFU > WAN → "
            << (up_jitter > wan_jitter && wan_jitter > icmp_jitter ? "REPRODUCED" : "NOT met")
            << '\n';
  return 0;
}
