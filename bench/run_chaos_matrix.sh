#!/usr/bin/env bash
# Builds athena_cli and runs the full chaos matrix: every built-in fault
# scenario × derived seeds, each run a complete session → fault-injected
# correlator input → correlation → live-detector replay, with the
# degradation-contract invariants checked per run (no crash, monotone
# virtual time, bounded queues, degradation reported — never silent).
#
# The matrix is executed twice, with 1 worker and with 8, and the per-run
# impaired-input digests are diffed: identical (scenario, seed) pairs must
# be byte-identical whatever the job count. Results land in
# BENCH_chaos.json at the repo root.
#
# Usage: bench/run_chaos_matrix.sh [build-dir] [seeds]
#   build-dir  default ./build
#   seeds      seeds per scenario, default 4
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
seeds="${2:-4}"

if [ ! -d "$build_dir" ]; then
  cmake -B "$build_dir" -S "$repo_root"
fi
cmake --build "$build_dir" --target athena_cli -j "$(nproc)"

cli="$build_dir/examples/athena_cli"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

echo "== chaos matrix (all scenarios x $seeds seeds, 1 worker) =="
"$cli" --chaos=all --chaos-seeds="$seeds" --jobs=1 \
  --chaos-out="$tmp/chaos_j1.json" | tee "$tmp/table_j1.txt"

echo
echo "== chaos matrix (all scenarios x $seeds seeds, 8 workers) =="
"$cli" --chaos=all --chaos-seeds="$seeds" --jobs=8 \
  --chaos-out="$repo_root/BENCH_chaos.json" | tee "$tmp/table_j8.txt"

# Cross-job determinism: identical (scenario, seed) → identical digest.
grep -o 'digest=[0-9a-f]*' "$tmp/table_j1.txt" > "$tmp/digests_j1.txt"
grep -o 'digest=[0-9a-f]*' "$tmp/table_j8.txt" > "$tmp/digests_j8.txt"
if ! diff -q "$tmp/digests_j1.txt" "$tmp/digests_j8.txt" > /dev/null; then
  echo "FAIL: per-run digests differ between --jobs=1 and --jobs=8" >&2
  diff "$tmp/digests_j1.txt" "$tmp/digests_j8.txt" >&2 || true
  exit 1
fi
echo
echo "digests byte-identical across --jobs=1 and --jobs=8 ($(wc -l < "$tmp/digests_j1.txt") runs)"
echo "wrote $repo_root/BENCH_chaos.json"
