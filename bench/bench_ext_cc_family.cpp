// Extension bench — the delay-based congestion-control family on 5G.
//
// §4 of the paper names GCC, NADA and SCReAM as the delay-based family and
// demonstrates the problem on GCC; §5.3 sketches two RAN-aware repairs
// (PHY-informed feedback masking, and L4S/ECN accelerate-brake from the
// modem). This bench runs all five controllers through identical sessions:
//   A) idle 5G cell with a fading radio (the Fig. 10 condition), and
//   B) a contended cell (bursty cross traffic near capacity),
// and compares delivered QoE. Expected shape: on the idle cell, the
// delay-based trio leaves rate on the table / reacts to phantoms, while
// the two RAN-aware designs stay calm; under real contention everyone must
// (and does) back off.
#include <chrono>
#include <iostream>

#include "bench_util.hpp"
#include "mitigation/phy_informed.hpp"

namespace {

using namespace athena;
using namespace std::chrono_literals;

struct Outcome {
  double bitrate_kbps = 0.0;
  double fps = 0.0;
  double m2e_p50 = 0.0;
  double m2e_p99 = 0.0;
  double target_kbps = 0.0;
};

Outcome Run(const std::string& controller, bool contended) {
  sim::Simulator sim;
  auto config = bench::IdleCellWorkload(64);
  if (contended) {
    config.cross_traffic = net::CapacityTrace{20e6};
    config.cross_burstiness = 0.5;
    config.cross_modulation_sigma = 0.5;
  }

  mitigation::PhyInformedController* phy = nullptr;
  if (controller == "gcc") {
    config.controller = app::SessionConfig::Controller::kGcc;
  } else if (controller == "nada") {
    config.controller = app::SessionConfig::Controller::kNada;
  } else if (controller == "scream") {
    config.controller = app::SessionConfig::Controller::kScream;
  } else if (controller == "l4s") {
    config.controller = app::SessionConfig::Controller::kL4s;
  } else if (controller == "phy-gcc") {
    config.controller_factory = [&phy] {
      auto c = std::make_unique<mitigation::PhyInformedController>();
      phy = c.get();
      return c;
    };
  }

  app::Session session{sim, config};
  if (phy != nullptr) {
    session.ran_uplink()->set_telemetry_listener(
        [&phy](const ran::TbRecord& tb) { phy->OnTbRecord(tb); });
  }
  session.Run(2min);

  Outcome out;
  out.bitrate_kbps = session.qoe().ReceiveBitrateKbps().Median();
  out.fps = session.qoe().FrameRateFps().Median();
  out.m2e_p50 = session.qoe().MouthToEarMs().Median();
  out.m2e_p99 = session.qoe().MouthToEarMs().P(99);
  out.target_kbps = session.sender().controller().target_bps() / 1e3;
  return out;
}

void Panel(const char* title, bool contended) {
  stats::PrintBanner(std::cout, title);
  stats::Table table{{"controller", "bitrate p50 kbps", "fps p50", "m2e p50 ms", "m2e p99 ms",
                      "final target kbps"}};
  for (const char* name : {"gcc", "nada", "scream", "l4s", "phy-gcc"}) {
    const auto o = Run(name, contended);
    table.AddRow({name, stats::Fmt(o.bitrate_kbps, 0), stats::Fmt(o.fps, 1),
                  stats::Fmt(o.m2e_p50, 1), stats::Fmt(o.m2e_p99, 1),
                  stats::Fmt(o.target_kbps, 0)});
  }
  table.Print(std::cout);
}

}  // namespace

int main() {
  Panel("A — idle 5G cell, fading radio (the Fig. 10 condition)", false);
  Panel("B — contended cell (bursty cross traffic near capacity)", true);
  std::cout << "\nShape: on the idle cell GCC's final target sits visibly below its\n"
               "ceiling — phantom overuse reactions (Fig. 10) cost it headroom that\n"
               "the PHY-informed variant recovers. Under genuine contention GCC\n"
               "over-reacts hardest (lowest delivered bitrate), while NADA's and\n"
               "SCReAM's smoother filters ride the episodes out; the modem-side L4S\n"
               "marker brakes in proportion to real queueing only. Delivered rate is\n"
               "bounded by the encoder's 1.2 Mbps ceiling throughout.\n";
  return 0;
}
