// Observability overhead + simulator self-profiling baseline.
//
// Three measurements, written to BENCH_obs.json (path = argv[1], default
// "BENCH_obs.json" in the working directory):
//
//   1. event_queue  — the kernel alone with profiling hooks on: raw
//      events/sec, queue high-water mark, per-callback wall time.
//   2. session_off  — a full Fig. 2 session second with observability
//      disabled (the null-sink fast path everything else compares to).
//   3. session_obs  — the same session with tracing + metrics + kernel
//      profiling all on, plus the trace volume per layer.
//
// The off/on wall-time ratio is the number the "<2% disabled overhead"
// acceptance bound watches; run_bench_obs.sh wraps this up.
//
// Methodology: off and on reps run strictly interleaved so host drift
// hits both equally, and the overhead fraction compares the MEDIAN
// per-rep times — a scheduler hiccup landing on one sub-millisecond rep
// no longer poisons a whole phase.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "app/session.hpp"
#include "core/correlator.hpp"
#include "obs/obs.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace athena;
using namespace std::chrono_literals;

double WallSeconds(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// One simulated session second, identical config to BM_FullSessionSecond.
void RunSessionSecond(sim::Simulator& sim) {
  app::SessionConfig config;
  config.channel.base_bler = 0.08;
  app::Session session{sim, config};
  session.Run(1s);
  const auto data = core::Correlator::Correlate(session.BuildCorrelatorInput());
  if (data.packets.empty()) std::abort();  // keep the work observable
}

/// Robust per-rep cost: the median ignores reps a host hiccup landed on.
double Median(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  const std::size_t n = samples.size();
  return n == 0 ? 0.0
                : (n % 2 == 1 ? samples[n / 2]
                              : 0.5 * (samples[n / 2 - 1] + samples[n / 2]));
}

double Sum(const std::vector<double>& samples) {
  double sum = 0.0;
  for (double s : samples) sum += s;
  return sum;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_obs.json";
  constexpr int kSessionReps = 8;
  constexpr int kQueueEvents = 200'000;

  // --- 1. kernel-only profile ---
  sim::Simulator kernel;
  kernel.set_profiling(true);
  for (int i = 0; i < kQueueEvents; ++i) {
    kernel.ScheduleAfter(sim::Duration{i % 997}, [] {});
  }
  kernel.RunAll();
  const sim::SimProfile queue_profile = kernel.profile();

  // --- 2 + 3. full session, observability off vs tracing + metrics +
  // kernel profiling on, interleaved ---
  std::vector<double> off_reps;
  std::vector<double> on_reps;
  std::uint64_t off_events = 0;
  std::uint64_t on_events = 0;
  std::size_t trace_events = 0;
  std::size_t layer_counts[obs::kLayerCount] = {};
  sim::SimProfile session_profile;  // last rep's profile (representative)
  std::uint64_t metric_count = 0;
  {
    sim::Simulator warmup;  // untimed: page faults, lazy tables
    RunSessionSecond(warmup);
  }
  for (int i = 0; i < kSessionReps; ++i) {
    {
      sim::Simulator sim;
      off_reps.push_back(WallSeconds([&] { RunSessionSecond(sim); }));
      off_events += sim.events_executed();
    }
    {
      sim::Simulator sim;
      obs::ObsSession observability{
          sim, obs::ObsSession::Options{.metrics_period = sim::Duration{100'000},
                                        .profile_sim = true}};
      on_reps.push_back(WallSeconds([&] { RunSessionSecond(sim); }));
      on_events += sim.events_executed();
      trace_events += observability.recorder().size();
      for (std::size_t l = 0; l < obs::kLayerCount; ++l) {
        layer_counts[l] += observability.recorder().CountLayer(static_cast<obs::Layer>(l));
      }
      session_profile = sim.profile();
      metric_count = observability.registry().CounterValue("net.captured");
    }
  }
  const double off_seconds = Sum(off_reps);
  const double on_seconds = Sum(on_reps);

  const double off_median = Median(off_reps);
  const double overhead = off_median > 0.0 ? Median(on_reps) / off_median - 1.0 : 0.0;

  std::ofstream os{out_path};
  if (!os) {
    std::cerr << "cannot write " << out_path << '\n';
    return 1;
  }
  os << "{\n";
  os << "  \"event_queue\": {\n";
  os << "    \"events\": " << queue_profile.events << ",\n";
  os << "    \"events_per_sec_wall\": " << queue_profile.events_per_second() << ",\n";
  os << "    \"mean_callback_ns\": " << queue_profile.mean_callback_ns() << ",\n";
  os << "    \"max_callback_ns\": " << queue_profile.callback_ns_max << ",\n";
  os << "    \"queue_high_water\": " << queue_profile.queue_high_water << "\n";
  os << "  },\n";
  os << "  \"session_off\": {\n";
  os << "    \"reps\": " << kSessionReps << ",\n";
  os << "    \"wall_seconds\": " << off_seconds << ",\n";
  os << "    \"median_rep_seconds\": " << Median(off_reps) << ",\n";
  os << "    \"sim_events\": " << off_events << "\n";
  os << "  },\n";
  os << "  \"session_obs\": {\n";
  os << "    \"reps\": " << kSessionReps << ",\n";
  os << "    \"wall_seconds\": " << on_seconds << ",\n";
  os << "    \"median_rep_seconds\": " << Median(on_reps) << ",\n";
  os << "    \"sim_events\": " << on_events << ",\n";
  os << "    \"trace_events\": " << trace_events << ",\n";
  os << "    \"trace_events_by_layer\": {";
  for (std::size_t l = 0; l < obs::kLayerCount; ++l) {
    os << (l > 0 ? ", " : "") << '"' << obs::ToString(static_cast<obs::Layer>(l))
       << "\": " << layer_counts[l];
  }
  os << "},\n";
  os << "    \"net_captured_packets\": " << metric_count << ",\n";
  os << "    \"profile\": {\n";
  os << "      \"events_per_sec_wall\": " << session_profile.events_per_second() << ",\n";
  os << "      \"mean_callback_ns\": " << session_profile.mean_callback_ns() << ",\n";
  os << "      \"max_callback_ns\": " << session_profile.callback_ns_max << ",\n";
  os << "      \"queue_high_water\": " << session_profile.queue_high_water << "\n";
  os << "    }\n";
  os << "  },\n";
  os << "  \"obs_on_overhead_fraction\": " << overhead << "\n";
  os << "}\n";

  std::cout << "event queue: " << queue_profile.events_per_second() / 1e6
            << " M events/s, high water " << queue_profile.queue_high_water << '\n';
  std::cout << "session second x" << kSessionReps << ": off " << off_seconds
            << " s, obs on " << on_seconds << " s (overhead " << overhead * 100.0
            << "%)\n";
  std::cout << "trace volume: " << trace_events << " events over " << kSessionReps
            << " reps\n";
  std::cout << "wrote " << out_path << '\n';
  return 0;
}
