// Extension bench — §2's "three options", quantified.
//
// "When the network cannot provide [stable low latency and capacity], VCAs
// are left with three options. First, they can reduce the sending rate at
// the cost of reduced quality … Second, they can expand the jitter buffer
// at the cost of increased mouth-to-ear delay … Finally, they may not
// react and accept a higher risk of stalls … each option has pros and
// cons."
//
// All four strategies run the same impaired 5G cell (fading radio plus a
// 300 ms handover outage every ~20 s); the table is the trade-off triangle:
// picture quality vs mouth-to-ear latency vs stall risk.
#include <chrono>
#include <iostream>

#include "bench_util.hpp"

namespace {

using namespace athena;
using namespace std::chrono_literals;

struct Outcome {
  double bitrate_kbps = 0.0;
  double ssim = 0.0;
  double fps = 0.0;
  double m2e_p50 = 0.0;
  double m2e_p99 = 0.0;
  double late_pct = 0.0;
  double frozen = 0.0;
};

Outcome Run(const std::string& strategy) {
  sim::Simulator sim;
  // Spiky-but-not-saturating impairment: an otherwise idle cell whose UE
  // crosses a cell edge every ~20 s (300 ms outage). Average capacity is
  // plentiful — the *variability* is the problem, which is what separates
  // the three coping strategies (a saturated cell would just collapse
  // everyone's rate identically).
  auto config = bench::IdleCellWorkload(55);
  config.channel = ran::ChannelModel::FadingRadio();
  config.channel.handover_interval = 20s;
  config.channel.handover_duration = 300ms;
  config.cell.cell_ul_capacity_bps = 25e6;

  if (strategy == "reduce-rate") {
    // Option 1: quality sacrificed up front.
    config.sender.video.initial_bitrate_bps = 350e3;
    config.sender.video.max_bitrate_bps = 350e3;
  } else if (strategy == "big-jitter-buffer") {
    // Option 2: smooth everything, pay mouth-to-ear — and never give the
    // expanded buffer back (tightening off).
    config.receiver.video_jb.min_playout_delay = 250ms;
    config.receiver.video_jb.jitter_multiplier = 8.0;
    config.receiver.video_jb.tighten_window_frames = 0;
  } else if (strategy == "accept-stalls") {
    // Option 3: keep latency minimal — tiny buffer, aggressive tightening
    // back to it after every transient.
    config.receiver.video_jb.min_playout_delay = 5ms;
    config.receiver.video_jb.jitter_multiplier = 0.5;
    config.receiver.video_jb.max_playout_delay = 20ms;
    config.receiver.video_jb.tighten_window_frames = 64;
  }
  // "adaptive" = the defaults: GCC + Zoom adaptation + adaptive buffer.

  app::Session session{sim, config};
  session.Run(2min);

  Outcome out;
  out.bitrate_kbps = session.qoe().ReceiveBitrateKbps().Median();
  out.ssim = session.qoe().Ssim().Median();
  out.fps = session.qoe().FrameRateFps().Median();
  out.m2e_p50 = session.qoe().MouthToEarMs().Median();
  out.m2e_p99 = session.qoe().MouthToEarMs().P(99);
  out.late_pct = session.qoe().video_frames_rendered()
                     ? 100.0 * static_cast<double>(session.qoe().late_frames()) /
                           static_cast<double>(session.qoe().video_frames_rendered())
                     : 0.0;
  out.frozen =
      static_cast<double>(session.receiver().screen().FrozenFrameCount(2 * 35'714us));
  return out;
}

}  // namespace

int main() {
  stats::PrintBanner(std::cout,
                     "§2's three options on the same impaired 5G cell (2 min, fading "
                     "radio + 300 ms handover every ~20 s)");
  stats::Table table{{"strategy", "bitrate kbps", "SSIM", "fps", "m2e p50 ms", "m2e p99 ms",
                      "late frames %", "frozen frames"}};
  auto row = [&](const char* name, const Outcome& o) {
    table.AddRow({name, stats::Fmt(o.bitrate_kbps, 0), stats::Fmt(o.ssim, 3),
                  stats::Fmt(o.fps, 1), stats::Fmt(o.m2e_p50, 0), stats::Fmt(o.m2e_p99, 0),
                  stats::Fmt(o.late_pct, 1), stats::Fmt(o.frozen, 0)});
  };
  row("1. reduce sending rate", Run("reduce-rate"));
  row("2. expand jitter buffer", Run("big-jitter-buffer"));
  row("3. accept stall risk", Run("accept-stalls"));
  row("adaptive (GCC + Zoom FSM)", Run("adaptive"));
  table.Print(std::cout);

  std::cout << "\nThe §2 trade-off triangle: option 1 trades SSIM, option 2 trades\n"
               "mouth-to-ear delay, option 3 trades smoothness (late/frozen frames).\n"
               "The adaptive stack navigates between them — which is exactly why the\n"
               "paper wants it to see the RAN clearly.\n";
  return 0;
}
