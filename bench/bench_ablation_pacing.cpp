// Ablation — burst sending (what the paper observes Zoom doing) vs paced
// sending on the slotted 5G uplink.
//
// §3.1's delay spread exists because a whole frame burst hits the RLC
// buffer at once and then trickles out grant by grant. A pacer spaces the
// packets at 2.5× the media rate instead: each packet tends to catch its
// own proactive grant, but the later packets of a frame leave the *sender*
// later. This bench quantifies the trade on frame-level delay — exactly
// the kind of sender-side mitigation the paper's §5.3 asks applications to
// reason about.
#include <chrono>
#include <iostream>

#include "bench_util.hpp"

namespace {

using namespace athena;
using namespace std::chrono_literals;

struct Outcome {
  stats::Cdf frame_delay_ms;
  stats::Cdf core_spread_ms;
  double bitrate_kbps = 0.0;
};

Outcome Run(bool paced, double rate_factor = 2.5) {
  sim::Simulator sim;
  auto config = bench::IdleCellWorkload(77);
  config.channel.bad_state_bler = 0.0;  // isolate scheduling
  config.sender.pacing_enabled = paced;
  config.sender.pacer.rate_factor = rate_factor;
  app::Session session{sim, config};
  session.Run(60s);
  const auto data = core::Correlator::Correlate(session.BuildCorrelatorInput());
  Outcome out;
  out.frame_delay_ms = core::Analyzer::FrameDelayCdf(data);
  out.core_spread_ms = core::Analyzer::DelaySpreadCdf(data, core::Analyzer::SpreadAt::kCore,
                                                      /*include_audio=*/false);
  out.bitrate_kbps = session.qoe().ReceiveBitrateKbps().Median();
  return out;
}

}  // namespace

int main() {
  const auto burst = Run(false);
  const auto paced25 = Run(true, 2.5);
  const auto paced10 = Run(true, 10.0);

  stats::PrintBanner(std::cout,
                     "Ablation — burst vs paced sending on the slotted 5G uplink (idle cell)");
  stats::Table table{{"sender", "frame delay p50 ms", "p95 ms", "RAN spread p50 ms",
                      "spread p95 ms", "bitrate kbps"}};
  auto row = [&](const char* name, const Outcome& o) {
    table.AddRow({name, stats::Fmt(o.frame_delay_ms.Median(), 2),
                  stats::Fmt(o.frame_delay_ms.P(95), 2),
                  stats::Fmt(o.core_spread_ms.Median(), 2),
                  stats::Fmt(o.core_spread_ms.P(95), 2), stats::Fmt(o.bitrate_kbps, 0)});
  };
  row("burst (Zoom-like)", burst);
  row("paced ×2.5 (WebRTC-like)", paced25);
  row("paced ×10 (nearly burst)", paced10);
  table.Print(std::cout);

  std::cout << "\nReading (a negative result worth having): on a proactive-grant TDD\n"
               "uplink, pacing does NOT help — the grant machinery already drains a\n"
               "burst within one BSR cycle (~12.5 ms), so WebRTC-style ×2.5 pacing just\n"
               "adds sender-side holding time on top of the slot alignment, *increasing*\n"
               "frame delay and the core-side spread. Burst-sending VCAs like Zoom are\n"
               "accidentally well-matched to this scheduler; pacing decisions should be\n"
               "RAN-aware (§5.3) rather than universal.\n";
  return 0;
}
