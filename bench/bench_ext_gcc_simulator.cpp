// Extension bench — the §5.1 trace-driven "GCC simulator".
//
// "We plan to use Athena to further measure GCC and work toward a GCC
// simulator that evaluates video-conferencing behavior in various
// physical-layer contexts."
//
// Step 1: run one call over the 5G cell and harvest its per-packet
//         (send-offset → uplink delay) trace via the correlator.
// Step 2: replay that byte-identical delay sequence through a
//         TraceDrivenLink against different congestion-controller
//         configurations — a perfectly controlled A/B comparison that no
//         live testbed can give you.
#include <chrono>
#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "net/trace_link.hpp"

namespace {

using namespace athena;
using namespace std::chrono_literals;

struct Outcome {
  double final_target_kbps = 0.0;
  std::uint64_t overuse_events = 0;
  double fps = 0.0;
  double bitrate_kbps = 0.0;
};

/// Replays `trace` under a sender/receiver pair using the given GCC config.
Outcome Replay(const net::DelayTrace& trace, cc::GoogCc::Config gcc_config) {
  sim::Simulator sim;
  net::PacketIdGenerator ids;
  media::QoeCollector qoe;

  auto sender = std::make_unique<app::VcaSender>(
      sim, app::VcaSender::Config{}, std::make_unique<app::GccController>(gcc_config), ids,
      sim::Rng{4});
  auto receiver = std::make_unique<app::VcaReceiver>(
      sim, app::VcaReceiver::DefaultConfig(), ids, qoe);
  sender->set_qoe(&qoe);

  net::TraceDrivenLink uplink{sim, trace};
  net::FixedDelayLink wan{sim, {.delay = 22ms}};          // core→receiver tail
  net::FixedDelayLink feedback{sim, {.delay = 26ms}};     // return path

  sender->set_outbound(uplink.AsHandler());
  uplink.set_sink(wan.AsHandler());
  wan.set_sink(receiver->AsHandler());
  receiver->set_feedback_path(feedback.AsHandler());
  feedback.set_sink(sender->FeedbackHandler());

  receiver->Start();
  sender->Start();
  sim.RunUntil(sim::kEpoch + 2min);
  sender->Stop();
  receiver->Stop();

  const auto& gcc = dynamic_cast<app::GccController&>(sender->controller()).gcc();
  return Outcome{gcc.target_bps() / 1e3, gcc.overuse_events(),
                 qoe.FrameRateFps().Median(), qoe.ReceiveBitrateKbps().Median()};
}

}  // namespace

int main() {
  // --- step 1: record the 5G context once ---
  sim::Simulator sim;
  app::Session recording{sim, bench::IdleCellWorkload(96)};
  recording.Run(2min);
  const auto data = core::Correlator::Correlate(recording.BuildCorrelatorInput());
  const auto trace = core::Analyzer::BuildDelayTrace(data);
  std::cout << "recorded delay trace: " << trace.size() << " samples over "
            << stats::Fmt(sim::ToSeconds(trace.span()), 1) << " s (5G idle cell, fading radio)\n";

  // --- step 2: replay against GCC variants ---
  stats::PrintBanner(std::cout,
                     "§5.1 — GCC variants against the byte-identical recorded 5G delay trace");
  stats::Table table{{"variant", "overuse events", "final target kbps", "bitrate p50 kbps",
                      "fps p50"}};
  auto row = [&](const char* name, cc::GoogCc::Config config) {
    const auto o = Replay(trace, config);
    table.AddRow({name, std::to_string(o.overuse_events), stats::Fmt(o.final_target_kbps, 0),
                  stats::Fmt(o.bitrate_kbps, 0), stats::Fmt(o.fps, 1)});
  };

  row("stock WebRTC parameters", {});
  {
    cc::GoogCc::Config c;
    c.trendline.window_size = 10;
    row("short trendline window (10)", c);
  }
  {
    cc::GoogCc::Config c;
    c.trendline.min_threshold_ms = 2.0;
    row("aggressive threshold floor (2 ms)", c);
  }
  {
    cc::GoogCc::Config c;
    c.trendline.min_threshold_ms = 15.0;
    row("5G-tolerant threshold floor (15 ms)", c);
  }
  {
    cc::GoogCc::Config c;
    c.trendline.smoothing = 0.6;
    row("less smoothing (0.6)", c);
  }
  table.Print(std::cout);

  std::cout << "\nEvery variant saw the *same* per-packet delays — differences are purely\n"
               "the controller's filter design. This is the controlled-experiment loop\n"
               "the paper's §5.1 roadmap asks for.\n";
  return 0;
}
