// Extension bench — the same call over four access technologies (§5.1:
// "All underlying networks introduce different artifacts that are of
// varying importance to the different classes of applications").
//
//   5G TDD   — slotted grants: delay quantized on the 2.5 ms grid, BSR
//              spreads, 10 ms HARQ steps
//   5G FDD   — denser uplink opportunities: better for sporadic packets,
//              narrower per-slot TBs for bursts
//   Wi-Fi    — contention: no grid at all, heavy-tailed access delay
//   LEO sat  — high smooth floor + periodic handover stalls
//
// For each: uplink delay CDF, the grid-quantization fraction (the Athena
// fingerprint that distinguishes slotted access), and receiver QoE.
#include <algorithm>
#include <array>
#include <chrono>
#include <iostream>

#include "bench_util.hpp"
#include "core/clock_sync.hpp"

namespace {

using namespace athena;
using namespace std::chrono_literals;

struct Outcome {
  stats::Cdf owd_ms;
  double grid_fraction = 0.0;
  double bitrate_kbps = 0.0;
  double fps = 0.0;
  double m2e_p50 = 0.0;
  double m2e_p99 = 0.0;
};

Outcome Run(app::SessionConfig::Access access, bool fdd = false) {
  sim::Simulator sim;
  app::SessionConfig config;
  config.seed = 72;
  config.access = access;
  if (access == app::SessionConfig::Access::k5G) {
    config.channel = ran::ChannelModel::FadingRadio();
    if (fdd) {
      config.cell = ran::RanConfig::FddLikeCell();
      config.cell.cell_ul_capacity_bps = 25e6;
    } else {
      config.cell.cell_ul_capacity_bps = 25e6;
    }
  }
  config.wifi.channel_load = 0.45;
  app::Session session{sim, config};
  session.Run(2min);

  Outcome out;
  const auto pairs = core::ClockSync::JoinCaptures(session.sender_capture().records(),
                                                   session.core_capture().records());
  // Quantization fingerprint: arrival-time *phase* concentration. On a
  // slotted uplink, arrivals land on the slot grid, so the arrival time
  // modulo 2.5 ms piles into one phase bin; contention-based access
  // spreads uniformly. (Per-packet OWD is never quantized — send times
  // are arbitrary — which is why the paper's Fig. 5 measures frame
  // spreads and Fig. 9 plots arrival timelines.)
  constexpr int kPhaseBins = 25;  // 0.1 ms resolution over the 2.5 ms grid
  std::array<std::size_t, kPhaseBins> phase_bins{};
  for (const auto& p : pairs) {
    out.owd_ms.Add(sim::ToMs(p.b_ts - p.a_ts));
    const auto phase_us = p.b_ts.us() % 2500;
    ++phase_bins[static_cast<std::size_t>(phase_us / 100)];
  }
  const auto mode = *std::max_element(phase_bins.begin(), phase_bins.end());
  out.grid_fraction =
      pairs.empty() ? 0.0 : static_cast<double>(mode) / static_cast<double>(pairs.size());
  out.bitrate_kbps = session.qoe().ReceiveBitrateKbps().Median();
  out.fps = session.qoe().FrameRateFps().Median();
  out.m2e_p50 = session.qoe().MouthToEarMs().Median();
  out.m2e_p99 = session.qoe().MouthToEarMs().P(99);
  return out;
}

}  // namespace

int main() {
  const auto tdd = Run(app::SessionConfig::Access::k5G, false);
  const auto fdd = Run(app::SessionConfig::Access::k5G, true);
  const auto wifi = Run(app::SessionConfig::Access::kWifiLike);
  const auto leo = Run(app::SessionConfig::Access::kLeoSat);

  bench::PrintCdfPanel("§5.1 extension — uplink one-way delay CDF (ms) by access technology",
                       {{"5G_TDD", &tdd.owd_ms},
                        {"5G_FDD", &fdd.owd_ms},
                        {"WiFi", &wifi.owd_ms},
                        {"LEO", &leo.owd_ms}});

  stats::PrintBanner(std::cout, "artifact fingerprints + QoE");
  stats::Table table{{"access", "owd p50 ms", "owd p99 ms", "arrival phase conc. %",
                      "bitrate kbps", "fps", "m2e p50 ms", "m2e p99 ms"}};
  auto row = [&](const char* name, const Outcome& o) {
    table.AddRow({name, stats::Fmt(o.owd_ms.Median(), 2), stats::Fmt(o.owd_ms.P(99), 1),
                  stats::Fmt(100 * o.grid_fraction, 1), stats::Fmt(o.bitrate_kbps, 0),
                  stats::Fmt(o.fps, 1), stats::Fmt(o.m2e_p50, 0),
                  stats::Fmt(o.m2e_p99, 0)});
  };
  row("5G TDD (paper cell)", tdd);
  row("5G FDD-like", fdd);
  row("Wi-Fi-like", wifi);
  row("LEO-satellite-like", leo);
  table.Print(std::cout);

  std::cout << "\nShape: only the slotted 5G uplinks show the grid fingerprint; Wi-Fi's\n"
               "delay is unquantized and heavy-tailed; LEO trades a high smooth floor\n"
               "for handover stalls — each technology needs its own cross-layer story,\n"
               "which is the paper's §5.1 argument for Athena as a blueprint.\n";
  return 0;
}
