// §5.3 — "More RAN-aware applications?"
//
// Plain GCC vs the PHY-informed variant that masks RAN-induced per-packet
// delay (scheduling waits, slot trickle, HARQ rounds) out of the TWCC
// feedback before the trendline filter sees it. Both run the same idle
// 5G cell with a fading radio — the Fig. 10 condition.
//
// Reported: phantom overuse events, detector state distribution, target-
// bitrate stability, and delivered QoE.
#include <chrono>
#include <iostream>

#include "bench_util.hpp"
#include "mitigation/phy_informed.hpp"
#include "stats/running_stats.hpp"

namespace {

using namespace athena;
using namespace std::chrono_literals;

struct Outcome {
  std::uint64_t overuse_events = 0;
  std::size_t overuse_states = 0;
  std::size_t underuse_states = 0;
  std::size_t updates = 0;
  double final_target_kbps = 0.0;
  double target_stddev_kbps = 0.0;
  double median_bitrate_kbps = 0.0;
  double median_fps = 0.0;
};

Outcome Summarize(const cc::GoogCc& gcc, app::Session& session) {
  Outcome out;
  out.overuse_events = gcc.overuse_events();
  stats::RunningStats target;
  for (const auto& s : gcc.history()) {
    ++out.updates;
    if (s.state == cc::BandwidthUsage::kOverusing) ++out.overuse_states;
    if (s.state == cc::BandwidthUsage::kUnderusing) ++out.underuse_states;
    target.Add(s.target_bps / 1e3);
  }
  out.final_target_kbps = gcc.target_bps() / 1e3;
  out.target_stddev_kbps = target.stddev();
  out.median_bitrate_kbps = session.qoe().ReceiveBitrateKbps().Median();
  out.median_fps = session.qoe().FrameRateFps().Median();
  return out;
}

Outcome Run(bool phy_informed) {
  sim::Simulator sim;
  auto config = bench::IdleCellWorkload(53);

  mitigation::PhyInformedController* phy = nullptr;
  if (phy_informed) {
    config.controller_factory = [&phy]() {
      auto c = std::make_unique<mitigation::PhyInformedController>();
      phy = c.get();
      return c;
    };
  }
  app::Session session{sim, config};
  if (phy_informed) {
    session.ran_uplink()->set_telemetry_listener(
        [&](const ran::TbRecord& tb) { phy->OnTbRecord(tb); });
  }
  session.Run(5min);

  const auto& gcc = phy_informed
                        ? phy->gcc()
                        : dynamic_cast<app::GccController&>(session.sender().controller()).gcc();
  return Summarize(gcc, session);
}

}  // namespace

int main() {
  const auto plain = Run(false);
  const auto masked = Run(true);

  stats::PrintBanner(std::cout,
                     "§5.3 — plain GCC vs PHY-informed GCC on an idle 5G cell (5 min)");
  stats::Table table{{"metric", "plain GCC", "PHY-informed"}};
  auto row = [&](const char* name, double a, double b, int precision = 1) {
    table.AddRow({name, stats::Fmt(a, precision), stats::Fmt(b, precision)});
  };
  row("overuse events (phantom)", static_cast<double>(plain.overuse_events),
      static_cast<double>(masked.overuse_events), 0);
  row("overuse detector states", static_cast<double>(plain.overuse_states),
      static_cast<double>(masked.overuse_states), 0);
  row("underuse detector states", static_cast<double>(plain.underuse_states),
      static_cast<double>(masked.underuse_states), 0);
  row("target stddev (kbps)", plain.target_stddev_kbps, masked.target_stddev_kbps);
  row("final target (kbps)", plain.final_target_kbps, masked.final_target_kbps);
  row("receive bitrate p50 (kbps)", plain.median_bitrate_kbps, masked.median_bitrate_kbps);
  row("frame rate p50 (fps)", plain.median_fps, masked.median_fps);
  table.Print(std::cout);

  std::cout << "\npaper direction: PHY information fed to the application removes the "
               "phantom overuse reactions → "
            << (masked.overuse_events < plain.overuse_events ? "REPRODUCED" : "NOT met")
            << '\n';
  return 0;
}
