// §5.2 — "A more application-aware RAN?"
//
// Compares frame-level delay (first packet sent → last packet at the core;
// "extremely relevant as a frame cannot be rendered until all of its
// packets have been received") across three uplink schedulers:
//   1. baseline   — proactive + BSR-requested grants (§3.1)
//   2. app-aware  — RTP-extension media metadata drives right-sized grants
//                   at frame-generation times (§5.2, first flavor)
//   3. predictor  — the RAN learns the periodic traffic pattern itself
//                   (§5.2, second flavor; RIC-style)
//
// Paper claim: "Either approach has the potential to cut the delay
// inflation experienced by frames in half."
#include <chrono>
#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "mitigation/app_aware_policy.hpp"
#include "mitigation/traffic_predictor.hpp"

namespace {

using namespace athena;
using namespace std::chrono_literals;

struct Outcome {
  stats::Cdf frame_delay_ms;
  double utilization = 0.0;
  std::uint64_t wasted_requested = 0;
};

Outcome RunScheduler(const std::string& kind) {
  sim::Simulator sim;
  auto config = bench::IdleCellWorkload(52);

  mitigation::AppAwareGrantPolicy* aware = nullptr;
  if (kind == "app-aware") {
    config.grant_policy = [&aware](const ran::RanConfig& cell) {
      auto p = std::make_unique<mitigation::AppAwareGrantPolicy>(cell);
      aware = p.get();
      return p;
    };
  } else if (kind == "predictor") {
    config.grant_policy = [](const ran::RanConfig& cell) {
      return std::make_unique<mitigation::TrafficPredictorPolicy>(cell);
    };
  }

  app::Session session{sim, config};

  // The application refreshes its media-metadata announcements every
  // 100 ms (frame cadence, current frame-size estimate) — §5.2's
  // "periodically updated estimate".
  std::unique_ptr<sim::PeriodicTimer> announcer;
  if (kind == "app-aware") {
    announcer = std::make_unique<sim::PeriodicTimer>(sim, 100ms, [&] {
      auto& enc = session.sender().video_encoder();
      const double fps = media::NominalFps(enc.mode());
      aware->Announce(mitigation::StreamAnnouncement{
          .stream_id = 1,
          .next_unit_at = sim.Now(),
          .unit_interval = enc.frame_interval(),
          .unit_bytes = static_cast<std::uint32_t>(enc.target_bitrate() / fps / 8.0) +
                        3 * net::kRtpHeaderOverheadBytes,
      });
      aware->Announce(mitigation::StreamAnnouncement{
          .stream_id = 2,
          .next_unit_at = sim.Now(),
          .unit_interval = 20ms,
          .unit_bytes = 160 + net::kRtpHeaderOverheadBytes,
      });
    });
    announcer->Start(sim::Duration{0});
  }

  session.Run(2min);
  announcer.reset();

  const auto data = core::Correlator::Correlate(session.BuildCorrelatorInput());
  Outcome out;
  out.frame_delay_ms = core::Analyzer::FrameDelayCdf(data);
  out.utilization = session.ran_uplink()->counters().GrantUtilization();
  out.wasted_requested = session.ran_uplink()->counters().wasted_requested_bytes;
  return out;
}

}  // namespace

int main() {
  const auto baseline = RunScheduler("baseline");
  const auto aware = RunScheduler("app-aware");
  const auto predictor = RunScheduler("predictor");

  bench::PrintCdfPanel("§5.2 — video frame-level delay CDF (ms), by uplink scheduler",
                       {{"baseline", &baseline.frame_delay_ms},
                        {"app_aware", &aware.frame_delay_ms},
                        {"predictor", &predictor.frame_delay_ms}});

  stats::PrintBanner(std::cout, "§5.2 verdict");
  stats::Table table{{"scheduler", "frame delay p50 ms", "p95 ms", "grant util %",
                      "wasted req. bytes"}};
  auto row = [&](const char* name, const Outcome& o) {
    table.AddRow({name, stats::Fmt(o.frame_delay_ms.Median(), 2),
                  stats::Fmt(o.frame_delay_ms.P(95), 2),
                  stats::Fmt(100.0 * o.utilization, 1), std::to_string(o.wasted_requested)});
  };
  row("baseline (BSR)", baseline);
  row("app-aware (RTP metadata)", aware);
  row("predictor (RIC learning)", predictor);
  table.Print(std::cout);

  const double aware_factor = baseline.frame_delay_ms.Median() / aware.frame_delay_ms.Median();
  const double pred_factor =
      baseline.frame_delay_ms.Median() / predictor.frame_delay_ms.Median();
  std::cout << "\nmedian frame-delay reduction: app-aware " << stats::Fmt(aware_factor, 2)
            << "x, predictor " << stats::Fmt(pred_factor, 2) << "x\n";
  std::cout << "paper claim (\"cut the delay inflation in half\"): "
            << (aware_factor >= 1.5 ? "REPRODUCED (app-aware)" : "NOT met") << '\n';
  return 0;
}
