#!/usr/bin/env bash
# Long-run resilience soak: drives one session for >= 50x the normal 2 s
# test length under a checkpoint cadence and a hard input byte budget,
# then reports peak RSS, overload-governor shed rates, and checkpoint
# size/serialize cost. Results land in BENCH_resilience.json at the repo
# root.
#
# A second, shorter supervised pass kills the process mid-run and checks
# the restored digest against an uninterrupted run — the determinism
# contract at soak cadence, not just at test length.
#
# Usage: bench/run_soak.sh [build-dir] [virtual-seconds]
#   build-dir        default ./build
#   virtual-seconds  soak length, default 100 (= 50x the 2 s session)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
seconds="${2:-100}"

if [ "$seconds" -lt 100 ]; then
  echo "note: $seconds s is below the 50x soak floor (100 s)" >&2
fi

if [ ! -d "$build_dir" ]; then
  cmake -B "$build_dir" -S "$repo_root"
fi
cmake --build "$build_dir" --target bench_resilience athena_cli -j "$(nproc)"

echo "== soak: ${seconds} s virtual, checkpointed + budgeted =="
"$build_dir/bench/bench_resilience" --duration="$seconds" \
  --out="$repo_root/BENCH_resilience.json"

echo
echo "== kill/restore at soak cadence =="
cli="$build_dir/examples/athena_cli"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

"$cli" --duration=10 --checkpoint-every=1000 --supervise --kill-at=6500 \
  > "$tmp/supervised.txt"
grep -E "restored from checkpoint|supervision:" "$tmp/supervised.txt"
"$cli" --duration=10 --checkpoint-every=1000 > "$tmp/plain.txt"

killed_digest="$(grep -o 'final state digest: [0-9a-f]*' "$tmp/supervised.txt")"
plain_digest="$(grep -o 'final state digest: [0-9a-f]*' "$tmp/plain.txt")"
if [ "$killed_digest" != "$plain_digest" ]; then
  echo "FAIL: restored digest differs from the uninterrupted run" >&2
  echo "  supervised: $killed_digest" >&2
  echo "  plain:      $plain_digest" >&2
  exit 1
fi
echo "restored run digest matches the uninterrupted run ($killed_digest)"
echo "wrote $repo_root/BENCH_resilience.json"
