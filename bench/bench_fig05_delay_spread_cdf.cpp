// Fig. 5 — "Delay spread introduced in the RAN uplink."
//
// Per media unit (video frame / audio sample), the time between its first
// and last packet, measured at the sender and at the 5G core, over a
// five-minute period without cross traffic. Expected shape: ~0 at the
// sender (frames leave as bursts), smeared out at the core *in increments
// of 2.5 ms* (the TDD UL slot period).
#include <chrono>
#include <iostream>

#include "bench_util.hpp"
#include "stats/histogram.hpp"

int main() {
  using namespace athena;
  using namespace std::chrono_literals;

  sim::Simulator sim;
  auto config = bench::IdleCellWorkload(5);
  app::Session session{sim, config};
  session.Run(5min);

  const auto data = core::Correlator::Correlate(session.BuildCorrelatorInput());
  const auto at_sender = core::Analyzer::DelaySpreadCdf(data, core::Analyzer::SpreadAt::kSender);
  const auto at_core = core::Analyzer::DelaySpreadCdf(data, core::Analyzer::SpreadAt::kCore);

  bench::PrintCdfPanel("Fig. 5 — per-frame delay spread CDF (ms)",
                       {{"sender", &at_sender}, {"5G_core", &at_core}}, 24);

  // The quantization evidence: histogram of core-side spreads and the
  // fraction sitting on the 2.5 ms grid.
  stats::Histogram hist{0.0, 30.0, 120};
  for (const auto& f : data.frames) {
    if (f.complete_at_core) hist.Add(sim::ToMs(f.CoreSpread()));
  }
  std::cout << "\ncore-side spread histogram (note the 2.5 ms comb):\n" << hist.Render(40);

  const double on_grid = core::Analyzer::SpreadGridFraction(data, 2500us, 100us);
  std::cout << "fraction of spreads on the 2.5 ms slot grid: " << stats::Fmt(on_grid, 4)
            << "  → " << (on_grid > 0.95 ? "REPRODUCED" : "NOT met") << '\n';
  std::cout << "sender p95 " << stats::Fmt(at_sender.P(95), 3) << " ms vs core p95 "
            << stats::Fmt(at_core.P(95), 3) << " ms\n";
  return 0;
}
