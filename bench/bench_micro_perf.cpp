// Micro-benchmarks (google-benchmark) for the hot paths: the event queue,
// the RAN slot machinery, GCC's per-feedback work, the correlator, and the
// jitter buffer. These guard the "simulate 20-minute calls in seconds"
// property that the figure benches rely on.
#include <benchmark/benchmark.h>

#include <chrono>

#include "app/session.hpp"
#include "cc/gcc.hpp"
#include "core/correlator.hpp"
#include "legacy_event_queue.hpp"
#include "media/jitter_buffer.hpp"
#include "obs/trace.hpp"
#include "queue_workload.hpp"
#include "rtp/packetizer.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace athena;
using namespace std::chrono_literals;
using sim::kEpoch;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < 10'000; ++i) {
      sim.ScheduleAfter(sim::Duration{i % 997}, [] {});
    }
    sim.RunAll();
    benchmark::DoNotOptimize(sim.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_EventQueueScheduleRun);

// 50k items (more than kQueueWorkloadDepth) so the steady-state
// schedule/cancel/pop interleave engages — the same parameters the
// committed BENCH_perf.json speedup is measured with.
void BM_EventQueueMixNew(benchmark::State& state) {
  std::uint64_t counter = 0;
  for (auto _ : state) {
    sim::EventQueue q;
    bench::QueueWorkload(q, &counter, 50'000);
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * 50'000);
}
BENCHMARK(BM_EventQueueMixNew);

void BM_EventQueueMixLegacy(benchmark::State& state) {
  std::uint64_t counter = 0;
  for (auto _ : state) {
    bench::legacy::EventQueue q;
    bench::QueueWorkload(q, &counter, 50'000);
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * 50'000);
}
BENCHMARK(BM_EventQueueMixLegacy);

void BM_TraceEmitInstant(benchmark::State& state) {
  // Cost of one enabled emit: POD fill + interned-id store + chunk append.
  obs::TraceRecorder recorder;
  obs::ScopedTraceSink scope{&recorder};
  std::uint64_t i = 0;
  for (auto _ : state) {
    obs::TraceInstant(obs::Layer::kNet, obs::names::kPktHop,
                      kEpoch + sim::Duration{static_cast<std::int64_t>(i)},
                      {{"packet", static_cast<double>(i)}, {"bytes", 1200.0}});
    ++i;
    if (recorder.size() >= 1'000'000) recorder.Clear();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(i));
}
BENCHMARK(BM_TraceEmitInstant);

void BM_PeriodicTimerTicks(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    std::uint64_t ticks = 0;
    sim::PeriodicTimer timer{sim, sim::Duration{100}, [&] { ++ticks; }};
    timer.Start();
    sim.RunUntil(kEpoch + 1s);
    benchmark::DoNotOptimize(ticks);
  }
}
BENCHMARK(BM_PeriodicTimerTicks);

void BM_Packetizer(benchmark::State& state) {
  net::PacketIdGenerator ids;
  rtp::TransportSequencer seq;
  rtp::Packetizer packetizer{{.ssrc = 1, .flow = 1}, ids, seq};
  std::uint64_t frame_id = 1;
  for (auto _ : state) {
    const auto packets = packetizer.Packetize(
        rtp::MediaUnit{.frame_id = frame_id++, .payload_bytes = 8000}, kEpoch);
    benchmark::DoNotOptimize(packets.size());
  }
}
BENCHMARK(BM_Packetizer);

void BM_GccFeedbackBatch(benchmark::State& state) {
  cc::GoogCc::Config config;
  config.keep_history = false;
  cc::GoogCc gcc{config};
  std::uint16_t seq = 0;
  std::int64_t t = 0;
  for (auto _ : state) {
    std::vector<rtp::PacketReport> reports;
    reports.reserve(16);
    for (int i = 0; i < 16; ++i) {
      t += 7'000;
      reports.push_back(rtp::PacketReport{
          .transport_seq = seq++,
          .send_ts = kEpoch + sim::Duration{t},
          .recv_ts = kEpoch + sim::Duration{t + 20'000 + (t % 5000)},
          .size_bytes = 1200,
      });
    }
    benchmark::DoNotOptimize(gcc.OnFeedback(reports, kEpoch + sim::Duration{t}));
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_GccFeedbackBatch);

void BM_JitterBuffer(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    media::JitterBuffer jb{sim, media::JitterBuffer::Config{}};
    jb.set_render_callback([](const media::RenderedFrame&) {});
    for (int i = 0; i < 1000; ++i) {
      sim.ScheduleAfter(sim::Duration{i * 33'000}, [&jb, i] {
        net::Packet p;
        p.id = static_cast<net::PacketId>(i + 1);
        p.kind = net::PacketKind::kRtpVideo;
        p.size_bytes = 1200;
        p.rtp = net::RtpMeta{.media_ts = static_cast<std::uint32_t>(i) * 2970,
                             .marker = true,
                             .frame_id = static_cast<std::uint64_t>(i) * 2 + 1,
                             .packets_in_frame = 1,
                             .packet_index_in_frame = 0};
        jb.OnPacket(p);
      });
    }
    sim.RunAll();
    benchmark::DoNotOptimize(jb.frames_rendered());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_JitterBuffer);

void BM_RanUplinkSecondOfTraffic(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    ran::RanUplink ran{sim, ran::RanConfig::PaperCell(),
                       ran::ChannelModel{{.base_bler = 0.08}, sim::Rng{1}},
                       ran::CrossTraffic::Idle(sim::Rng{2})};
    ran.set_core_sink([](const net::Packet&) {});
    ran.Start();
    for (int i = 0; i < 100; ++i) {
      sim.ScheduleAfter(sim::Duration{i * 10'000}, [&ran, i, &sim] {
        net::Packet p;
        p.id = static_cast<net::PacketId>(i + 1);
        p.size_bytes = 1200;
        p.created_at = sim.Now();
        ran.SendFromUe(p);
      });
    }
    sim.RunUntil(kEpoch + 1s);
    benchmark::DoNotOptimize(ran.counters().packets_delivered);
  }
}
BENCHMARK(BM_RanUplinkSecondOfTraffic);

void BM_CorrelatorPerPacket(benchmark::State& state) {
  // One session's logs, correlated repeatedly.
  sim::Simulator sim;
  app::SessionConfig config;
  config.channel.base_bler = 0.08;
  app::Session session{sim, config};
  session.Run(10s);
  const auto input = session.BuildCorrelatorInput();
  for (auto _ : state) {
    const auto data = core::Correlator::Correlate(input);
    benchmark::DoNotOptimize(data.packets.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(input.sender.size()));
}
BENCHMARK(BM_CorrelatorPerPacket);

void BM_FullSessionSecond(benchmark::State& state) {
  // End-to-end cost of one simulated second of a full Fig. 2 session.
  for (auto _ : state) {
    sim::Simulator sim;
    app::SessionConfig config;
    config.channel.base_bler = 0.08;
    app::Session session{sim, config};
    session.Run(1s);
    benchmark::DoNotOptimize(session.core_capture().count());
  }
}
BENCHMARK(BM_FullSessionSecond);

}  // namespace

BENCHMARK_MAIN();
