// The event queue as it was before the hot-path overhaul, kept verbatim
// (renamed into its own namespace) so bench_micro_perf / bench_perf can
// measure the new implementation against its real predecessor instead of
// a guess: std::function callbacks (heap-allocating beyond ~16 bytes of
// capture), a binary std::priority_queue that sifts whole entries
// (callback included), and an O(n) sorted-vector tombstone list.
// Benchmarks only — nothing in src/ may include this.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace athena::bench::legacy {

using sim::TimePoint;

class EventHandle {
 public:
  EventHandle() = default;

  [[nodiscard]] bool valid() const { return seq_ != 0; }

 private:
  friend class EventQueue;
  explicit EventHandle(std::uint64_t seq) : seq_(seq) {}
  std::uint64_t seq_ = 0;  // 0 = invalid
};

class EventQueue {
 public:
  using Callback = std::function<void()>;

  EventHandle Schedule(TimePoint when, Callback cb) {
    assert(cb && "scheduling an empty callback");
    const std::uint64_t seq = next_seq_++;
    heap_.push(Entry{when, seq, std::move(cb)});
    ++live_count_;
    return EventHandle{seq};
  }

  bool Cancel(EventHandle handle) {
    if (!handle.valid() || handle.seq_ >= next_seq_) return false;
    auto it = std::lower_bound(cancelled_.begin(), cancelled_.end(), handle.seq_);
    if (it != cancelled_.end() && *it == handle.seq_) return false;
    cancelled_.insert(it, handle.seq_);
    if (live_count_ > 0) --live_count_;
    return true;
  }

  [[nodiscard]] bool empty() const { return live_count_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_count_; }

  [[nodiscard]] TimePoint next_time() const {
    DropCancelledHead();
    assert(!heap_.empty() && "next_time() on an empty queue");
    return heap_.top().when;
  }

  struct Fired {
    TimePoint when;
    Callback cb;
  };

  Fired PopNext() {
    DropCancelledHead();
    assert(!heap_.empty() && "PopNext() on an empty queue");
    auto& top = const_cast<Entry&>(heap_.top());
    Fired fired{top.when, std::move(top.cb)};
    heap_.pop();
    --live_count_;
    return fired;
  }

  [[nodiscard]] std::uint64_t total_scheduled() const { return next_seq_ - 1; }

 private:
  struct Entry {
    TimePoint when;
    std::uint64_t seq = 0;
    Callback cb;

    friend bool operator>(const Entry& a, const Entry& b) {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  void DropCancelledHead() const {
    while (!heap_.empty()) {
      const auto seq = heap_.top().seq;
      if (!std::binary_search(cancelled_.begin(), cancelled_.end(), seq)) return;
      auto it = std::lower_bound(cancelled_.begin(), cancelled_.end(), seq);
      cancelled_.erase(it);
      heap_.pop();
    }
  }

  mutable std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  mutable std::vector<std::uint64_t> cancelled_;  // sorted seq numbers
  std::size_t live_count_ = 0;
  std::uint64_t next_seq_ = 1;
};

}  // namespace athena::bench::legacy
