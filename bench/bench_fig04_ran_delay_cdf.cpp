// Fig. 4 — "Zoom audio experiences lower delay than video" (CDF of RAN
// uplink delay for audio vs video packets, log-scale x in the paper).
//
// The paper's 20-minute two-party call with cross traffic stepping
// 0 / 14 / 16 / 18 Mbps in five-minute phases. Expected shape: audio below
// video at the median (single small packets ride the next proactive TB),
// but with a long tail out to ~seconds (audio queued behind video frames
// or caught in retransmission storms / contention).
#include <chrono>
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace athena;
  using namespace std::chrono_literals;

  sim::Simulator sim;
  app::Session session{sim, bench::PaperWorkload(4)};
  session.Run(20min);

  const auto data = core::Correlator::Correlate(session.BuildCorrelatorInput());
  const auto audio = core::Analyzer::RanDelayCdf(data, /*audio=*/true);
  const auto video = core::Analyzer::RanDelayCdf(data, /*audio=*/false);

  bench::PrintCdfPanel("Fig. 4 — RAN uplink delay CDF (ms)",
                       {{"audio", &audio}, {"video", &video}}, 24);

  std::cout << "\naudio median " << stats::Fmt(audio.Median(), 2) << " ms vs video median "
            << stats::Fmt(video.Median(), 2) << " ms → audio lower: "
            << (audio.Median() < video.Median() ? "REPRODUCED" : "NOT met") << '\n';
  std::cout << "audio tail: p99 " << stats::Fmt(audio.P(99), 1) << " ms, max "
            << stats::Fmt(audio.Max(), 1) << " ms (long tail: "
            << (audio.Max() > 10.0 * audio.Median() ? "REPRODUCED" : "NOT met") << ")\n";

  std::cout << "\nroot-cause breakdown over all packets:\n";
  for (const auto& [cause, count] : core::Analyzer::RootCauseBreakdown(data)) {
    std::cout << "  " << core::ToString(cause) << ": " << count << '\n';
  }
  return 0;
}
