#!/usr/bin/env bash
# Builds and runs the mitigation control-plane baseline:
#   - bench_mitigation — the mitigation on/off chaos matrix (per-scenario
#     QoE deltas, guardrail engagement, sense-to-act latency, decision
#     ledger digests) plus the cross-jobs byte-identity check — written
#     to BENCH_mitigation.json at the repo root. Exits non-zero on any
#     contract violation.
#
# Usage: bench/run_bench_mitigation.sh [build-dir] [--smoke]
#   (default build dir: ./build; --smoke uses the reduced CI sizing)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="$repo_root/build"
smoke=""
for arg in "$@"; do
  case "$arg" in
    --smoke) smoke="--smoke" ;;
    *) build_dir="$arg" ;;
  esac
done

if [ ! -d "$build_dir" ]; then
  cmake -B "$build_dir" -S "$repo_root"
fi
cmake --build "$build_dir" --target bench_mitigation -j "$(nproc)"

echo "== bench_mitigation =="
"$build_dir/bench/bench_mitigation" "$repo_root/BENCH_mitigation.json" $smoke
