#!/usr/bin/env bash
# Builds and runs the observability perf baseline:
#   - bench_micro_perf (hot-path microbenches, observability disabled) — the
#     numbers the "<2% regression when tracing is off" bound is checked against
#   - bench_obs — kernel self-profile + session tracing overhead, written to
#     BENCH_obs.json at the repo root
#
# Usage: bench/run_bench_obs.sh [build-dir]   (default: ./build)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

if [ ! -d "$build_dir" ]; then
  cmake -B "$build_dir" -S "$repo_root"
fi
cmake --build "$build_dir" --target bench_micro_perf bench_obs -j "$(nproc)"

echo "== bench_micro_perf (observability off) =="
"$build_dir/bench/bench_micro_perf" --benchmark_min_time=0.2

echo
echo "== bench_obs (profiling hooks on) =="
"$build_dir/bench/bench_obs" "$repo_root/BENCH_obs.json"
