// Telemetry-pipeline throughput and memory baseline, written to
// BENCH_telemetry.json (path = argv[1], default "BENCH_telemetry.json";
// pass --smoke for the reduced CI sizing):
//
//   1. ring_ingest  — multi-producer SPSC-shard ingest: N producer
//      threads each EmitBatch into their own ring while the collector
//      thread drains everything into a counting sink. `events_per_sec`
//      is the acceptance number (≥10M/s on 8 cores; single-core hosts
//      report their honest lower figure plus `spsc_events_per_sec`, the
//      one-ring push/pop ceiling the fleet number scales from).
//   2. rollup       — TimeBucketRollup fold rate, and the bounded-memory
//      check: folding a 10× longer horizon must leave the rollup's
//      resident bytes flat (width doubling) and peak RSS within noise.
//   3. columnar     — ATHC write and read throughput plus the
//      write→read digest round-trip (`digest_match`).
//
// bench/run_bench_telemetry.sh wraps this up.
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "obs/pipeline/collector.hpp"
#include "obs/pipeline/columnar.hpp"
#include "obs/pipeline/ring.hpp"
#include "obs/pipeline/rollup.hpp"
#include "obs/trace.hpp"
#include "obs/trace_names.hpp"
#include "sim/time.hpp"

namespace {

using namespace athena;
using namespace athena::obs;
using namespace athena::obs::pipeline;

double WallSeconds(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Peak RSS in bytes (0 where unsupported) — the flat-memory evidence.
std::size_t PeakRssBytes() {
#if defined(__unix__) || defined(__APPLE__)
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::size_t>(usage.ru_maxrss);
#else
  return static_cast<std::size_t>(usage.ru_maxrss) * 1024;
#endif
#else
  return 0;
#endif
}

/// A realistic event mix (instants with args, complete spans, counters)
/// reused as a cyclic template — generation cost stays off the clock.
std::vector<TraceEvent> MakeTemplate(std::size_t n) {
  std::vector<TraceEvent> events(n);
  for (std::size_t i = 0; i < n; ++i) {
    TraceEvent& e = events[i];
    e.ts = sim::kEpoch + std::chrono::microseconds{static_cast<std::int64_t>(i)};
    switch (i % 3) {
      case 0:
        e.phase = TraceEvent::Phase::kInstant;
        e.layer = Layer::kNet;
        e.name = names::kPktHop.id;
        e.args[0] = TraceArg{"bytes", 1200.0};
        e.args[1] = TraceArg{"hop", static_cast<double>(i % 4)};
        e.arg_count = 2;
        break;
      case 1:
        e.phase = TraceEvent::Phase::kComplete;
        e.layer = Layer::kRan;
        e.name = names::kRanTransit.id;
        e.dur = std::chrono::microseconds{120};
        e.args[0] = TraceArg{"bytes", 1500.0};
        e.arg_count = 1;
        break;
      default:
        e.phase = TraceEvent::Phase::kCounter;
        e.layer = Layer::kCc;
        e.name = names::kCcTargetBps.id;
        e.args[0] = TraceArg{"value", 2.5e6};
        e.arg_count = 1;
        break;
    }
  }
  return events;
}

/// Terminal sink: counts and forgets. Keeps the collector's drain loop
/// honest (a virtual call per batch) without buffering cost.
class CountingSink final : public TraceSink {
 public:
  void Emit(const TraceEvent&) override { ++events_; }
  void EmitBatch(const TraceEvent*, std::size_t count) override { events_ += count; }
  [[nodiscard]] std::uint64_t events() const { return events_; }

 private:
  std::uint64_t events_ = 0;
};

struct RingIngestResult {
  double events_per_sec = 0.0;
  double spsc_events_per_sec = 0.0;
  std::uint64_t delivered = 0;
  std::uint64_t shed = 0;
  unsigned producers = 0;
};

RingIngestResult BenchRingIngest(std::uint64_t events_per_producer) {
  RingIngestResult result;
  unsigned producers = std::thread::hardware_concurrency();
  if (producers < 1) producers = 1;
  if (producers > 8) producers = 8;
  result.producers = producers;

  const std::vector<TraceEvent> tmpl = MakeTemplate(4096);

  // Single-ring ceiling first: one producer, one consumer, tight loop.
  {
    SpscRing ring{1 << 14};
    std::atomic<bool> done{false};
    std::uint64_t popped = 0;
    std::thread consumer{[&] {
      std::vector<TraceEvent> buf(512);
      while (!done.load(std::memory_order_relaxed) || ring.SizeEstimate() > 0) {
        const std::size_t n = ring.PopBatch(buf.data(), buf.size());
        popped += n;
        // Yield on empty so a single-core host interleaves the two sides
        // instead of burning the quantum spinning.
        if (n == 0) std::this_thread::yield();
      }
    }};
    const double secs = WallSeconds([&] {
      std::uint64_t sent = 0;
      std::size_t off = 0;
      while (sent < events_per_producer) {
        std::size_t n = 512;
        if (off + n > tmpl.size()) off = 0;
        const std::size_t accepted = ring.PushBatch(tmpl.data() + off, n);
        sent += accepted;
        off += n;
        if (accepted == 0) std::this_thread::yield();
      }
      done.store(true, std::memory_order_relaxed);
    });
    consumer.join();
    result.spsc_events_per_sec =
        secs > 0.0 ? static_cast<double>(popped) / secs : 0.0;
  }

  // Fleet topology: `producers` shards, one collector thread, counting
  // terminal sink. Producers free-run; shed events are counted, and the
  // throughput number is *delivered* events (the honest one).
  Collector collector{{.ring_capacity = 1 << 14, .drain_batch = 512}};
  CountingSink counter;
  collector.AddSink(&counter);
  std::vector<RingTraceSink*> sinks;
  sinks.reserve(producers);
  for (unsigned p = 0; p < producers; ++p) sinks.push_back(collector.AddShard());
  collector.Start();

  const double secs = WallSeconds([&] {
    std::vector<std::thread> threads;
    threads.reserve(producers);
    for (unsigned p = 0; p < producers; ++p) {
      RingTraceSink* sink = sinks[p];
      threads.emplace_back([&, sink] {
        std::size_t off = 0;
        for (std::uint64_t sent = 0; sent < events_per_producer; sent += 256) {
          if (off + 256 > tmpl.size()) off = 0;
          sink->EmitBatch(tmpl.data() + off, 256);
          off += 256;
        }
        sink->Flush();
      });
    }
    for (auto& t : threads) t.join();
    collector.Stop();
  });

  result.delivered = collector.stats().events;
  result.shed = collector.TotalRingStats().shed();
  result.events_per_sec =
      secs > 0.0 ? static_cast<double>(result.delivered) / secs : 0.0;
  return result;
}

struct RollupResult {
  double events_per_sec = 0.0;
  std::size_t memory_1x = 0;
  std::size_t memory_10x = 0;
  std::size_t rss_before = 0;
  std::size_t rss_after_10x = 0;
  std::uint64_t rescales = 0;
};

RollupResult BenchRollup(std::uint64_t events) {
  RollupResult result;
  const std::vector<TraceEvent> tmpl = MakeTemplate(4096);
  std::vector<TraceEvent> batch = tmpl;

  // Folds `events` events whose timestamps spread across `span_seconds`
  // of virtual time; returns the rollup's resident bytes. Both horizons
  // below exceed the bucket cap (256 × 100 ms = 25.6 s), so the flat-
  // memory claim is exercised where it matters: width doubling absorbs
  // a 10× longer run with zero additional resident bytes.
  const auto fold_span = [&](double span_seconds, double* fold_secs,
                             std::uint64_t* rescales) {
    TimeBucketRollup rollup{{.bucket_width = std::chrono::milliseconds{100},
                             .max_buckets = 256}};
    const std::uint64_t batches = events / tmpl.size() + 1;
    const double secs = WallSeconds([&] {
      for (std::uint64_t b = 0; b < batches; ++b) {
        const auto offset = std::chrono::microseconds{static_cast<std::int64_t>(
            span_seconds * 1e6 * static_cast<double>(b) /
            static_cast<double>(batches))};
        for (std::size_t i = 0; i < batch.size(); ++i) {
          batch[i].ts = tmpl[i].ts + offset;
        }
        rollup.EmitBatch(batch.data(), batch.size());
      }
    });
    if (fold_secs != nullptr) {
      *fold_secs = secs;
      result.events_per_sec =
          secs > 0.0 ? static_cast<double>(rollup.events_folded()) / secs : 0.0;
    }
    if (rescales != nullptr) *rescales = rollup.rescales();
    return rollup.MemoryBytes();
  };

  double secs_1x = 0.0;
  result.rss_before = PeakRssBytes();
  result.memory_1x = fold_span(60.0, &secs_1x, nullptr);
  result.memory_10x = fold_span(600.0, nullptr, &result.rescales);
  result.rss_after_10x = PeakRssBytes();
  return result;
}

struct ColumnarResult {
  double write_events_per_sec = 0.0;
  double read_events_per_sec = 0.0;
  double bytes_per_event = 0.0;
  bool digest_match = false;
};

ColumnarResult BenchColumnar(std::uint64_t events) {
  ColumnarResult result;
  const std::vector<TraceEvent> tmpl = MakeTemplate(4096);
  std::ostringstream out;
  std::uint64_t written = 0;
  std::uint64_t write_digest = 0;
  const double write_secs = WallSeconds([&] {
    ColumnarWriter writer{out};
    for (std::uint64_t sent = 0; sent < events; sent += tmpl.size()) {
      writer.EmitBatch(tmpl.data(), tmpl.size());
    }
    writer.Finish();
    written = writer.events_written();
    write_digest = writer.digest();
  });
  result.write_events_per_sec =
      write_secs > 0.0 ? static_cast<double>(written) / write_secs : 0.0;
  result.bytes_per_event =
      written > 0 ? static_cast<double>(out.str().size()) / static_cast<double>(written)
                  : 0.0;

  std::istringstream in{out.str()};
  std::uint64_t read_count = 0;
  std::uint64_t read_digest = 0;
  const double read_secs = WallSeconds([&] {
    ColumnarReader reader{in};
    read_digest = reader.ForEach([&](const TraceEvent&) { ++read_count; });
  });
  result.read_events_per_sec =
      read_secs > 0.0 ? static_cast<double>(read_count) / read_secs : 0.0;
  result.digest_match = read_count == written && read_digest == write_digest;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_telemetry.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else {
      out_path = arg;
    }
  }

  // Smoke sizing keeps CI under a second; full sizing gives stable rates.
  const std::uint64_t ring_events = smoke ? 1u << 19 : 1u << 23;
  const std::uint64_t rollup_events = smoke ? 1u << 19 : 1u << 22;
  const std::uint64_t columnar_events = smoke ? 1u << 18 : 1u << 21;

  std::cout << "== bench_telemetry" << (smoke ? " (smoke)" : "") << " ==\n";

  const RingIngestResult ring = BenchRingIngest(ring_events);
  std::cout << "ring_ingest: " << ring.events_per_sec / 1e6
            << " M events/s delivered (" << ring.producers << " producers, "
            << ring.shed << " shed), spsc ceiling "
            << ring.spsc_events_per_sec / 1e6 << " M events/s\n";

  const RollupResult rollup = BenchRollup(rollup_events);
  std::cout << "rollup: " << rollup.events_per_sec / 1e6
            << " M folds/s, memory 1x=" << rollup.memory_1x
            << " B, 10x horizon=" << rollup.memory_10x
            << " B (rescales=" << rollup.rescales << ")\n";

  const ColumnarResult columnar = BenchColumnar(columnar_events);
  std::cout << "columnar: write " << columnar.write_events_per_sec / 1e6
            << " M events/s, read " << columnar.read_events_per_sec / 1e6
            << " M events/s, " << columnar.bytes_per_event
            << " B/event, digest_match=" << (columnar.digest_match ? "yes" : "no")
            << "\n";

  std::ofstream os{out_path};
  os << "{\n";
  os << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
  os << "  \"ring_ingest\": {\n";
  os << "    \"producers\": " << ring.producers << ",\n";
  os << "    \"events_per_sec\": " << ring.events_per_sec << ",\n";
  os << "    \"spsc_events_per_sec\": " << ring.spsc_events_per_sec << ",\n";
  os << "    \"delivered\": " << ring.delivered << ",\n";
  os << "    \"shed\": " << ring.shed << "\n";
  os << "  },\n";
  os << "  \"rollup\": {\n";
  os << "    \"events_per_sec\": " << rollup.events_per_sec << ",\n";
  os << "    \"memory_bytes_1x\": " << rollup.memory_1x << ",\n";
  os << "    \"memory_bytes_10x_horizon\": " << rollup.memory_10x << ",\n";
  os << "    \"rss_peak_before\": " << rollup.rss_before << ",\n";
  os << "    \"rss_peak_after_10x\": " << rollup.rss_after_10x << ",\n";
  os << "    \"rescales\": " << rollup.rescales << "\n";
  os << "  },\n";
  os << "  \"columnar\": {\n";
  os << "    \"write_events_per_sec\": " << columnar.write_events_per_sec << ",\n";
  os << "    \"read_events_per_sec\": " << columnar.read_events_per_sec << ",\n";
  os << "    \"bytes_per_event\": " << columnar.bytes_per_event << ",\n";
  os << "    \"digest_match\": " << (columnar.digest_match ? "true" : "false") << "\n";
  os << "  }\n";
  os << "}\n";
  std::cout << "wrote " << out_path << "\n";

  // Smoke mode doubles as the CI gate: fail loudly on broken invariants.
  if (!columnar.digest_match) return 1;
  if (rollup.memory_10x > rollup.memory_1x) return 1;
  return 0;
}
