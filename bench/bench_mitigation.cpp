// Mitigation control-plane baseline (BENCH_mitigation.json): the full
// mitigation on/off chaos matrix — per-scenario QoE deltas, guardrail
// engagement, sense-to-act latency and the ledger digests — plus the
// wall-clock overhead of running the closed loop at all.
//
// Doubles as a CI gate: exits non-zero when any pair violates the
// contract (QoE regression beyond slack, budget overrun, guardrails
// silent on hostile telemetry) or when the matrix is not byte-identical
// across job counts.
#include <chrono>
#include <cstddef>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "fault/chaos.hpp"
#include "fault/mitigation_chaos.hpp"
#include "sim/time.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::string MatrixBytes(const athena::fault::MitigationMatrixResult& result,
                        std::size_t seeds, athena::sim::Duration budget) {
  std::ostringstream os;
  // jobs pinned to 0 in the serialization so different job counts are
  // byte-comparable.
  athena::fault::WriteMitigationJson(os, result, 42, seeds, 0, budget);
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace athena;
  using namespace std::chrono_literals;
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_mitigation.json";
  bool smoke = false;
  for (int i = 2; i < argc; ++i) smoke = smoke || std::string(argv[i]) == "--smoke";

  const sim::Duration budget = 50ms;
  const std::size_t seeds = smoke ? 1 : 2;
  std::vector<fault::ChaosScenario> scenarios = fault::BuiltinScenarios();
  if (smoke) {
    // CI sizing: the clean reference plus the scenarios whose contract
    // requires visible guardrail engagement.
    std::vector<fault::ChaosScenario> subset;
    for (const fault::ChaosScenario& s : scenarios) {
      if (s.name == "clean_baseline" || s.expect.mitigation_guarded) {
        subset.push_back(s);
      }
    }
    scenarios = std::move(subset);
  }

  auto t0 = Clock::now();
  const fault::MitigationMatrixResult matrix =
      fault::RunMitigationMatrix(scenarios, 42, seeds, 8, budget);
  const double matrix_secs = SecondsSince(t0);

  fault::RenderMitigationTable(std::cout, matrix);
  std::cout << matrix.outcomes.size() << " on/off pairs in " << matrix_secs * 1e3
            << " ms\n";

  // Byte-identity across job counts: the determinism half of the gate.
  t0 = Clock::now();
  const fault::MitigationMatrixResult sequential =
      fault::RunMitigationMatrix(scenarios, 42, seeds, 1, budget);
  const double sequential_secs = SecondsSince(t0);
  const bool jobs_identical =
      MatrixBytes(matrix, seeds, budget) == MatrixBytes(sequential, seeds, budget);
  std::cout << "jobs 8 vs 1: " << (jobs_identical ? "byte-identical" : "DIVERGED")
            << " (" << sequential_secs * 1e3 << " ms sequential)\n";

  std::ofstream os{out_path};
  os << "{\n";
  os << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
  os << "  \"matrix_secs\": " << matrix_secs << ",\n";
  os << "  \"sequential_secs\": " << sequential_secs << ",\n";
  os << "  \"jobs_identical\": " << (jobs_identical ? "true" : "false") << ",\n";
  os << "  \"matrix\": ";
  {
    std::ostringstream inner;
    fault::WriteMitigationJson(inner, matrix, 42, seeds, 8, budget);
    // Indent the nested document to keep the envelope readable.
    std::string s = inner.str();
    std::string indented;
    indented.reserve(s.size());
    for (const char c : s) {
      indented += c;
      if (c == '\n') indented += "  ";
    }
    while (!indented.empty() &&
           (indented.back() == ' ' || indented.back() == '\n')) {
      indented.pop_back();
    }
    os << indented << "\n";
  }
  os << "}\n";
  std::cout << "wrote " << out_path << "\n";

  if (!matrix.all_ok()) {
    std::cerr << "mitigation matrix contract violations: " << matrix.failures()
              << "\n";
    return 1;
  }
  if (!jobs_identical) {
    std::cerr << "mitigation matrix diverged across job counts\n";
    return 1;
  }
  return 0;
}
