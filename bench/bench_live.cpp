// Live-diagnosis overhead baseline.
//
// Three configurations of the same stressed Fig. 2 session second (fading
// radio, so the detectors have real work), written to BENCH_live.json
// (path = argv[1], default "BENCH_live.json"):
//
//   1. detectors_off — observability fully disabled: the null-sink fast
//      path. The "--diagnose off costs nothing" bound compares to this.
//   2. detectors_on  — the live engine alone as the installed trace sink
//      (no recorder buffering): the incremental cost of streaming
//      detection, plus what the detectors concluded.
//   3. full_obs_live — recorder + live engine through the TraceFanout:
//      what athena_cli pays with --trace and --diagnose together.
//
// run_bench_live.sh wraps this up.
//
// Methodology: the three configurations run strictly interleaved
// (off, live, both, off, live, both, ...) so host drift hits all of them
// equally, and each configuration's cost is the MEDIAN of its per-rep
// times — a scheduler hiccup landing on one rep (these sessions are
// sub-millisecond) no longer poisons a whole phase.
#include <algorithm>
#include <array>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "app/session.hpp"
#include "core/correlator.hpp"
#include "obs/live/anomaly.hpp"
#include "obs/obs.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace athena;
using namespace std::chrono_literals;

double WallSeconds(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// One simulated stressed session second (detectors need HARQ + BSR
/// activity to exercise their full paths).
void RunSessionSecond(sim::Simulator& sim) {
  app::SessionConfig config;
  config.channel = ran::ChannelModel::FadingRadio();
  app::Session session{sim, config};
  session.Run(1s);
  const auto data = core::Correlator::Correlate(session.BuildCorrelatorInput());
  if (data.packets.empty()) std::abort();  // keep the work observable
}

struct RepResult {
  std::vector<double> rep_seconds;
  std::uint64_t sim_events = 0;

  void Add(double secs, std::uint64_t events) {
    rep_seconds.push_back(secs);
    sim_events += events;
  }

  [[nodiscard]] double wall_seconds() const {
    double sum = 0.0;
    for (double s : rep_seconds) sum += s;
    return sum;
  }

  /// Robust per-rep cost: the median ignores reps a host hiccup landed on.
  [[nodiscard]] double median_seconds() const {
    std::vector<double> sorted = rep_seconds;
    std::sort(sorted.begin(), sorted.end());
    const std::size_t n = sorted.size();
    return n == 0 ? 0.0
                  : (n % 2 == 1 ? sorted[n / 2]
                                : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]));
  }
};

void MeasureRep(RepResult& into, const std::function<void(sim::Simulator&)>& run) {
  sim::Simulator sim;
  const double secs = WallSeconds([&] { run(sim); });
  into.Add(secs, sim.events_executed());
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_live.json";
  constexpr int kReps = 8;

  std::uint64_t anomalies = 0;
  std::uint64_t deliveries = 0;
  std::array<std::uint64_t, obs::live::kAnomalyKindCount> by_kind{};
  std::size_t trace_events = 0;

  // 1. observability fully off.
  const auto run_off = [](sim::Simulator& sim) { RunSessionSecond(sim); };
  // 2. live detectors only.
  const auto run_live = [&](sim::Simulator& sim) {
    obs::ObsSession::Options options;
    options.trace = false;
    options.metrics = false;
    options.live = true;
    obs::ObsSession observability{sim, options};
    RunSessionSecond(sim);
    anomalies += observability.live()->bank().anomaly_count();
    deliveries += observability.live()->deliveries();
    for (std::size_t k = 0; k < by_kind.size(); ++k) {
      by_kind[k] += observability.live()->bank().anomaly_count(
          static_cast<obs::live::AnomalyKind>(k));
    }
  };
  // 3. recorder + live engine through the fanout.
  const auto run_both = [&](sim::Simulator& sim) {
    obs::ObsSession::Options options;
    options.live = true;
    obs::ObsSession observability{sim, options};
    RunSessionSecond(sim);
    trace_events += observability.recorder().size();
  };

  // Untimed warmup (page faults, lazily-built tables), then interleaved
  // timed reps.
  {
    RepResult scratch;
    MeasureRep(scratch, run_off);
    MeasureRep(scratch, run_both);
    anomalies = 0;
    deliveries = 0;
    by_kind = {};
    trace_events = 0;
  }
  RepResult off;
  RepResult live;
  RepResult both;
  for (int i = 0; i < kReps; ++i) {
    MeasureRep(off, run_off);
    MeasureRep(live, run_live);
    MeasureRep(both, run_both);
  }

  const auto overhead = [&](const RepResult& r) {
    const double base = off.median_seconds();
    return base > 0.0 ? r.median_seconds() / base - 1.0 : 0.0;
  };

  std::ofstream os{out_path};
  if (!os) {
    std::cerr << "cannot write " << out_path << '\n';
    return 1;
  }
  os << "{\n";
  os << "  \"reps\": " << kReps << ",\n";
  os << "  \"detectors_off\": {\n";
  os << "    \"wall_seconds\": " << off.wall_seconds() << ",\n";
  os << "    \"median_rep_seconds\": " << off.median_seconds() << ",\n";
  os << "    \"sim_events\": " << off.sim_events << "\n";
  os << "  },\n";
  os << "  \"detectors_on\": {\n";
  os << "    \"wall_seconds\": " << live.wall_seconds() << ",\n";
  os << "    \"median_rep_seconds\": " << live.median_seconds() << ",\n";
  os << "    \"sim_events\": " << live.sim_events << ",\n";
  os << "    \"deliveries_decoded\": " << deliveries << ",\n";
  os << "    \"anomalies\": " << anomalies << ",\n";
  os << "    \"anomalies_by_kind\": {";
  for (std::size_t k = 0; k < by_kind.size(); ++k) {
    os << (k > 0 ? ", " : "") << '"'
       << obs::live::SlugFor(static_cast<obs::live::AnomalyKind>(k))
       << "\": " << by_kind[k];
  }
  os << "},\n";
  os << "    \"overhead_fraction\": " << overhead(live) << "\n";
  os << "  },\n";
  os << "  \"full_obs_live\": {\n";
  os << "    \"wall_seconds\": " << both.wall_seconds() << ",\n";
  os << "    \"median_rep_seconds\": " << both.median_seconds() << ",\n";
  os << "    \"sim_events\": " << both.sim_events << ",\n";
  os << "    \"trace_events\": " << trace_events << ",\n";
  os << "    \"overhead_fraction\": " << overhead(both) << "\n";
  os << "  }\n";
  os << "}\n";

  std::cout << "session second x" << kReps << ": off " << off.wall_seconds()
            << " s, live " << live.wall_seconds() << " s ("
            << overhead(live) * 100.0 << "%), trace+live " << both.wall_seconds()
            << " s (" << overhead(both) * 100.0 << "%)\n";
  std::cout << "live diagnosis: " << anomalies << " anomalies over " << kReps
            << " reps, " << deliveries << " deliveries decoded\n";
  std::cout << "wrote " << out_path << '\n';

  // Identical event counts prove the detectors never perturb the run.
  if (off.sim_events != live.sim_events) {
    std::cerr << "ERROR: live detectors changed the simulation ("
              << off.sim_events << " vs " << live.sim_events << " events)\n";
    return 1;
  }
  return 0;
}
