// Ablations over GCC's filter parameters on the idle-5G condition of
// Fig. 10: how the trendline window, the threshold gain, and the adaptive-
// threshold rates trade phantom-overuse sensitivity against real-overuse
// responsiveness. Also compares the NADA baseline's reaction to the same
// RAN artifacts (§4 lists SCReAM/NADA/GCC as the delay-based family).
#include <chrono>
#include <iostream>

#include "bench_util.hpp"

namespace {

using namespace athena;
using namespace std::chrono_literals;

struct Row {
  std::uint64_t overuse_events = 0;
  double target_kbps = 0.0;
  double fps = 0.0;
};

Row RunGcc(cc::TrendlineEstimator::Config trendline, std::uint64_t seed = 91) {
  sim::Simulator sim;
  auto config = bench::IdleCellWorkload(seed);
  config.gcc.trendline = trendline;
  app::Session session{sim, config};
  session.Run(2min);
  const auto& gcc = dynamic_cast<app::GccController&>(session.sender().controller()).gcc();
  return Row{gcc.overuse_events(), gcc.target_bps() / 1e3,
             session.qoe().FrameRateFps().Median()};
}

}  // namespace

int main() {
  // --- trendline window size ---
  {
    stats::Table table{{"window_groups", "phantom overuse events", "final target kbps",
                        "fps p50"}};
    for (const std::size_t window : {10u, 20u, 40u, 80u}) {
      cc::TrendlineEstimator::Config t;
      t.window_size = window;
      const auto r = RunGcc(t);
      table.AddNumericRow({static_cast<double>(window),
                           static_cast<double>(r.overuse_events), r.target_kbps, r.fps});
    }
    stats::PrintBanner(std::cout,
                       "GCC ablation 1 — trendline window (short = jumpy, long = sluggish)");
    table.Print(std::cout);
  }

  // --- threshold gain ---
  {
    stats::Table table{{"threshold_gain", "phantom overuse events", "final target kbps"}};
    for (const double gain : {2.0, 4.0, 8.0}) {
      cc::TrendlineEstimator::Config t;
      t.threshold_gain = gain;
      const auto r = RunGcc(t);
      table.AddNumericRow({gain, static_cast<double>(r.overuse_events), r.target_kbps});
    }
    stats::PrintBanner(std::cout, "GCC ablation 2 — threshold gain");
    table.Print(std::cout);
  }

  // --- adaptive threshold floor ---
  {
    stats::Table table{{"min_threshold_ms", "phantom overuse events", "final target kbps"}};
    for (const double floor : {2.0, 6.0, 12.0, 25.0}) {
      cc::TrendlineEstimator::Config t;
      t.min_threshold_ms = floor;
      const auto r = RunGcc(t);
      table.AddNumericRow({floor, static_cast<double>(r.overuse_events), r.target_kbps});
    }
    stats::PrintBanner(
        std::cout, "GCC ablation 3 — threshold floor (higher = blunter but calmer on 5G)");
    table.Print(std::cout);
  }

  // --- NADA on the same network ---
  {
    sim::Simulator sim;
    auto config = bench::IdleCellWorkload(91);
    config.controller = app::SessionConfig::Controller::kNada;
    app::Session session{sim, config};
    session.Run(2min);
    const auto& nada =
        dynamic_cast<app::NadaRateController&>(session.sender().controller()).nada();
    stats::PrintBanner(std::cout, "Baseline comparison — NADA on the idle 5G cell");
    std::cout << "final target: " << stats::Fmt(nada.target_bps() / 1e3, 0)
              << " kbps, congestion signal " << stats::Fmt(nada.congestion_signal_ms(), 2)
              << " ms (queuing " << stats::Fmt(nada.queuing_delay_ms(), 2) << " ms)\n"
              << "receive bitrate p50: "
              << stats::Fmt(session.qoe().ReceiveBitrateKbps().Median(), 0) << " kbps, fps p50 "
              << stats::Fmt(session.qoe().FrameRateFps().Median(), 1) << '\n'
              << "NADA, too, reads RAN artifacts as queuing delay — the paper's point\n"
              << "generalizes across the delay-based CC family.\n";
  }
  return 0;
}
