// Sharded-world scaling baseline, written to BENCH_world.json (path =
// argv[1], default "BENCH_world.json"; pass --smoke for the reduced CI
// sizing):
//
// Runs the same 512-UE, 8-cell, 2-virtual-second world at 1, 2, and 8
// shards and records, per run: measured wall time, total busy time
// (Σ per-shard per-window busy seconds from BusyRecorder), the modeled
// critical path (Σ_k max_s busy — the wall time an S-core host would
// see), the world digest, and the conservation ledger.
//
// Two speedup numbers are reported, deliberately separated:
//
//   - `measured_wall` — wall(1 shard) / wall(S shards) on THIS host.
//     On a machine with fewer cores than shards this is ~1 or below
//     (S workers time-slice one core and pay the barrier tax), which
//     is the honest number for that hardware, not a failure.
//   - `modeled` — busy(1 shard) / critical_path(S shards). Busy time
//     excludes barrier waits and scheduler noise, so this is the
//     scaling the shard decomposition itself achieves: how evenly the
//     per-window work divides across shards. The ">=5x at 8 shards"
//     acceptance bound watches this number, and `hardware_concurrency`
//     is recorded alongside so a reader can tell which regime the
//     measured number came from.
//
// Digest identity across all three shard counts (and the byte-identity
// of the FleetReport JSON) is asserted, not just recorded — a scaling
// win that changes the answer is a bug, not a result.
#include <algorithm>
#include <array>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "resilience/world_supervisor.hpp"
#include "world/engine.hpp"

namespace {

using namespace athena;

world::WorldConfig BaseConfig(bool smoke) {
  world::WorldConfig config;
  config.seed = 42;
  config.ues = smoke ? 64 : 512;
  config.cells = 8;
  config.duration = sim::Duration{std::chrono::milliseconds{smoke ? 500 : 2000}};
  config.handover_every = 16;  // a migrating slice keeps the mailboxes honest
  config.scenario = "bench-world";
  return config;
}

struct RunRecord {
  std::size_t shards = 0;
  bool threaded = false;
  world::WorldResult result;
};

RunRecord RunAt(const world::WorldConfig& base, std::size_t shards, bool threaded) {
  world::WorldConfig config = base;
  config.shards = shards;
  config.threaded = threaded;
  world::WorldEngine engine{std::move(config)};
  RunRecord record;
  record.shards = shards;
  record.threaded = threaded;
  record.result = engine.Run();
  return record;
}

std::string HexDigest(std::uint64_t digest) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(digest));
  return std::string{buf};
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_world.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else {
      out_path = arg;
    }
  }

  const world::WorldConfig base = BaseConfig(smoke);
  const unsigned hw = std::thread::hardware_concurrency();
  std::cout << "world: " << base.ues << " UEs, " << base.cells << " cells, "
            << base.duration.count() / 1000 << " ms virtual, host concurrency "
            << hw << '\n';

  // Untimed warmup so allocator growth lands outside every clock.
  (void)RunAt(base, 1, /*threaded=*/false);

  // Each shard count runs twice: threaded (the production path — digest
  // identity and the measured wall number) and sequential (the same
  // window loop round-robin on one thread — the clean busy measurement
  // the modeled number needs: a worker that gets scheduled out
  // mid-window on an oversubscribed host would otherwise book its
  // preemption as "busy" and inflate the critical path).
  struct ShardPlan {
    std::size_t shards;
    bool threaded;
  };
  constexpr std::array<ShardPlan, 5> kPlans{{
      {1, false}, {2, true}, {2, false}, {8, true}, {8, false}}};
  std::vector<RunRecord> runs;
  for (const ShardPlan plan : kPlans) {
    runs.push_back(RunAt(base, plan.shards, plan.threaded));
    const RunRecord& r = runs.back();
    std::cout << "  " << r.shards << " shard(s) "
              << (r.threaded ? "threaded  " : "sequential") << ": wall "
              << r.result.wall_seconds << " s, busy " << r.result.busy_seconds
              << " s, critical path " << r.result.critical_path_seconds
              << " s, digest " << HexDigest(r.result.digest) << '\n';
  }

  // Fault-tolerance numbers: one supervised 8-shard run with a mid-run
  // shard kill. Records the snapshot cost (serialized size + serialize
  // wall time) and the recovery cost (replay seconds back to the
  // restore boundary), and asserts the recovered digest matches the
  // uninterrupted oracle.
  resilience::WorldSupervisedOutcome supervised;
  double snapshot_serialize_seconds = 0.0;
  {
    world::WorldConfig config = base;
    config.shards = 8;
    config.threaded = true;
    resilience::WorldSupervisorOptions options;
    options.checkpoint_every_windows = 64;
    options.on_checkpoint = [&](const resilience::WorldSnapshot& snapshot) {
      const auto t0 = std::chrono::steady_clock::now();
      std::vector<std::uint8_t> bytes;
      snapshot.Serialize(bytes);
      snapshot_serialize_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    };
    resilience::WorldFaultSpec faults;
    faults.crash_shard = 1;  // window derived from the seed
    resilience::WorldSupervisor supervisor{std::move(config), options};
    supervised = supervisor.Run(faults);
    std::cout << "  8 shard(s) supervised : crashes " << supervised.crashes
              << ", checkpoints " << supervised.checkpoints_taken << " ("
              << supervised.last_snapshot_bytes << " B latest, serialize "
              << snapshot_serialize_seconds << " s), restore replay "
              << supervised.restore_replay_seconds << " s, digest "
              << HexDigest(supervised.result.digest) << '\n';
  }

  const RunRecord& serial = runs.front();
  bool conservation_ok = true;
  bool digest_identical = true;
  bool fleet_identical = true;
  for (const RunRecord& r : runs) {
    conservation_ok = conservation_ok && r.result.conservation_ok;
    digest_identical = digest_identical && r.result.digest == serial.result.digest;
    fleet_identical =
        fleet_identical && r.result.fleet_json == serial.result.fleet_json;
  }

  const auto find = [&](std::size_t shards, bool threaded) -> const RunRecord& {
    for (const RunRecord& r : runs) {
      if (r.shards == shards && r.threaded == threaded) return r;
    }
    std::abort();
  };
  const auto modeled = [&](std::size_t shards) {
    const RunRecord& r = find(shards, /*threaded=*/false);
    return r.result.critical_path_seconds > 0.0
               ? serial.result.busy_seconds / r.result.critical_path_seconds
               : 0.0;
  };
  const auto measured = [&](std::size_t shards) {
    const RunRecord& r = find(shards, /*threaded=*/true);
    return r.result.wall_seconds > 0.0
               ? serial.result.wall_seconds / r.result.wall_seconds
               : 0.0;
  };
  const double target = 5.0;
  const double modeled_at_8 = modeled(8);
  const bool recovered_identical =
      supervised.completed && supervised.result.digest == serial.result.digest &&
      supervised.result.fleet_json == serial.result.fleet_json;
  const bool met = digest_identical && fleet_identical && conservation_ok &&
                   recovered_identical && modeled_at_8 >= target;

  std::ofstream os{out_path};
  if (!os) {
    std::cerr << "cannot write " << out_path << '\n';
    return 1;
  }
  os << "{\n";
  os << "  \"config\": {\n";
  os << "    \"ues\": " << base.ues << ",\n";
  os << "    \"cells\": " << base.cells << ",\n";
  os << "    \"virtual_ms\": " << base.duration.count() / 1000 << ",\n";
  os << "    \"handover_every\": " << base.handover_every << ",\n";
  os << "    \"seed\": " << base.seed << ",\n";
  os << "    \"smoke\": " << (smoke ? "true" : "false") << "\n";
  os << "  },\n";
  os << "  \"hardware_concurrency\": " << hw << ",\n";
  os << "  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const RunRecord& r = runs[i];
    os << "    {\"shards\": " << r.shards << ", \"threaded\": "
       << (r.threaded ? "true" : "false")
       << ", \"wall_seconds\": " << r.result.wall_seconds
       << ", \"busy_seconds\": " << r.result.busy_seconds
       << ", \"critical_path_seconds\": " << r.result.critical_path_seconds
       << ", \"windows\": " << r.result.windows
       << ", \"events\": " << r.result.events_executed
       << ", \"mailbox_messages\": " << r.result.messages_delivered
       << ", \"handovers\": " << r.result.handovers
       << ", \"offered\": " << r.result.offered
       << ", \"delivered\": " << r.result.delivered
       << ", \"digest\": \"" << HexDigest(r.result.digest) << "\""
       << ", \"conservation_ok\": "
       << (r.result.conservation_ok ? "true" : "false") << "}"
       << (i + 1 < runs.size() ? "," : "") << '\n';
  }
  os << "  ],\n";
  os << "  \"digest_identical_across_shard_counts\": "
     << (digest_identical ? "true" : "false") << ",\n";
  os << "  \"fleet_report_byte_identical\": "
     << (fleet_identical ? "true" : "false") << ",\n";
  os << "  \"resilience\": {\n";
  os << "    \"checkpoint_every_windows\": 64,\n";
  os << "    \"crashes\": " << supervised.crashes << ",\n";
  os << "    \"restarts\": " << supervised.restarts << ",\n";
  os << "    \"checkpoints_taken\": " << supervised.checkpoints_taken << ",\n";
  os << "    \"checkpoint_bytes\": " << supervised.last_snapshot_bytes << ",\n";
  os << "    \"checkpoint_serialize_seconds\": " << snapshot_serialize_seconds
     << ",\n";
  os << "    \"restore_replay_seconds\": " << supervised.restore_replay_seconds
     << ",\n";
  os << "    \"recovered_digest_matches_oracle\": "
     << (recovered_identical ? "true" : "false") << "\n";
  os << "  },\n";
  os << "  \"speedup\": {\n";
  for (const std::size_t shards : {std::size_t{2}, std::size_t{8}}) {
    os << "    \"modeled_" << shards << "_shards\": " << modeled(shards)
       << ",\n";
    os << "    \"measured_wall_" << shards << "_shards\": " << measured(shards)
       << ",\n";
  }
  os << "    \"note\": \"modeled = busy(1)/critical_path(S) from the "
        "sequential runs (clean busy, no preemption booked), the scaling the "
        "shard decomposition achieves on an S-core host; measured_wall is "
        "the threaded runs on this host, see hardware_concurrency\"\n";
  os << "  },\n";
  os << "  \"acceptance\": {\n";
  os << "    \"target_modeled_speedup_at_8_shards\": " << target << ",\n";
  os << "    \"modeled_speedup_at_8_shards\": " << modeled_at_8 << ",\n";
  os << "    \"met\": " << (met ? "true" : "false") << "\n";
  os << "  }\n";
  os << "}\n";

  std::cout << "digest identity: " << (digest_identical ? "PASS" : "FAIL")
            << ", fleet bytes: " << (fleet_identical ? "PASS" : "FAIL")
            << ", conservation: " << (conservation_ok ? "PASS" : "FAIL")
            << ", kill/restore recovery: " << (recovered_identical ? "PASS" : "FAIL")
            << '\n';
  std::cout << "modeled speedup at 8 shards: x" << modeled_at_8 << " (target x"
            << target << ", " << (modeled_at_8 >= target ? "met" : "MISSED")
            << ")\n";
  std::cout << "wrote " << out_path << '\n';

  if (!digest_identical || !fleet_identical || !conservation_ok ||
      !recovered_identical) {
    std::cerr << "ERROR: sharded or recovered runs are not byte-identical to "
                 "the oracle\n";
    return 1;
  }
  return 0;
}
