// Ablations over the RAN design choices DESIGN.md §4 calls out:
//   1. proactive grant size (0 = BSR-only … large)
//   2. BSR scheduling delay
//   3. duplexing: the paper's TDD pattern vs an FDD-like per-slot uplink
//      (§5.1: "different base stations use different duplexing strategies")
//   4. channel BLER
//
// Each row: packet delay, frame delay, grant utilization — showing the
// §3.1 trade-off (proactive grants buy latency with padding waste).
#include <chrono>
#include <iostream>

#include "bench_util.hpp"

namespace {

using namespace athena;
using namespace std::chrono_literals;

struct Row {
  double pkt_p50 = 0.0;
  double pkt_p95 = 0.0;
  double audio_p50 = 0.0;
  double frame_p50 = 0.0;
  double frame_p95 = 0.0;
  double utilization = 0.0;
};

Row Run(app::SessionConfig config) {
  sim::Simulator sim;
  app::Session session{sim, config};
  session.Run(60s);
  const auto data = core::Correlator::Correlate(session.BuildCorrelatorInput());
  stats::Cdf pkt;
  for (const auto& p : data.packets) {
    if (p.reached_core && p.is_media()) pkt.Add(sim::ToMs(p.uplink_owd));
  }
  const auto frame = core::Analyzer::FrameDelayCdf(data);
  Row row;
  row.pkt_p50 = pkt.Median();
  row.pkt_p95 = pkt.P(95);
  row.audio_p50 = core::Analyzer::RanDelayCdf(data, /*audio=*/true).Median();
  row.frame_p50 = frame.Median();
  row.frame_p95 = frame.P(95);
  row.utilization = session.ran_uplink()->counters().GrantUtilization();
  return row;
}

void Print(const std::string& title, stats::Table& table) {
  stats::PrintBanner(std::cout, title);
  table.Print(std::cout);
}

}  // namespace

int main() {
  using namespace athena;

  // --- 1. proactive grant size ---
  {
    stats::Table table{{"proactive_bytes", "pkt p50 ms", "pkt p95 ms", "frame p50 ms",
                        "frame p95 ms", "grant util %"}};
    for (const std::uint32_t bytes : {0u, 1250u, 2500u, 5000u, 10000u}) {
      auto config = bench::IdleCellWorkload(81);
      config.channel.bad_state_bler = 0.0;  // isolate scheduling
      config.cell.proactive_grant_bytes = bytes;
      const auto r = Run(config);
      table.AddNumericRow({static_cast<double>(bytes), r.pkt_p50, r.pkt_p95, r.frame_p50,
                           r.frame_p95, 100.0 * r.utilization});
    }
    Print("Ablation 1 — proactive grant size (latency vs padding waste, §3.1)", table);
  }

  // --- 2. BSR scheduling delay ---
  // With a small proactive grant, frame tails must wait for the requested
  // grant, so the scheduling delay binds (at the paper's 2500 B proactive
  // size it mostly hides behind the proactive trickle at this bitrate).
  {
    stats::Table table{{"bsr_delay_ms", "pkt p50 ms", "pkt p95 ms", "frame p50 ms",
                        "frame p95 ms"}};
    for (const int ms : {5, 10, 20, 40}) {
      auto config = bench::IdleCellWorkload(82);
      config.channel.bad_state_bler = 0.0;
      config.cell.proactive_grant_bytes = 1250;
      config.cell.bsr_scheduling_delay = std::chrono::milliseconds{ms};
      const auto r = Run(config);
      table.AddNumericRow(
          {static_cast<double>(ms), r.pkt_p50, r.pkt_p95, r.frame_p50, r.frame_p95});
    }
    Print("Ablation 2 — BSR scheduling delay (the 10 ms constant behind §3.1; "
          "proactive shrunk to 1250 B so the BSR path binds)",
          table);
  }

  // --- 3. duplexing strategy (§5.1) ---
  // FDD-like uplink (an opportunity every slot) shrinks alignment delay
  // for sporadic packets (audio), but the narrower per-slot TBs stretch
  // bursts — "differing impacts on application-layer latencies" (§5.1).
  {
    stats::Table table{{"duplexing", "audio p50 ms", "pkt p50 ms", "frame p50 ms",
                        "frame p95 ms", "grant util %"}};
    for (const bool fdd : {false, true}) {
      auto config = bench::IdleCellWorkload(83);
      config.channel.bad_state_bler = 0.0;
      if (fdd) {
        config.cell = ran::RanConfig::FddLikeCell();
        config.cell.cell_ul_capacity_bps = 25e6;
      }
      const auto r = Run(config);
      table.AddRow({fdd ? "FDD-like (UL every slot)" : "TDD 4:1 (UL every 2.5 ms)",
                    stats::Fmt(r.audio_p50, 2), stats::Fmt(r.pkt_p50, 2),
                    stats::Fmt(r.frame_p50, 2), stats::Fmt(r.frame_p95, 2),
                    stats::Fmt(100.0 * r.utilization, 1)});
    }
    Print("Ablation 3 — TDD vs FDD-like uplink (§5.1)", table);
  }

  // --- 4. channel BLER ---
  {
    stats::Table table{{"base_bler", "pkt p50 ms", "pkt p95 ms", "frame p95 ms"}};
    for (const double bler : {0.0, 0.05, 0.1, 0.2, 0.35}) {
      auto config = bench::IdleCellWorkload(84);
      config.channel = ran::ChannelModel::Config{.base_bler = bler};
      const auto r = Run(config);
      table.AddNumericRow({bler, r.pkt_p50, r.pkt_p95, r.frame_p95});
    }
    Print("Ablation 4 — block error rate (HARQ inflation, §3.2)", table);
  }
  return 0;
}
