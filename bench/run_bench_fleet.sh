#!/usr/bin/env bash
# Builds and runs the fleet-observability baseline:
#   - bench_fleet — SessionSummary fold/merge throughput into the
#     population aggregator + SLO engine, serialized report size/cost,
#     the sharded-merge byte-identity / JSON round-trip / self-gate
#     invariants, and the chaos-matrix extraction overhead — written to
#     BENCH_fleet.json at the repo root.
#
# Usage: bench/run_bench_fleet.sh [build-dir] [--smoke]
#   (default build dir: ./build; --smoke uses the reduced CI sizing)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="$repo_root/build"
smoke=""
for arg in "$@"; do
  case "$arg" in
    --smoke) smoke="--smoke" ;;
    *) build_dir="$arg" ;;
  esac
done

if [ ! -d "$build_dir" ]; then
  cmake -B "$build_dir" -S "$repo_root"
fi
cmake --build "$build_dir" --target bench_fleet -j "$(nproc)"

echo "== bench_fleet =="
"$build_dir/bench/bench_fleet" "$repo_root/BENCH_fleet.json" $smoke
