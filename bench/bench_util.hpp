// Shared plumbing for the figure-reproduction benches: consistent CDF /
// time-series printing and the paper's standard session configurations.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "app/session.hpp"
#include "core/analyzer.hpp"
#include "core/correlator.hpp"
#include "stats/cdf.hpp"
#include "stats/table.hpp"
#include "stats/timeseries.hpp"

namespace athena::bench {

/// Prints a CDF as (x, F(x)) rows plus a summary line.
inline void PrintCdf(const std::string& name, const stats::Cdf& cdf,
                     std::size_t points = 20) {
  std::cout << "\n-- " << name << " --\n";
  if (cdf.empty()) {
    std::cout << "(no samples)\n";
    return;
  }
  stats::Table table{{"x", "F(x)"}};
  for (const auto& p : cdf.Evaluate(points)) table.AddNumericRow({p.x, p.f});
  table.Print(std::cout);
  std::cout << "summary: " << cdf.Summary() << '\n';
}

/// Prints several CDFs on a shared grid, one column per series — the shape
/// of the paper's multi-line CDF panels.
inline void PrintCdfPanel(const std::string& title,
                          const std::vector<std::pair<std::string, const stats::Cdf*>>& series,
                          std::size_t points = 20) {
  stats::PrintBanner(std::cout, title);
  double lo = 1e300;
  double hi = -1e300;
  for (const auto& [name, cdf] : series) {
    if (cdf->empty()) continue;
    lo = std::min(lo, cdf->Min());
    hi = std::max(hi, cdf->Max());
  }
  if (lo > hi) {
    std::cout << "(no samples)\n";
    return;
  }
  std::vector<std::string> header{"x"};
  for (const auto& [name, cdf] : series) header.push_back("F_" + name);
  stats::Table table{header};
  for (std::size_t i = 0; i < points; ++i) {
    const double x = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
    std::vector<double> row{x};
    for (const auto& [name, cdf] : series) row.push_back(cdf->FractionAtOrBelow(x));
    table.AddNumericRow(row);
  }
  table.Print(std::cout);
  for (const auto& [name, cdf] : series) {
    std::cout << name << ": " << cdf->Summary() << '\n';
  }
}

/// Prints a windowed time series as rows of (t_seconds, value).
inline void PrintSeries(const std::string& name, const stats::TimeSeries& series,
                        sim::Duration window) {
  std::cout << "\n-- " << name << " --\n";
  stats::Table table{{"t_s", "value"}};
  for (const auto& w : series.WindowedMean(window)) {
    table.AddNumericRow({w.window_start.seconds(), w.mean});
  }
  table.Print(std::cout);
}

/// The paper's §2 workload: 20-minute call, cross traffic stepping through
/// 0 / 14 / 16 / 18 Mbps in 5-minute phases, fading radio, and occasional
/// handovers (§3.2 mobility — the source of the Fig. 4 seconds-scale tail).
inline app::SessionConfig PaperWorkload(std::uint64_t seed = 42) {
  using namespace std::chrono_literals;
  app::SessionConfig config;
  config.seed = seed;
  config.channel = ran::ChannelModel::FadingRadio();
  config.channel.handover_interval = 90s;
  config.channel.handover_duration = 650ms;
  config.cell.cell_ul_capacity_bps = 25e6;
  config.cross_traffic = net::CapacityTrace::PaperCrossTrafficSchedule(5min);
  config.cross_burstiness = 0.35;
  config.cross_modulation_sigma = 0.5;  // competing flows wander slowly
  return config;
}

/// An idle cell with a realistic radio (the Fig. 5 / Fig. 10 condition).
inline app::SessionConfig IdleCellWorkload(std::uint64_t seed = 42) {
  app::SessionConfig config;
  config.seed = seed;
  config.channel = ran::ChannelModel::FadingRadio();
  config.cell.cell_ul_capacity_bps = 25e6;
  return config;
}

}  // namespace athena::bench
