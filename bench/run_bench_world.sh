#!/usr/bin/env bash
# Builds and runs the sharded-world scaling baseline:
#   - bench_world — the 512-UE, 8-cell, 2-virtual-second world at 1, 2,
#     and 8 shards: wall / busy / modeled-critical-path timing, digest +
#     FleetReport byte-identity across shard counts, the conservation
#     ledger, and the modeled >=5x-at-8-shards acceptance number —
#     written to BENCH_world.json at the repo root. The JSON also
#     carries a "resilience" block from a supervised kill/restore run:
#     world-checkpoint size, serialize cost, restore replay latency,
#     and recovered-digest identity against the uninterrupted oracle.
#
# Usage: bench/run_bench_world.sh [build-dir] [--smoke]
#   (default build dir: ./build; --smoke uses the reduced CI sizing)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="$repo_root/build"
smoke=""
for arg in "$@"; do
  case "$arg" in
    --smoke) smoke="--smoke" ;;
    *) build_dir="$arg" ;;
  esac
done

if [ ! -d "$build_dir" ]; then
  cmake -B "$build_dir" -S "$repo_root"
fi
cmake --build "$build_dir" --target bench_world -j "$(nproc)"

echo "== bench_world =="
"$build_dir/bench/bench_world" "$repo_root/BENCH_world.json" $smoke
