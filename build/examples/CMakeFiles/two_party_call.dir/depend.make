# Empty dependencies file for two_party_call.
# This may be replaced when dependencies are built.
