file(REMOVE_RECURSE
  "CMakeFiles/two_party_call.dir/two_party_call.cpp.o"
  "CMakeFiles/two_party_call.dir/two_party_call.cpp.o.d"
  "two_party_call"
  "two_party_call.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/two_party_call.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
