file(REMOVE_RECURSE
  "CMakeFiles/zoom_over_5g.dir/zoom_over_5g.cpp.o"
  "CMakeFiles/zoom_over_5g.dir/zoom_over_5g.cpp.o.d"
  "zoom_over_5g"
  "zoom_over_5g.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zoom_over_5g.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
