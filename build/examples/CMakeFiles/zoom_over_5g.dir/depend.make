# Empty dependencies file for zoom_over_5g.
# This may be replaced when dependencies are built.
