# Empty compiler generated dependencies file for ran_scheduler_playground.
# This may be replaced when dependencies are built.
