file(REMOVE_RECURSE
  "CMakeFiles/ran_scheduler_playground.dir/ran_scheduler_playground.cpp.o"
  "CMakeFiles/ran_scheduler_playground.dir/ran_scheduler_playground.cpp.o.d"
  "ran_scheduler_playground"
  "ran_scheduler_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ran_scheduler_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
