file(REMOVE_RECURSE
  "CMakeFiles/gcc_phantom_overuse.dir/gcc_phantom_overuse.cpp.o"
  "CMakeFiles/gcc_phantom_overuse.dir/gcc_phantom_overuse.cpp.o.d"
  "gcc_phantom_overuse"
  "gcc_phantom_overuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcc_phantom_overuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
