# Empty dependencies file for gcc_phantom_overuse.
# This may be replaced when dependencies are built.
