file(REMOVE_RECURSE
  "CMakeFiles/athena_cli.dir/athena_cli.cpp.o"
  "CMakeFiles/athena_cli.dir/athena_cli.cpp.o.d"
  "athena_cli"
  "athena_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/athena_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
