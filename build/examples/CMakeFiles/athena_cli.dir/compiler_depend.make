# Empty compiler generated dependencies file for athena_cli.
# This may be replaced when dependencies are built.
