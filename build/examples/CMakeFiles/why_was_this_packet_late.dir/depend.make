# Empty dependencies file for why_was_this_packet_late.
# This may be replaced when dependencies are built.
