file(REMOVE_RECURSE
  "CMakeFiles/why_was_this_packet_late.dir/why_was_this_packet_late.cpp.o"
  "CMakeFiles/why_was_this_packet_late.dir/why_was_this_packet_late.cpp.o.d"
  "why_was_this_packet_late"
  "why_was_this_packet_late.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/why_was_this_packet_late.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
