# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for why_was_this_packet_late.
