# Empty dependencies file for wireless_links_test.
# This may be replaced when dependencies are built.
