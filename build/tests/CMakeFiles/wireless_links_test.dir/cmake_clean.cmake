file(REMOVE_RECURSE
  "CMakeFiles/wireless_links_test.dir/wireless_links_test.cpp.o"
  "CMakeFiles/wireless_links_test.dir/wireless_links_test.cpp.o.d"
  "wireless_links_test"
  "wireless_links_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wireless_links_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
