file(REMOVE_RECURSE
  "CMakeFiles/property_ext_test.dir/property_ext_test.cpp.o"
  "CMakeFiles/property_ext_test.dir/property_ext_test.cpp.o.d"
  "property_ext_test"
  "property_ext_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
