# Empty compiler generated dependencies file for cc_family_test.
# This may be replaced when dependencies are built.
