
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cc_family_test.cpp" "tests/CMakeFiles/cc_family_test.dir/cc_family_test.cpp.o" "gcc" "tests/CMakeFiles/cc_family_test.dir/cc_family_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mitigation/CMakeFiles/athena_mitigation.dir/DependInfo.cmake"
  "/root/repo/build/src/app/CMakeFiles/athena_app.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/athena_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cc/CMakeFiles/athena_cc.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/athena_media.dir/DependInfo.cmake"
  "/root/repo/build/src/ran/CMakeFiles/athena_ran.dir/DependInfo.cmake"
  "/root/repo/build/src/rtp/CMakeFiles/athena_rtp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/athena_net.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/athena_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/athena_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/athena_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
