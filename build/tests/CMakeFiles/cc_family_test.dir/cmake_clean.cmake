file(REMOVE_RECURSE
  "CMakeFiles/cc_family_test.dir/cc_family_test.cpp.o"
  "CMakeFiles/cc_family_test.dir/cc_family_test.cpp.o.d"
  "cc_family_test"
  "cc_family_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cc_family_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
