file(REMOVE_RECURSE
  "CMakeFiles/wifi_correlator_test.dir/wifi_correlator_test.cpp.o"
  "CMakeFiles/wifi_correlator_test.dir/wifi_correlator_test.cpp.o.d"
  "wifi_correlator_test"
  "wifi_correlator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wifi_correlator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
