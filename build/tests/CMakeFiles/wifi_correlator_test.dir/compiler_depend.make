# Empty compiler generated dependencies file for wifi_correlator_test.
# This may be replaced when dependencies are built.
