file(REMOVE_RECURSE
  "CMakeFiles/trace_link_test.dir/trace_link_test.cpp.o"
  "CMakeFiles/trace_link_test.dir/trace_link_test.cpp.o.d"
  "trace_link_test"
  "trace_link_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_link_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
