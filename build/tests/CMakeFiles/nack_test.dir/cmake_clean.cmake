file(REMOVE_RECURSE
  "CMakeFiles/nack_test.dir/nack_test.cpp.o"
  "CMakeFiles/nack_test.dir/nack_test.cpp.o.d"
  "nack_test"
  "nack_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
