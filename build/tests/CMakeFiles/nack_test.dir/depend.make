# Empty dependencies file for nack_test.
# This may be replaced when dependencies are built.
