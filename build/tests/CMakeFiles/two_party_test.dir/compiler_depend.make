# Empty compiler generated dependencies file for two_party_test.
# This may be replaced when dependencies are built.
