file(REMOVE_RECURSE
  "CMakeFiles/two_party_test.dir/two_party_test.cpp.o"
  "CMakeFiles/two_party_test.dir/two_party_test.cpp.o.d"
  "two_party_test"
  "two_party_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/two_party_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
