# Empty dependencies file for bench_sec52_appaware_ran.
# This may be replaced when dependencies are built.
