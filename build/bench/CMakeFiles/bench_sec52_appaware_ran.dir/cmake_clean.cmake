file(REMOVE_RECURSE
  "CMakeFiles/bench_sec52_appaware_ran.dir/bench_sec52_appaware_ran.cpp.o"
  "CMakeFiles/bench_sec52_appaware_ran.dir/bench_sec52_appaware_ran.cpp.o.d"
  "bench_sec52_appaware_ran"
  "bench_sec52_appaware_ran.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec52_appaware_ran.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
