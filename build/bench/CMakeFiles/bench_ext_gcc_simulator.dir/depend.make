# Empty dependencies file for bench_ext_gcc_simulator.
# This may be replaced when dependencies are built.
