file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_gcc_simulator.dir/bench_ext_gcc_simulator.cpp.o"
  "CMakeFiles/bench_ext_gcc_simulator.dir/bench_ext_gcc_simulator.cpp.o.d"
  "bench_ext_gcc_simulator"
  "bench_ext_gcc_simulator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_gcc_simulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
