file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_two_party.dir/bench_ext_two_party.cpp.o"
  "CMakeFiles/bench_ext_two_party.dir/bench_ext_two_party.cpp.o.d"
  "bench_ext_two_party"
  "bench_ext_two_party.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_two_party.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
