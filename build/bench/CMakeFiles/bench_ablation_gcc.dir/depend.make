# Empty dependencies file for bench_ablation_gcc.
# This may be replaced when dependencies are built.
