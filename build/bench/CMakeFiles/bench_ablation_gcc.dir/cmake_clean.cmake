file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_gcc.dir/bench_ablation_gcc.cpp.o"
  "CMakeFiles/bench_ablation_gcc.dir/bench_ablation_gcc.cpp.o.d"
  "bench_ablation_gcc"
  "bench_ablation_gcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_gcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
