# Empty dependencies file for bench_sec53_phy_informed_cc.
# This may be replaced when dependencies are built.
