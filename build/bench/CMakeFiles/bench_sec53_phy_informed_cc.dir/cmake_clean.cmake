file(REMOVE_RECURSE
  "CMakeFiles/bench_sec53_phy_informed_cc.dir/bench_sec53_phy_informed_cc.cpp.o"
  "CMakeFiles/bench_sec53_phy_informed_cc.dir/bench_sec53_phy_informed_cc.cpp.o.d"
  "bench_sec53_phy_informed_cc"
  "bench_sec53_phy_informed_cc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec53_phy_informed_cc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
