# Empty dependencies file for bench_fig09b_retransmission_microtrace.
# This may be replaced when dependencies are built.
