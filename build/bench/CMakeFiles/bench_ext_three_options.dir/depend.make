# Empty dependencies file for bench_ext_three_options.
# This may be replaced when dependencies are built.
