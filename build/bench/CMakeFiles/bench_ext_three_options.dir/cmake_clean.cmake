file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_three_options.dir/bench_ext_three_options.cpp.o"
  "CMakeFiles/bench_ext_three_options.dir/bench_ext_three_options.cpp.o.d"
  "bench_ext_three_options"
  "bench_ext_three_options.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_three_options.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
