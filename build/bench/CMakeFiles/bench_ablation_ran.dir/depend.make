# Empty dependencies file for bench_ablation_ran.
# This may be replaced when dependencies are built.
