file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ran.dir/bench_ablation_ran.cpp.o"
  "CMakeFiles/bench_ablation_ran.dir/bench_ablation_ran.cpp.o.d"
  "bench_ablation_ran"
  "bench_ablation_ran.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ran.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
