# Empty compiler generated dependencies file for bench_fig03_owd_timeseries.
# This may be replaced when dependencies are built.
