file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_gcc_gradient.dir/bench_fig10_gcc_gradient.cpp.o"
  "CMakeFiles/bench_fig10_gcc_gradient.dir/bench_fig10_gcc_gradient.cpp.o.d"
  "bench_fig10_gcc_gradient"
  "bench_fig10_gcc_gradient.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_gcc_gradient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
