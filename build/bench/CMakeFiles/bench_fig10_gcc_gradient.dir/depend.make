# Empty dependencies file for bench_fig10_gcc_gradient.
# This may be replaced when dependencies are built.
