file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09a_scheduling_microtrace.dir/bench_fig09a_scheduling_microtrace.cpp.o"
  "CMakeFiles/bench_fig09a_scheduling_microtrace.dir/bench_fig09a_scheduling_microtrace.cpp.o.d"
  "bench_fig09a_scheduling_microtrace"
  "bench_fig09a_scheduling_microtrace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09a_scheduling_microtrace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
