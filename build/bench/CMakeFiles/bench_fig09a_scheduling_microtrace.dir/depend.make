# Empty dependencies file for bench_fig09a_scheduling_microtrace.
# This may be replaced when dependencies are built.
