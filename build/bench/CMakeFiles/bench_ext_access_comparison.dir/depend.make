# Empty dependencies file for bench_ext_access_comparison.
# This may be replaced when dependencies are built.
