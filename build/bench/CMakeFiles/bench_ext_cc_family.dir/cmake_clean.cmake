file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_cc_family.dir/bench_ext_cc_family.cpp.o"
  "CMakeFiles/bench_ext_cc_family.dir/bench_ext_cc_family.cpp.o.d"
  "bench_ext_cc_family"
  "bench_ext_cc_family.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_cc_family.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
