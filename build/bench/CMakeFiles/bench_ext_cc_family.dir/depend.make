# Empty dependencies file for bench_ext_cc_family.
# This may be replaced when dependencies are built.
