# Empty compiler generated dependencies file for bench_fig08_adaptation_timeseries.
# This may be replaced when dependencies are built.
