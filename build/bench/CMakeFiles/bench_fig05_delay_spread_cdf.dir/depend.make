# Empty dependencies file for bench_fig05_delay_spread_cdf.
# This may be replaced when dependencies are built.
