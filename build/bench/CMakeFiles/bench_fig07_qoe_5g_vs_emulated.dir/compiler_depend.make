# Empty compiler generated dependencies file for bench_fig07_qoe_5g_vs_emulated.
# This may be replaced when dependencies are built.
