file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_qoe_5g_vs_emulated.dir/bench_fig07_qoe_5g_vs_emulated.cpp.o"
  "CMakeFiles/bench_fig07_qoe_5g_vs_emulated.dir/bench_fig07_qoe_5g_vs_emulated.cpp.o.d"
  "bench_fig07_qoe_5g_vs_emulated"
  "bench_fig07_qoe_5g_vs_emulated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_qoe_5g_vs_emulated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
