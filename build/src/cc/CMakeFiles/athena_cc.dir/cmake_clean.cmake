file(REMOVE_RECURSE
  "CMakeFiles/athena_cc.dir/aimd.cpp.o"
  "CMakeFiles/athena_cc.dir/aimd.cpp.o.d"
  "CMakeFiles/athena_cc.dir/gcc.cpp.o"
  "CMakeFiles/athena_cc.dir/gcc.cpp.o.d"
  "CMakeFiles/athena_cc.dir/inter_arrival.cpp.o"
  "CMakeFiles/athena_cc.dir/inter_arrival.cpp.o.d"
  "CMakeFiles/athena_cc.dir/l4s.cpp.o"
  "CMakeFiles/athena_cc.dir/l4s.cpp.o.d"
  "CMakeFiles/athena_cc.dir/nada.cpp.o"
  "CMakeFiles/athena_cc.dir/nada.cpp.o.d"
  "CMakeFiles/athena_cc.dir/scream.cpp.o"
  "CMakeFiles/athena_cc.dir/scream.cpp.o.d"
  "CMakeFiles/athena_cc.dir/trendline.cpp.o"
  "CMakeFiles/athena_cc.dir/trendline.cpp.o.d"
  "libathena_cc.a"
  "libathena_cc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/athena_cc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
