file(REMOVE_RECURSE
  "libathena_cc.a"
)
