
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cc/aimd.cpp" "src/cc/CMakeFiles/athena_cc.dir/aimd.cpp.o" "gcc" "src/cc/CMakeFiles/athena_cc.dir/aimd.cpp.o.d"
  "/root/repo/src/cc/gcc.cpp" "src/cc/CMakeFiles/athena_cc.dir/gcc.cpp.o" "gcc" "src/cc/CMakeFiles/athena_cc.dir/gcc.cpp.o.d"
  "/root/repo/src/cc/inter_arrival.cpp" "src/cc/CMakeFiles/athena_cc.dir/inter_arrival.cpp.o" "gcc" "src/cc/CMakeFiles/athena_cc.dir/inter_arrival.cpp.o.d"
  "/root/repo/src/cc/l4s.cpp" "src/cc/CMakeFiles/athena_cc.dir/l4s.cpp.o" "gcc" "src/cc/CMakeFiles/athena_cc.dir/l4s.cpp.o.d"
  "/root/repo/src/cc/nada.cpp" "src/cc/CMakeFiles/athena_cc.dir/nada.cpp.o" "gcc" "src/cc/CMakeFiles/athena_cc.dir/nada.cpp.o.d"
  "/root/repo/src/cc/scream.cpp" "src/cc/CMakeFiles/athena_cc.dir/scream.cpp.o" "gcc" "src/cc/CMakeFiles/athena_cc.dir/scream.cpp.o.d"
  "/root/repo/src/cc/trendline.cpp" "src/cc/CMakeFiles/athena_cc.dir/trendline.cpp.o" "gcc" "src/cc/CMakeFiles/athena_cc.dir/trendline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rtp/CMakeFiles/athena_rtp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/athena_net.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/athena_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/athena_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/athena_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
