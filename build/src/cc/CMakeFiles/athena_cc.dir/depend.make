# Empty dependencies file for athena_cc.
# This may be replaced when dependencies are built.
