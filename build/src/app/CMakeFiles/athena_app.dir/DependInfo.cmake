
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/app/adaptation.cpp" "src/app/CMakeFiles/athena_app.dir/adaptation.cpp.o" "gcc" "src/app/CMakeFiles/athena_app.dir/adaptation.cpp.o.d"
  "/root/repo/src/app/pacer.cpp" "src/app/CMakeFiles/athena_app.dir/pacer.cpp.o" "gcc" "src/app/CMakeFiles/athena_app.dir/pacer.cpp.o.d"
  "/root/repo/src/app/receiver.cpp" "src/app/CMakeFiles/athena_app.dir/receiver.cpp.o" "gcc" "src/app/CMakeFiles/athena_app.dir/receiver.cpp.o.d"
  "/root/repo/src/app/sender.cpp" "src/app/CMakeFiles/athena_app.dir/sender.cpp.o" "gcc" "src/app/CMakeFiles/athena_app.dir/sender.cpp.o.d"
  "/root/repo/src/app/session.cpp" "src/app/CMakeFiles/athena_app.dir/session.cpp.o" "gcc" "src/app/CMakeFiles/athena_app.dir/session.cpp.o.d"
  "/root/repo/src/app/sfu.cpp" "src/app/CMakeFiles/athena_app.dir/sfu.cpp.o" "gcc" "src/app/CMakeFiles/athena_app.dir/sfu.cpp.o.d"
  "/root/repo/src/app/two_party.cpp" "src/app/CMakeFiles/athena_app.dir/two_party.cpp.o" "gcc" "src/app/CMakeFiles/athena_app.dir/two_party.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/athena_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cc/CMakeFiles/athena_cc.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/athena_media.dir/DependInfo.cmake"
  "/root/repo/build/src/ran/CMakeFiles/athena_ran.dir/DependInfo.cmake"
  "/root/repo/build/src/rtp/CMakeFiles/athena_rtp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/athena_net.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/athena_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/athena_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/athena_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
