file(REMOVE_RECURSE
  "CMakeFiles/athena_app.dir/adaptation.cpp.o"
  "CMakeFiles/athena_app.dir/adaptation.cpp.o.d"
  "CMakeFiles/athena_app.dir/pacer.cpp.o"
  "CMakeFiles/athena_app.dir/pacer.cpp.o.d"
  "CMakeFiles/athena_app.dir/receiver.cpp.o"
  "CMakeFiles/athena_app.dir/receiver.cpp.o.d"
  "CMakeFiles/athena_app.dir/sender.cpp.o"
  "CMakeFiles/athena_app.dir/sender.cpp.o.d"
  "CMakeFiles/athena_app.dir/session.cpp.o"
  "CMakeFiles/athena_app.dir/session.cpp.o.d"
  "CMakeFiles/athena_app.dir/sfu.cpp.o"
  "CMakeFiles/athena_app.dir/sfu.cpp.o.d"
  "CMakeFiles/athena_app.dir/two_party.cpp.o"
  "CMakeFiles/athena_app.dir/two_party.cpp.o.d"
  "libathena_app.a"
  "libathena_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/athena_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
