file(REMOVE_RECURSE
  "libathena_app.a"
)
