# Empty compiler generated dependencies file for athena_app.
# This may be replaced when dependencies are built.
