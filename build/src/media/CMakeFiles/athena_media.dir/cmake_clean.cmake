file(REMOVE_RECURSE
  "CMakeFiles/athena_media.dir/emodel.cpp.o"
  "CMakeFiles/athena_media.dir/emodel.cpp.o.d"
  "CMakeFiles/athena_media.dir/encoder.cpp.o"
  "CMakeFiles/athena_media.dir/encoder.cpp.o.d"
  "CMakeFiles/athena_media.dir/jitter_buffer.cpp.o"
  "CMakeFiles/athena_media.dir/jitter_buffer.cpp.o.d"
  "CMakeFiles/athena_media.dir/qoe.cpp.o"
  "CMakeFiles/athena_media.dir/qoe.cpp.o.d"
  "CMakeFiles/athena_media.dir/screen_capture.cpp.o"
  "CMakeFiles/athena_media.dir/screen_capture.cpp.o.d"
  "CMakeFiles/athena_media.dir/ssim_model.cpp.o"
  "CMakeFiles/athena_media.dir/ssim_model.cpp.o.d"
  "CMakeFiles/athena_media.dir/svc.cpp.o"
  "CMakeFiles/athena_media.dir/svc.cpp.o.d"
  "libathena_media.a"
  "libathena_media.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/athena_media.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
