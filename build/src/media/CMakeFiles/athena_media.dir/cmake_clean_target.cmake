file(REMOVE_RECURSE
  "libathena_media.a"
)
