
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/media/emodel.cpp" "src/media/CMakeFiles/athena_media.dir/emodel.cpp.o" "gcc" "src/media/CMakeFiles/athena_media.dir/emodel.cpp.o.d"
  "/root/repo/src/media/encoder.cpp" "src/media/CMakeFiles/athena_media.dir/encoder.cpp.o" "gcc" "src/media/CMakeFiles/athena_media.dir/encoder.cpp.o.d"
  "/root/repo/src/media/jitter_buffer.cpp" "src/media/CMakeFiles/athena_media.dir/jitter_buffer.cpp.o" "gcc" "src/media/CMakeFiles/athena_media.dir/jitter_buffer.cpp.o.d"
  "/root/repo/src/media/qoe.cpp" "src/media/CMakeFiles/athena_media.dir/qoe.cpp.o" "gcc" "src/media/CMakeFiles/athena_media.dir/qoe.cpp.o.d"
  "/root/repo/src/media/screen_capture.cpp" "src/media/CMakeFiles/athena_media.dir/screen_capture.cpp.o" "gcc" "src/media/CMakeFiles/athena_media.dir/screen_capture.cpp.o.d"
  "/root/repo/src/media/ssim_model.cpp" "src/media/CMakeFiles/athena_media.dir/ssim_model.cpp.o" "gcc" "src/media/CMakeFiles/athena_media.dir/ssim_model.cpp.o.d"
  "/root/repo/src/media/svc.cpp" "src/media/CMakeFiles/athena_media.dir/svc.cpp.o" "gcc" "src/media/CMakeFiles/athena_media.dir/svc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rtp/CMakeFiles/athena_rtp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/athena_net.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/athena_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/athena_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/athena_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
