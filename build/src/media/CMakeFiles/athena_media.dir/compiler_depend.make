# Empty compiler generated dependencies file for athena_media.
# This may be replaced when dependencies are built.
