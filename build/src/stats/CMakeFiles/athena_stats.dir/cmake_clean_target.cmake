file(REMOVE_RECURSE
  "libathena_stats.a"
)
