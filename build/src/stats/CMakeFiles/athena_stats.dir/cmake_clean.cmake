file(REMOVE_RECURSE
  "CMakeFiles/athena_stats.dir/cdf.cpp.o"
  "CMakeFiles/athena_stats.dir/cdf.cpp.o.d"
  "CMakeFiles/athena_stats.dir/histogram.cpp.o"
  "CMakeFiles/athena_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/athena_stats.dir/table.cpp.o"
  "CMakeFiles/athena_stats.dir/table.cpp.o.d"
  "CMakeFiles/athena_stats.dir/timeseries.cpp.o"
  "CMakeFiles/athena_stats.dir/timeseries.cpp.o.d"
  "libathena_stats.a"
  "libathena_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/athena_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
