# Empty compiler generated dependencies file for athena_stats.
# This may be replaced when dependencies are built.
