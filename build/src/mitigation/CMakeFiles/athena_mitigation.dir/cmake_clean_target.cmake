file(REMOVE_RECURSE
  "libathena_mitigation.a"
)
