file(REMOVE_RECURSE
  "CMakeFiles/athena_mitigation.dir/app_aware_policy.cpp.o"
  "CMakeFiles/athena_mitigation.dir/app_aware_policy.cpp.o.d"
  "CMakeFiles/athena_mitigation.dir/phy_informed.cpp.o"
  "CMakeFiles/athena_mitigation.dir/phy_informed.cpp.o.d"
  "CMakeFiles/athena_mitigation.dir/traffic_predictor.cpp.o"
  "CMakeFiles/athena_mitigation.dir/traffic_predictor.cpp.o.d"
  "libathena_mitigation.a"
  "libathena_mitigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/athena_mitigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
