# Empty dependencies file for athena_mitigation.
# This may be replaced when dependencies are built.
