# Empty compiler generated dependencies file for athena_net.
# This may be replaced when dependencies are built.
