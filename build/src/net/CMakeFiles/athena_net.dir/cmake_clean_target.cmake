file(REMOVE_RECURSE
  "libathena_net.a"
)
