file(REMOVE_RECURSE
  "CMakeFiles/athena_net.dir/capacity_trace.cpp.o"
  "CMakeFiles/athena_net.dir/capacity_trace.cpp.o.d"
  "CMakeFiles/athena_net.dir/capture.cpp.o"
  "CMakeFiles/athena_net.dir/capture.cpp.o.d"
  "CMakeFiles/athena_net.dir/icmp.cpp.o"
  "CMakeFiles/athena_net.dir/icmp.cpp.o.d"
  "CMakeFiles/athena_net.dir/link.cpp.o"
  "CMakeFiles/athena_net.dir/link.cpp.o.d"
  "CMakeFiles/athena_net.dir/packet.cpp.o"
  "CMakeFiles/athena_net.dir/packet.cpp.o.d"
  "CMakeFiles/athena_net.dir/trace_link.cpp.o"
  "CMakeFiles/athena_net.dir/trace_link.cpp.o.d"
  "CMakeFiles/athena_net.dir/wireless_links.cpp.o"
  "CMakeFiles/athena_net.dir/wireless_links.cpp.o.d"
  "libathena_net.a"
  "libathena_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/athena_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
