
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/capacity_trace.cpp" "src/net/CMakeFiles/athena_net.dir/capacity_trace.cpp.o" "gcc" "src/net/CMakeFiles/athena_net.dir/capacity_trace.cpp.o.d"
  "/root/repo/src/net/capture.cpp" "src/net/CMakeFiles/athena_net.dir/capture.cpp.o" "gcc" "src/net/CMakeFiles/athena_net.dir/capture.cpp.o.d"
  "/root/repo/src/net/icmp.cpp" "src/net/CMakeFiles/athena_net.dir/icmp.cpp.o" "gcc" "src/net/CMakeFiles/athena_net.dir/icmp.cpp.o.d"
  "/root/repo/src/net/link.cpp" "src/net/CMakeFiles/athena_net.dir/link.cpp.o" "gcc" "src/net/CMakeFiles/athena_net.dir/link.cpp.o.d"
  "/root/repo/src/net/packet.cpp" "src/net/CMakeFiles/athena_net.dir/packet.cpp.o" "gcc" "src/net/CMakeFiles/athena_net.dir/packet.cpp.o.d"
  "/root/repo/src/net/trace_link.cpp" "src/net/CMakeFiles/athena_net.dir/trace_link.cpp.o" "gcc" "src/net/CMakeFiles/athena_net.dir/trace_link.cpp.o.d"
  "/root/repo/src/net/wireless_links.cpp" "src/net/CMakeFiles/athena_net.dir/wireless_links.cpp.o" "gcc" "src/net/CMakeFiles/athena_net.dir/wireless_links.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/obs/CMakeFiles/athena_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/athena_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/athena_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
