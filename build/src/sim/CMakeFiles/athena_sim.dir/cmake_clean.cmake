file(REMOVE_RECURSE
  "CMakeFiles/athena_sim.dir/event_queue.cpp.o"
  "CMakeFiles/athena_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/athena_sim.dir/simulator.cpp.o"
  "CMakeFiles/athena_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/athena_sim.dir/time.cpp.o"
  "CMakeFiles/athena_sim.dir/time.cpp.o.d"
  "libathena_sim.a"
  "libathena_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/athena_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
