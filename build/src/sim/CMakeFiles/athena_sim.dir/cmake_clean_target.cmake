file(REMOVE_RECURSE
  "libathena_sim.a"
)
