# Empty compiler generated dependencies file for athena_sim.
# This may be replaced when dependencies are built.
