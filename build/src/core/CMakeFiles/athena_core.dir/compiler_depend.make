# Empty compiler generated dependencies file for athena_core.
# This may be replaced when dependencies are built.
