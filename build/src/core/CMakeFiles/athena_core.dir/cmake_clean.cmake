file(REMOVE_RECURSE
  "CMakeFiles/athena_core.dir/analyzer.cpp.o"
  "CMakeFiles/athena_core.dir/analyzer.cpp.o.d"
  "CMakeFiles/athena_core.dir/clock_sync.cpp.o"
  "CMakeFiles/athena_core.dir/clock_sync.cpp.o.d"
  "CMakeFiles/athena_core.dir/correlator.cpp.o"
  "CMakeFiles/athena_core.dir/correlator.cpp.o.d"
  "CMakeFiles/athena_core.dir/export.cpp.o"
  "CMakeFiles/athena_core.dir/export.cpp.o.d"
  "CMakeFiles/athena_core.dir/overuse_audit.cpp.o"
  "CMakeFiles/athena_core.dir/overuse_audit.cpp.o.d"
  "CMakeFiles/athena_core.dir/report.cpp.o"
  "CMakeFiles/athena_core.dir/report.cpp.o.d"
  "CMakeFiles/athena_core.dir/wifi_correlator.cpp.o"
  "CMakeFiles/athena_core.dir/wifi_correlator.cpp.o.d"
  "libathena_core.a"
  "libathena_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/athena_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
