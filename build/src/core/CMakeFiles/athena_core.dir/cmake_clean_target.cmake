file(REMOVE_RECURSE
  "libathena_core.a"
)
