
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analyzer.cpp" "src/core/CMakeFiles/athena_core.dir/analyzer.cpp.o" "gcc" "src/core/CMakeFiles/athena_core.dir/analyzer.cpp.o.d"
  "/root/repo/src/core/clock_sync.cpp" "src/core/CMakeFiles/athena_core.dir/clock_sync.cpp.o" "gcc" "src/core/CMakeFiles/athena_core.dir/clock_sync.cpp.o.d"
  "/root/repo/src/core/correlator.cpp" "src/core/CMakeFiles/athena_core.dir/correlator.cpp.o" "gcc" "src/core/CMakeFiles/athena_core.dir/correlator.cpp.o.d"
  "/root/repo/src/core/export.cpp" "src/core/CMakeFiles/athena_core.dir/export.cpp.o" "gcc" "src/core/CMakeFiles/athena_core.dir/export.cpp.o.d"
  "/root/repo/src/core/overuse_audit.cpp" "src/core/CMakeFiles/athena_core.dir/overuse_audit.cpp.o" "gcc" "src/core/CMakeFiles/athena_core.dir/overuse_audit.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/athena_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/athena_core.dir/report.cpp.o.d"
  "/root/repo/src/core/wifi_correlator.cpp" "src/core/CMakeFiles/athena_core.dir/wifi_correlator.cpp.o" "gcc" "src/core/CMakeFiles/athena_core.dir/wifi_correlator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cc/CMakeFiles/athena_cc.dir/DependInfo.cmake"
  "/root/repo/build/src/ran/CMakeFiles/athena_ran.dir/DependInfo.cmake"
  "/root/repo/build/src/rtp/CMakeFiles/athena_rtp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/athena_net.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/athena_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/athena_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/athena_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
