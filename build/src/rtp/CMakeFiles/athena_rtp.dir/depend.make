# Empty dependencies file for athena_rtp.
# This may be replaced when dependencies are built.
