file(REMOVE_RECURSE
  "libathena_rtp.a"
)
