file(REMOVE_RECURSE
  "CMakeFiles/athena_rtp.dir/nack.cpp.o"
  "CMakeFiles/athena_rtp.dir/nack.cpp.o.d"
  "CMakeFiles/athena_rtp.dir/packetizer.cpp.o"
  "CMakeFiles/athena_rtp.dir/packetizer.cpp.o.d"
  "CMakeFiles/athena_rtp.dir/twcc.cpp.o"
  "CMakeFiles/athena_rtp.dir/twcc.cpp.o.d"
  "libathena_rtp.a"
  "libathena_rtp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/athena_rtp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
