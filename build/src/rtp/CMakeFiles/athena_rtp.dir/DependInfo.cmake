
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rtp/nack.cpp" "src/rtp/CMakeFiles/athena_rtp.dir/nack.cpp.o" "gcc" "src/rtp/CMakeFiles/athena_rtp.dir/nack.cpp.o.d"
  "/root/repo/src/rtp/packetizer.cpp" "src/rtp/CMakeFiles/athena_rtp.dir/packetizer.cpp.o" "gcc" "src/rtp/CMakeFiles/athena_rtp.dir/packetizer.cpp.o.d"
  "/root/repo/src/rtp/twcc.cpp" "src/rtp/CMakeFiles/athena_rtp.dir/twcc.cpp.o" "gcc" "src/rtp/CMakeFiles/athena_rtp.dir/twcc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/athena_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/athena_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/athena_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/athena_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
