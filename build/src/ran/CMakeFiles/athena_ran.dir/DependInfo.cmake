
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ran/channel.cpp" "src/ran/CMakeFiles/athena_ran.dir/channel.cpp.o" "gcc" "src/ran/CMakeFiles/athena_ran.dir/channel.cpp.o.d"
  "/root/repo/src/ran/cross_traffic.cpp" "src/ran/CMakeFiles/athena_ran.dir/cross_traffic.cpp.o" "gcc" "src/ran/CMakeFiles/athena_ran.dir/cross_traffic.cpp.o.d"
  "/root/repo/src/ran/downlink.cpp" "src/ran/CMakeFiles/athena_ran.dir/downlink.cpp.o" "gcc" "src/ran/CMakeFiles/athena_ran.dir/downlink.cpp.o.d"
  "/root/repo/src/ran/downlink_ran.cpp" "src/ran/CMakeFiles/athena_ran.dir/downlink_ran.cpp.o" "gcc" "src/ran/CMakeFiles/athena_ran.dir/downlink_ran.cpp.o.d"
  "/root/repo/src/ran/grant_policy.cpp" "src/ran/CMakeFiles/athena_ran.dir/grant_policy.cpp.o" "gcc" "src/ran/CMakeFiles/athena_ran.dir/grant_policy.cpp.o.d"
  "/root/repo/src/ran/types.cpp" "src/ran/CMakeFiles/athena_ran.dir/types.cpp.o" "gcc" "src/ran/CMakeFiles/athena_ran.dir/types.cpp.o.d"
  "/root/repo/src/ran/uplink.cpp" "src/ran/CMakeFiles/athena_ran.dir/uplink.cpp.o" "gcc" "src/ran/CMakeFiles/athena_ran.dir/uplink.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/athena_net.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/athena_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/athena_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/athena_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
