file(REMOVE_RECURSE
  "CMakeFiles/athena_ran.dir/channel.cpp.o"
  "CMakeFiles/athena_ran.dir/channel.cpp.o.d"
  "CMakeFiles/athena_ran.dir/cross_traffic.cpp.o"
  "CMakeFiles/athena_ran.dir/cross_traffic.cpp.o.d"
  "CMakeFiles/athena_ran.dir/downlink.cpp.o"
  "CMakeFiles/athena_ran.dir/downlink.cpp.o.d"
  "CMakeFiles/athena_ran.dir/downlink_ran.cpp.o"
  "CMakeFiles/athena_ran.dir/downlink_ran.cpp.o.d"
  "CMakeFiles/athena_ran.dir/grant_policy.cpp.o"
  "CMakeFiles/athena_ran.dir/grant_policy.cpp.o.d"
  "CMakeFiles/athena_ran.dir/types.cpp.o"
  "CMakeFiles/athena_ran.dir/types.cpp.o.d"
  "CMakeFiles/athena_ran.dir/uplink.cpp.o"
  "CMakeFiles/athena_ran.dir/uplink.cpp.o.d"
  "libathena_ran.a"
  "libathena_ran.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/athena_ran.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
