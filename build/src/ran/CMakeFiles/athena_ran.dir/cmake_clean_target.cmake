file(REMOVE_RECURSE
  "libathena_ran.a"
)
