# Empty dependencies file for athena_ran.
# This may be replaced when dependencies are built.
